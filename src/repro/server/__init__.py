"""Asyncio network front-end: the directory as a service.

The paper's algorithms run in-process; this package puts them behind a
socket.  :mod:`repro.server.protocol` defines a small LDAP-ish wire
subset (bind, search, add/delete/modify as transactions, unbind, plus a
``check`` extended operation) over length-prefixed JSON framing;
:mod:`repro.server.server` serves it with one lock-free
:class:`~repro.store.reader.StoreReader` /
:class:`~repro.store.sharded.CompositeReader` per connection (refreshed
O(|Δ|) before each read, so reads never block the writer) and a single
write path through the owning :class:`~repro.store.journal.DirectoryStore`
or :class:`~repro.store.sharded.ShardedStore`;
:mod:`repro.server.client` is the asyncio client used by the tests and
``benchmarks/bench_server.py``; :mod:`repro.server.frontdoor` is the
read-balancing proxy that routes writes to a primary and spreads
``search``/``check`` across replica servers under a bounded-staleness
contract, with automatic failover.
"""

from repro.server.client import DirectoryClient
from repro.server.frontdoor import FrontDoor
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.server.server import DirectoryServer

__all__ = [
    "DirectoryClient",
    "DirectoryServer",
    "FrontDoor",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "write_frame",
]
