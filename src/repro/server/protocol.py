"""Wire protocol: length-prefixed JSON frames, LDAP-ish operations.

Framing
-------
Every message — request, response, or server-pushed notification — is
one *frame*: a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  Frames larger than
:data:`MAX_FRAME_BYTES` are refused on both ends (a malformed or
malicious length prefix must not buffer gigabytes).

Requests and responses
----------------------
A request object carries ``op`` (the operation name), ``id`` (an
integer the response echoes, so a client can pipeline), and
operation-specific fields.  A response carries the echoed ``id``,
``ok`` (boolean), and either result fields or ``error``/``message``.
Server-pushed commit notifications have ``op: "notify"`` and *no*
``id`` — they are not responses to anything.

Operations
----------
``bind``
    ``dn`` (may be ``""`` for anonymous).  Every other operation
    requires a prior bind on the connection — the LDAP model, minus
    authentication (there are no credentials to check yet; the bind
    establishes *who* the connection claims to be and gates the rest
    of the protocol).
``unbind``
    Ends the session; the server closes the connection after replying.
``ping``
    Liveness probe; allowed before bind.
``search``
    ``base`` (optional DN string), ``scope`` (``base``/``one``/``sub``/
    ``children``), ``filter`` (RFC 4515 string, optional),
    ``size_limit`` (optional positive int).  Returns ``entries`` — a
    list of ``{"dn": ..., "attributes": {name: [values...]}}`` in
    canonical global document order — a ``truncated`` flag (true when
    ``size_limit`` cut the result after canonical ordering, i.e. at
    least one further match exists), and the ``position`` the serving
    reader's view sat at (always a committed frontier).  Two optional
    fields address a front door (a plain server ignores them):
    ``require_seq`` — a ``position`` payload the serving replica's
    frontier must have reached (read-your-writes) — and ``max_lag``
    (``0`` forces primary reads).
``add`` / ``delete`` / ``txn``
    Mutations as update transactions.  ``add`` carries ``dn``,
    ``classes``, ``attributes``; ``delete`` carries ``dn``; ``txn``
    carries ``changes`` — an LDIF changes document (multiple
    add/delete records, one transaction, atomic; a document spanning
    shards rides the two-phase commit path unchanged).  The response
    carries ``applied`` and, on rejection, ``violations``.
``modify``
    ``changes`` — an LDIF document of ``changetype: modify`` records,
    each applied (and journaled) individually.
``check``
    The extended operation: run the full Figure 4 legality check on
    the connection's freshly refreshed view.  Returns ``legal``,
    ``violations``, ``entries`` (count), and ``position``.
``watch``
    Subscribe this connection to commit notifications: after each
    committed write the server pushes ``{"op": "notify", "seq": N}``
    frames — the push replacement for ``check --follow`` polling.
    Notifications to a stalled subscriber coalesce in a bounded
    per-subscriber cell (the server never buffers per-commit frames);
    when the subscriber catches up, the next frame carries
    ``"dropped": k`` — k notifications were folded away, so re-read
    rather than trust the gap.
``position``
    The server's role (``primary``/``replica``) and committed frontier
    as a ``position`` payload — ``{"generation": g, "seq": s}`` for a
    plain store, ``{shard: [g, s], ...}`` for a sharded one.  Allowed
    before bind: it is the front door's health-probe surface.  Replica
    servers add ``upstream`` and (sharded) ``consistent`` — whether
    the cohort sits exactly on its last replicated cut.
``promote``
    Ask a replica server to promote its local replica tree to a
    primary in place (PR 9's ``promote``/``promote_shards`` paths,
    including their refusals: an in-doubt 2PC prepare, or a sharded
    cohort off its cut).  On success the server starts serving writes
    and returns ``role: "primary"`` plus its new ``position``.
``reattach``
    Repoint a replica server's sync loop at a new ``upstream``
    (``"host:port"``) — how a front door re-homes survivors behind the
    generation bump after failover.
``replicate``
    Subscribe this connection as a WAL-shipping replication follower.
    Against a plain store the request carries the follower's durable
    ``generation``/``seq``; against a sharded store it carries
    ``shards`` — a map of per-shard ``[generation, seq]`` pairs — and
    the stream multiplexes every shard's frames tagged with ``shard``,
    punctuated by ``kind: "cut"`` messages marking coordinator-
    consistent frontiers (see below).  The response acknowledges with
    the primary's committed frontier.  The server then pushes stream
    messages with ``op: "repl"`` and no ``id``:

    * ``kind: "snapshot"`` — the snapshot file verbatim (sent when the
      position cannot be served incrementally; a snapshot bigger than
      :data:`MAX_FRAME_BYTES` cannot be shipped — seed such a replica
      from a file copy and subscribe at its position instead);
    * ``kind: "schema"`` — announces a generation (schema fingerprint,
      resume seq, optional compaction ``folds`` frontier) and MUST
      precede that generation's data frames — the schema-before-data
      ordering replication promises;
    * ``kind: "frames"`` — a raw committed byte slice of the journal
      (``generation``, ``start_seq``, ``data``, ``crc``).  In-doubt
      2PC prepares never ship; decided pairs ship whole.
    * ``kind: "shardmap"`` / ``kind: "cut"`` — sharded streams only:
      the shard layout file, and the per-shard frontier the batch just
      shipped lands on (a coordinator-consistent cut — the follower
      applies everything since the last cut atomically, so it never
      observes half a spanning transaction).

    See :mod:`repro.store.replicate` for the exact stream contract.

The front door (:mod:`repro.server.frontdoor`) additionally serves a
``topology`` operation — the routing table with every member's
address, liveness, cached frontier, and the recorded lost floors —
and answers reads whose required position died with a failed primary
with a typed ``position_lost`` error.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "error_response",
    "ok_response",
]

#: Refuse frames above this size on both ends (16 MiB — far above any
#: legitimate request, far below what a hostile length prefix could ask
#: the peer to buffer).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed frame or message (framing layer, not business logic)."""


def encode_frame(message: dict) -> bytes:
    """One wire frame: big-endian length prefix + UTF-8 JSON body."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """Decode a frame *body* (the bytes after the length prefix)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must encode an object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises
    ------
    ProtocolError
        On an oversized length prefix, a truncated frame, or an
        undecodable body.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-length-prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {MAX_FRAME_BYTES}); refusing to buffer it"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Encode and send one frame, honouring flow control."""
    writer.write(encode_frame(message))
    await writer.drain()


def ok_response(request_id, **fields) -> dict:
    """A success response echoing the request's ``id``."""
    response = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def error_response(request_id, code: str, message: str) -> dict:
    """A failure response: ``error`` is a stable machine-readable code
    (e.g. ``"filter_syntax"``, ``"not_bound"``), ``message`` the human
    explanation."""
    return {"id": request_id, "ok": False, "error": code, "message": message}
