"""The asyncio directory server.

Concurrency model
-----------------
*Reads never block the writer, and the writer never blocks reads.*

Each connection owns its own lock-free view — a
:class:`~repro.store.reader.StoreReader` (or
:class:`~repro.store.sharded.CompositeReader` over a sharded store) —
bootstrapped once at connect time and refreshed O(|Δ|) before every
read operation, so every response reflects a *committed* frontier
(readers withhold in-doubt 2PC prepares by construction).  Read
operations (refresh + search/check) run on the shared default executor:
each connection handles its frames sequentially, so its reader is only
ever touched by one thread at a time.

All mutations funnel through the single owning
:class:`~repro.store.journal.DirectoryStore` /
:class:`~repro.store.sharded.ShardedStore` writer, serialized by an
:class:`asyncio.Lock` and executed on a dedicated one-thread executor —
the fsync of a commit happens off the event loop, so in-flight searches
on other connections keep being served while the writer is on disk.
Spanning transactions ride the two-phase commit path unchanged.

After every committed write the server publishes the new commit
sequence to a set of per-subscriber :class:`_CommitFeed` cells — bounded,
capacity-one, coalescing cells, *not* queues.  A ``watch`` connection's
fanout task blocks on its feed and pushes one ``{"op": "notify",
"seq": N}`` frame per wakeup (the push replacement for ``check
--follow``'s sleep loop); a subscriber that stalls mid-write costs the
server O(1) memory — commits landing while it is stalled coalesce into
the cell and are *counted*, and the next frame it does receive carries
``"dropped": k`` so the client knows k notifications were folded away
and it should re-read rather than trust the gap.  The ``replicate``
frame-shipping loop rides the same feeds: a slow replica simply lags
(the shipper is pull-based over the journal, nothing is buffered per
follower), it never bloats the primary.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Optional

from repro.errors import (
    FilterSyntaxError,
    LdifError,
    ModelError,
    ShardRoutingError,
    StoreError,
    UpdateError,
)
from repro.server.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)

__all__ = ["DirectoryServer"]

_SCOPES = ("base", "one", "sub", "children")


def _entry_payload(instance, entry) -> dict:
    return {
        "dn": instance.dn_string_of(entry),
        "attributes": {
            name: list(entry.values(name))
            for name in entry.attribute_names()
        },
    }


def _violations_payload(report) -> list:
    return [str(v) for v in report]


class _CommitFeed:
    """A bounded (capacity-one, coalescing) commit subscription.

    ``publish`` overwrites the cell with the newest commit seq; if the
    subscriber had not consumed the previous wakeup, the overwritten
    notification is *counted*, not queued — that count is the
    drop-and-resync signal a stalled consumer receives when it catches
    up.  Memory per subscriber is O(1) no matter how far it stalls.
    """

    def __init__(self, seq: int) -> None:
        self.latest = seq
        self.dropped = 0
        self._event = asyncio.Event()

    def publish(self, seq: int) -> None:
        if self._event.is_set():
            self.dropped += 1
        self.latest = seq
        self._event.set()

    def wake(self) -> None:
        """Wake the subscriber without a commit (drain/shutdown)."""
        self._event.set()

    async def next(self) -> "tuple[int, int]":
        """Block until published (or woken); returns ``(seq, dropped)``
        and resets the drop counter."""
        await self._event.wait()
        self._event.clear()
        dropped, self.dropped = self.dropped, 0
        return self.latest, dropped


class _Connection:
    """Per-connection state: the bound identity, the serving reader, and
    the watch/replicate fanout tasks (when subscribed)."""

    def __init__(self, server: "DirectoryServer", reader_view) -> None:
        self.server = server
        self.view = reader_view
        self.bound_dn: Optional[str] = None
        self.watch_task: Optional[asyncio.Task] = None
        self.replicate_task: Optional[asyncio.Task] = None

    @property
    def bound(self) -> bool:
        return self.bound_dn is not None

    def position_payload(self) -> dict:
        if self.server.shards:
            return {
                name: list(pos) for name, pos in self.view.frontier().items()
            }
        generation, seq = self.view.position()
        return {"generation": generation, "seq": seq}


class DirectoryServer:
    """Serve a directory store (plain or sharded) over the wire protocol.

    Parameters
    ----------
    store_path:
        The store directory; the server takes the writer lock for its
        whole lifetime.
    shards:
        ``True`` to open a sharded store (``create --shard``) and serve
        its composite view.
    jobs:
        Parallelism handed to each connection's legality engine (the
        ``check`` extended op); ``0`` means the engine default.
    host / port:
        Bind address.  Port ``0`` binds an ephemeral port; read the
        bound one from :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        store_path: str,
        schema,
        registry=None,
        *,
        shards: bool = False,
        jobs: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        structure: str = "batched",
    ) -> None:
        self.store_path = store_path
        self.schema = schema
        self.registry = registry
        self.shards = shards
        self.jobs = jobs
        self.host = host
        self._requested_port = port
        self.structure = structure
        self.store = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._write_lock = asyncio.Lock()
        self._writer_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="store-writer"
        )
        self._commit_seq = 0
        self._feeds: set = set()
        self._connections: set = set()
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (ephemeral ports resolved at start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Open the store (writer lock held from here on) and bind."""
        loop = asyncio.get_running_loop()
        self.store = await loop.run_in_executor(None, self._open_store)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    def _open_store(self):
        if self.shards:
            from repro.store.sharded import ShardedStore

            return ShardedStore.open(
                self.store_path, self.schema, self.registry
            )
        from repro.store import DirectoryStore

        return DirectoryStore.open(
            self.store_path, self.schema, self.registry
        )

    def _open_view(self):
        kwargs = {"structure": self.structure}
        if self.jobs > 0:
            kwargs["parallelism"] = self.jobs
        if self.shards:
            from repro.store.sharded import CompositeReader

            return CompositeReader.open(
                self.store_path, self.schema, self.registry, **kwargs
            )
        from repro.store.reader import StoreReader

        return StoreReader.open(
            self.store_path, self.schema, self.registry, **kwargs
        )

    async def stop(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting, optionally drain in-flight connections, close
        the store.  ``drain=True`` is the graceful SIGTERM path: every
        connection finishes (or is cancelled after ``timeout``) before
        the writer lock is released."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake watch/replicate tasks so draining connections can exit.
        for feed in list(self._feeds):
            feed.wake()
        pending = {t for t in self._connections if not t.done()}
        if pending and drain:
            _, pending = await asyncio.wait(pending, timeout=timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self.store is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.store.close)
            self.store = None
        self._writer_pool.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Accept connections until cancelled or stopped."""
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        loop = asyncio.get_running_loop()
        connection: Optional[_Connection] = None
        try:
            view = await loop.run_in_executor(None, self._open_view)
            connection = _Connection(self, view)
            while not self._draining:
                request = await read_frame(reader)
                if request is None:
                    break
                response = await self._dispatch(connection, writer, request)
                if response is None:  # unbind: reply already sent
                    break
                await write_frame(writer, response)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass  # a broken client is its own problem; drop the connection
        finally:
            self._connections.discard(task)
            if connection is not None:
                for task in (connection.watch_task, connection.replicate_task):
                    if task is not None:
                        task.cancel()
                        try:
                            await task
                        except asyncio.CancelledError:
                            pass
                await loop.run_in_executor(None, connection.view.close)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, connection: _Connection, writer, request: dict
    ) -> Optional[dict]:
        op = request.get("op")
        request_id = request.get("id")
        try:
            if op == "ping":
                return ok_response(request_id)
            if op == "bind":
                dn = request.get("dn", "")
                if not isinstance(dn, str):
                    return error_response(
                        request_id, "bad_request", "bind dn must be a string"
                    )
                connection.bound_dn = dn
                return ok_response(request_id, dn=dn)
            if op == "unbind":
                await write_frame(writer, ok_response(request_id))
                return None
            if not connection.bound:
                return error_response(
                    request_id, "not_bound",
                    f"operation {op!r} requires a prior bind",
                )
            if op == "search":
                return await self._op_search(connection, request)
            if op == "check":
                return await self._op_check(connection, request)
            if op in ("add", "delete", "txn"):
                return await self._op_write(connection, request)
            if op == "modify":
                return await self._op_modify(connection, request)
            if op == "watch":
                return self._op_watch(connection, writer, request)
            if op == "replicate":
                return self._op_replicate(connection, writer, request)
            return error_response(
                request_id, "unknown_op", f"unknown operation {op!r}"
            )
        except FilterSyntaxError as exc:
            return error_response(request_id, "filter_syntax", str(exc))
        except ShardRoutingError as exc:
            return error_response(request_id, "unroutable", str(exc))
        except (LdifError, ModelError, UpdateError) as exc:
            return error_response(request_id, "invalid", str(exc))
        except StoreError as exc:
            return error_response(request_id, "store_error", str(exc))

    # ------------------------------------------------------------------
    # reads: refresh the connection's view, serve from it
    # ------------------------------------------------------------------
    async def _op_search(self, connection: _Connection, request: dict) -> dict:
        scope = request.get("scope", "sub")
        if scope not in _SCOPES:
            return error_response(
                request.get("id"), "bad_request",
                f"scope must be one of {_SCOPES}, got {scope!r}",
            )
        filter_text = request.get("filter")
        size_limit = request.get("size_limit")
        if size_limit is not None and (
            not isinstance(size_limit, int)
            or isinstance(size_limit, bool)
            or size_limit < 1
        ):
            return error_response(
                request.get("id"), "bad_request",
                f"size_limit must be a positive integer, got {size_limit!r}",
            )
        base = request.get("base")

        def run():
            from repro.query.filter_parser import parse_filter

            connection.view.refresh()
            parsed = parse_filter(filter_text) if filter_text else None
            # Over-fetch by one so the cut happens *after* canonical
            # ordering and the client learns whether results were
            # dropped, without ever scanning past limit + 1 matches.
            fetch = None if size_limit is None else size_limit + 1
            entries = connection.view.search(
                base=base, scope=scope, filter=parsed, size_limit=fetch
            )
            truncated = size_limit is not None and len(entries) > size_limit
            if truncated:
                entries = entries[:size_limit]
            instance = connection.view.instance
            return [_entry_payload(instance, e) for e in entries], truncated

        loop = asyncio.get_running_loop()
        entries, truncated = await loop.run_in_executor(None, run)
        return ok_response(
            request.get("id"),
            entries=entries,
            truncated=truncated,
            position=connection.position_payload(),
        )

    async def _op_check(self, connection: _Connection, request: dict) -> dict:
        def run():
            connection.view.refresh()
            report = connection.view.check()
            return report, len(connection.view.instance)

        loop = asyncio.get_running_loop()
        report, entries = await loop.run_in_executor(None, run)
        return ok_response(
            request.get("id"),
            legal=report.is_legal,
            violations=_violations_payload(report),
            entries=entries,
            position=connection.position_payload(),
        )

    # ------------------------------------------------------------------
    # writes: the single funnel
    # ------------------------------------------------------------------
    async def _op_write(self, connection: _Connection, request: dict) -> dict:
        from repro.ldif.changes import parse_changes
        from repro.updates.operations import UpdateTransaction

        op = request["op"]
        if op == "add":
            transaction = UpdateTransaction().insert(
                request["dn"],
                request.get("classes", []),
                request.get("attributes", {}),
            )
        elif op == "delete":
            transaction = UpdateTransaction().delete(request["dn"])
        else:  # txn
            transaction = parse_changes(request.get("changes", ""))
        outcome = await self._run_write(
            lambda: self.store.apply(transaction)
        )
        response = ok_response(
            request.get("id"),
            applied=outcome.applied,
            violations=_violations_payload(outcome.report),
        )
        if outcome.applied:
            await self._commit_happened()
        return response

    async def _op_modify(self, connection: _Connection, request: dict) -> dict:
        from repro.ldif.modify import parse_modifications

        records = parse_modifications(request.get("changes", ""))
        results = []
        committed = False
        for record in records:
            outcome = await self._run_write(
                lambda record=record: self.store.modify(record)
            )
            results.append(
                {
                    "dn": str(record.dn),
                    "applied": outcome.applied,
                    "violations": _violations_payload(outcome.report),
                }
            )
            committed = committed or outcome.applied
        if committed:
            await self._commit_happened()
        return ok_response(
            request.get("id"),
            applied=all(r["applied"] for r in results),
            results=results,
        )

    async def _run_write(self, fn):
        """Serialize ``fn`` onto the dedicated writer thread: the store
        object is single-writer, and the journal fsync must not stall
        the event loop."""
        async with self._write_lock:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._writer_pool, fn)

    async def _commit_happened(self) -> None:
        self._commit_seq += 1
        for feed in self._feeds:
            feed.publish(self._commit_seq)

    def _subscribe(self) -> _CommitFeed:
        feed = _CommitFeed(self._commit_seq)
        self._feeds.add(feed)
        return feed

    def _unsubscribe(self, feed: _CommitFeed) -> None:
        self._feeds.discard(feed)

    # ------------------------------------------------------------------
    # commit-notify fanout
    # ------------------------------------------------------------------
    def _op_watch(
        self, connection: _Connection, writer, request: dict
    ) -> dict:
        if connection.watch_task is None:
            connection.watch_task = asyncio.ensure_future(
                self._watch_loop(writer)
            )
        return ok_response(request.get("id"), seq=self._commit_seq)

    async def _watch_loop(self, writer) -> None:
        """Push one ``notify`` frame per feed wakeup.

        Commits that land while the subscriber's socket is stalled
        coalesce in the bounded feed; the frame that finally gets
        through carries the latest ``seq`` plus ``dropped`` — the
        number of notifications folded away — so a slow consumer knows
        to resync instead of trusting the gap.
        """
        seen = self._commit_seq
        feed = self._subscribe()
        try:
            while True:
                seq, dropped = await feed.next()
                if seq <= seen:
                    if self._draining:
                        return
                    continue  # spurious wake (drain probe on a live server)
                seen = seq
                frame = {"op": "notify", "seq": seq}
                if dropped:
                    frame["dropped"] = dropped
                await write_frame(writer, frame)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            return  # the connection is going away; its handler cleans up
        finally:
            self._unsubscribe(feed)

    # ------------------------------------------------------------------
    # replication: frame shipping over the same bounded feeds
    # ------------------------------------------------------------------
    def _op_replicate(
        self, connection: _Connection, writer, request: dict
    ) -> dict:
        """Subscribe this connection as a replication follower.

        The request carries the follower's durable ``(generation,
        seq)`` position; the reply acknowledges with the primary's
        committed frontier, then stream messages (``op: "repl"``) are
        pushed: schema frames strictly before the data frames of their
        generation, a snapshot first when the position cannot be served
        incrementally.  Sharded stores refuse: replication follows one
        WAL — point followers at the member stores.
        """
        request_id = request.get("id")
        if self.shards:
            return error_response(
                request_id, "bad_request",
                "replicate requires a plain (unsharded) store; replicate "
                "each shard's member store individually",
            )
        if connection.replicate_task is not None:
            return error_response(
                request_id, "bad_request",
                "this connection is already replicating",
            )
        generation = request.get("generation", 0)
        seq = request.get("seq", 0)
        if not isinstance(generation, int) or not isinstance(seq, int) \
                or generation < 0 or seq < 0:
            return error_response(
                request_id, "bad_request",
                "replicate position must be non-negative integers",
            )
        from repro.store.replicate import FrameSource

        source = FrameSource(self.store_path, self.schema)
        source.attach(generation, seq)
        connection.replicate_task = asyncio.ensure_future(
            self._replicate_loop(writer, source)
        )
        return ok_response(
            request_id,
            mode="stream",
            generation=self.store.generation,
            seq=self.store.journal_length,
        )

    async def _replicate_loop(self, writer, source) -> None:
        """Ship stream messages until the follower disconnects.

        Pull-based: each wakeup polls the journal tail for exactly the
        committed delta past the follower's position, so a slow
        follower costs O(1) server memory — it lags on disk, not in
        RAM.  The poll's file I/O runs on the shared executor, never on
        the event loop.
        """
        loop = asyncio.get_running_loop()
        feed = self._subscribe()
        try:
            while True:
                batch = await loop.run_in_executor(None, source.poll)
                for message in batch:
                    await write_frame(writer, message)
                if not batch:
                    if self._draining:
                        return
                    await feed.next()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            return  # the connection is going away; its handler cleans up
        finally:
            self._unsubscribe(feed)
