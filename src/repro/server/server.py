"""The asyncio directory server.

Concurrency model
-----------------
*Reads never block the writer, and the writer never blocks reads.*

Each connection owns its own lock-free view — a
:class:`~repro.store.reader.StoreReader` (or
:class:`~repro.store.sharded.CompositeReader` over a sharded store) —
bootstrapped once at connect time and refreshed O(|Δ|) before every
read operation, so every response reflects a *committed* frontier
(readers withhold in-doubt 2PC prepares by construction).  Read
operations (refresh + search/check) run on the shared default executor:
each connection handles its frames sequentially, so its reader is only
ever touched by one thread at a time.

All mutations funnel through the single owning
:class:`~repro.store.journal.DirectoryStore` /
:class:`~repro.store.sharded.ShardedStore` writer, serialized by an
:class:`asyncio.Lock` and executed on a dedicated one-thread executor —
the fsync of a commit happens off the event loop, so in-flight searches
on other connections keep being served while the writer is on disk.
Spanning transactions ride the two-phase commit path unchanged.

After every committed write the server publishes the new commit
sequence to a set of per-subscriber :class:`_CommitFeed` cells — bounded,
capacity-one, coalescing cells, *not* queues.  A ``watch`` connection's
fanout task blocks on its feed and pushes one ``{"op": "notify",
"seq": N}`` frame per wakeup (the push replacement for ``check
--follow``'s sleep loop); a subscriber that stalls mid-write costs the
server O(1) memory — commits landing while it is stalled coalesce into
the cell and are *counted*, and the next frame it does receive carries
``"dropped": k`` so the client knows k notifications were folded away
and it should re-read rather than trust the gap.  The ``replicate``
frame-shipping loop rides the same feeds: a slow replica simply lags
(the shipper is pull-based over the journal, nothing is buffered per
follower), it never bloats the primary.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Optional

from repro.errors import (
    FilterSyntaxError,
    LdifError,
    ModelError,
    ShardRoutingError,
    StoreError,
    UpdateError,
)
from repro.server.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)

__all__ = ["DirectoryServer"]

_SCOPES = ("base", "one", "sub", "children")


def _entry_payload(instance, entry) -> dict:
    return {
        "dn": instance.dn_string_of(entry),
        "attributes": {
            name: list(entry.values(name))
            for name in entry.attribute_names()
        },
    }


def _violations_payload(report) -> list:
    return [str(v) for v in report]


class _CommitFeed:
    """A bounded (capacity-one, coalescing) commit subscription.

    ``publish`` overwrites the cell with the newest commit seq; if the
    subscriber had not consumed the previous wakeup, the overwritten
    notification is *counted*, not queued — that count is the
    drop-and-resync signal a stalled consumer receives when it catches
    up.  Memory per subscriber is O(1) no matter how far it stalls.
    """

    def __init__(self, seq: int) -> None:
        self.latest = seq
        self.dropped = 0
        self._event = asyncio.Event()

    def publish(self, seq: int) -> None:
        if self._event.is_set():
            self.dropped += 1
        self.latest = seq
        self._event.set()

    def wake(self) -> None:
        """Wake the subscriber without a commit (drain/shutdown)."""
        self._event.set()

    async def next(self) -> "tuple[int, int]":
        """Block until published (or woken); returns ``(seq, dropped)``
        and resets the drop counter."""
        await self._event.wait()
        self._event.clear()
        dropped, self.dropped = self.dropped, 0
        return self.latest, dropped


class _Connection:
    """Per-connection state: the bound identity, the serving reader
    (opened lazily on the first read), the socket writer (so a drain
    can nudge an idle peer), and the watch/replicate fanout tasks."""

    def __init__(self, server: "DirectoryServer", writer) -> None:
        self.server = server
        self.writer = writer
        self.view = None  # opened lazily by the first read operation
        self.bound_dn: Optional[str] = None
        self.busy = False  # a frame is being dispatched right now
        self.watch_task: Optional[asyncio.Task] = None
        self.replicate_task: Optional[asyncio.Task] = None

    @property
    def bound(self) -> bool:
        return self.bound_dn is not None

    def position_payload(self) -> dict:
        if self.server.shards:
            return {
                name: list(pos) for name, pos in self.view.frontier().items()
            }
        generation, seq = self.view.position()
        return {"generation": generation, "seq": seq}

    def nudge(self) -> None:
        """Close the transport under an idle reader so its blocked
        ``read_frame`` wakes with EOF instead of sitting out a drain
        timeout.  A busy connection is left alone: it finishes its
        in-flight frame and exits at the loop's drain check."""
        try:
            self.writer.close()
        except Exception:
            pass


class DirectoryServer:
    """Serve a directory store (plain or sharded) over the wire protocol.

    Parameters
    ----------
    store_path:
        The store directory; the server takes the writer lock for its
        whole lifetime.
    shards:
        ``True`` to open a sharded store (``create --shard``) and serve
        its composite view.
    jobs:
        Parallelism handed to each connection's legality engine (the
        ``check`` extended op); ``0`` means the engine default.
    host / port:
        Bind address.  Port ``0`` binds an ephemeral port; read the
        bound one from :attr:`port` after :meth:`start`.
    replica_of:
        ``"host:port"`` of an upstream primary.  The server then runs
        as a **replica**: instead of opening the store as a writer it
        attaches a :class:`~repro.store.replicate.ReplicaApplier` (or
        the sharded cohort applier) fed by a background sync loop, and
        serves reads from the replicated copy.  Writes answer
        ``not_writable``; the ``promote`` operation turns the replica
        into a full primary in place, and ``reattach`` repoints the
        sync loop at a new upstream (the failover choreography the
        front door drives).
    """

    def __init__(
        self,
        store_path: str,
        schema,
        registry=None,
        *,
        shards: bool = False,
        jobs: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        structure: str = "batched",
        replica_of: Optional[str] = None,
    ) -> None:
        self.store_path = store_path
        self.schema = schema
        self.registry = registry
        self.shards = shards
        self.jobs = jobs
        self.host = host
        self._requested_port = port
        self.structure = structure
        self.replica_of = replica_of
        self.store = None
        self._applier = None
        self._sync_task: Optional[asyncio.Task] = None
        self._sync_client = None
        self._sync_stopped = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._write_lock = asyncio.Lock()
        self._writer_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="store-writer"
        )
        self._commit_seq = 0
        self._feeds: set = set()
        self._connections: "dict[asyncio.Task, _Connection]" = {}
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (ephemeral ports resolved at start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def role(self) -> str:
        """``"replica"`` while following an upstream, else ``"primary"``."""
        return "replica" if self._applier is not None else "primary"

    async def start(self) -> None:
        """Open the store (writer lock held from here on) and bind.

        A replica (``replica_of``) opens an applier instead of a writer
        and starts the background sync loop; it accepts connections
        immediately, even before its first snapshot lands (reads answer
        ``store_error`` until then)."""
        loop = asyncio.get_running_loop()
        if self.replica_of is not None:
            self._applier = await loop.run_in_executor(
                None, self._open_applier
            )
            self._sync_task = asyncio.ensure_future(self._sync_loop())
        else:
            self.store = await loop.run_in_executor(None, self._open_store)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    def _open_store(self):
        if self.shards:
            from repro.store.sharded import ShardedStore

            return ShardedStore.open(
                self.store_path, self.schema, self.registry
            )
        from repro.store import DirectoryStore

        return DirectoryStore.open(
            self.store_path, self.schema, self.registry
        )

    def _open_applier(self):
        if self.shards:
            from repro.store.replicate import ShardedReplicaApplier

            return ShardedReplicaApplier(
                self.store_path, self.schema, self.registry,
                upstream=self.replica_of,
            )
        from repro.store.replicate import ReplicaApplier

        return ReplicaApplier(
            self.store_path, self.schema, self.registry,
            upstream=self.replica_of,
        )

    def _open_view(self):
        kwargs = {"structure": self.structure}
        if self.jobs > 0:
            kwargs["parallelism"] = self.jobs
        try:
            if self.shards:
                from repro.store.sharded import CompositeReader

                return CompositeReader.open(
                    self.store_path, self.schema, self.registry, **kwargs
                )
            from repro.store.reader import StoreReader

            return StoreReader.open(
                self.store_path, self.schema, self.registry, **kwargs
            )
        except OSError as exc:
            # A replica before its bootstrap snapshot has nothing to
            # read yet; surface that as a store error, not a dead socket.
            raise StoreError(
                f"{self.store_path} holds no readable state yet ({exc})"
            ) from exc

    def _refresh_view(self, view) -> None:
        """Refresh a connection's view to the current committed state.

        On a sharded replica the refresh must hold the applier's batch
        lock and only land on a replicated cut — anything between cuts
        could show half a spanning transaction."""
        applier = self._applier
        if applier is not None and self.shards:
            with applier.lock:
                if not applier.consistent():
                    raise StoreError(
                        f"replica {self.store_path} has not reached a "
                        "consistent replicated cut yet; retry after the "
                        "next sync batch"
                    )
                view.refresh()
        else:
            view.refresh()

    async def stop(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting, optionally drain in-flight connections, close
        the store.  ``drain=True`` is the graceful SIGTERM path: every
        connection finishes (or is cancelled after ``timeout``) before
        the writer lock is released."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake watch/replicate tasks so draining connections can exit.
        for feed in list(self._feeds):
            feed.wake()
        # Nudge connections sitting idle in read_frame: _draining is
        # only checked between frames, so without the EOF they would
        # ride out the whole drain timeout.  Busy connections finish
        # their in-flight frame and exit at the loop's drain check.
        for connection in list(self._connections.values()):
            if not connection.busy:
                connection.nudge()
        pending = {t for t in self._connections if not t.done()}
        if pending and drain:
            _, pending = await asyncio.wait(pending, timeout=timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await self._stop_sync()
        loop = asyncio.get_running_loop()
        if self._applier is not None:
            applier, self._applier = self._applier, None
            await loop.run_in_executor(None, applier.close)
        if self.store is not None:
            await loop.run_in_executor(None, self.store.close)
            self.store = None
        self._writer_pool.shutdown(wait=True)

    async def kill(self) -> None:
        """Die abruptly — the crash-harness stand-in for ``kill -9``.

        Aborts the listener and every connection's transport without
        drain or replies; the store is closed only to release file
        handles (a killed process drops its advisory lock the same
        way).  Clients observe a reset connection mid-operation."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        for feed in list(self._feeds):
            feed.wake()
        for task, connection in list(self._connections.items()):
            transport = getattr(connection.writer, "transport", None)
            try:
                if transport is not None:
                    transport.abort()
                else:
                    connection.writer.close()
            except Exception:
                pass
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        await self._stop_sync()
        loop = asyncio.get_running_loop()
        if self._applier is not None:
            applier, self._applier = self._applier, None
            await loop.run_in_executor(None, applier.close)
        if self.store is not None:
            await loop.run_in_executor(None, self.store.close)
            self.store = None
        self._writer_pool.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Accept connections until cancelled or stopped."""
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # replica sync: pull the upstream's stream into the local applier
    # ------------------------------------------------------------------
    async def _stop_sync(self) -> None:
        self._sync_stopped = True
        client, self._sync_client = self._sync_client, None
        task, self._sync_task = self._sync_task, None
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass
        if task is not None:
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)

    async def _sync_loop(self) -> None:
        """Follow the upstream primary, applying every stream message
        durably on the writer thread; reconnects with backoff on any
        break (including a ``reattach`` repointing the upstream)."""
        from repro.server.client import DirectoryClient

        loop = asyncio.get_running_loop()
        while not self._draining and not self._sync_stopped:
            upstream = self.replica_of
            client = None
            try:
                host, _, port = str(upstream).rpartition(":")
                client = await DirectoryClient.connect(host, int(port))
                self._sync_client = client
                await client.bind("cn=replica")
                applier = self._applier
                if applier is None:
                    return
                if self.shards:
                    ack = await client.replicate(shards=applier.position())
                else:
                    generation, seq = applier.position()
                    ack = await client.replicate(generation, seq)
                if not self.shards and "generation" in ack:
                    applier.frontier = (ack["generation"], ack["seq"])
                while not self._draining and not self._sync_stopped:
                    message = await client.next_stream_message()
                    await loop.run_in_executor(
                        self._writer_pool,
                        lambda m=message: self._applier.apply_message(m),
                    )
                    await self._commit_happened()
            except asyncio.CancelledError:
                raise
            except Exception:
                pass  # connection break or upstream death: retry below
            finally:
                if client is not None:
                    self._sync_client = None
                    try:
                        await client.close()
                    except Exception:
                        pass
            if self._draining or self._sync_stopped:
                return
            await asyncio.sleep(0.2)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        connection = _Connection(self, writer)
        self._connections[task] = connection
        loop = asyncio.get_running_loop()
        try:
            while not self._draining:
                request = await read_frame(reader)
                if request is None:
                    break
                connection.busy = True
                try:
                    response = await self._dispatch(
                        connection, writer, request
                    )
                    if response is None:  # unbind: reply already sent
                        break
                    await write_frame(writer, response)
                finally:
                    connection.busy = False
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass  # a broken client is its own problem; drop the connection
        except asyncio.CancelledError:
            # kill() cancels connection tasks; swallowing here keeps
            # asyncio's stream callback from logging the retrieval.
            pass
        finally:
            self._connections.pop(task, None)
            for fanout in (connection.watch_task, connection.replicate_task):
                if fanout is not None:
                    fanout.cancel()
                    try:
                        await fanout
                    except asyncio.CancelledError:
                        pass
            if connection.view is not None:
                await loop.run_in_executor(None, connection.view.close)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _ensure_view(self, connection: _Connection) -> None:
        """Open the connection's serving view on first use.  Lazy so a
        replica accepts connections (ping, position, watch) before its
        bootstrap snapshot has landed."""
        if connection.view is None:
            loop = asyncio.get_running_loop()
            connection.view = await loop.run_in_executor(
                None, self._open_view
            )

    async def _dispatch(
        self, connection: _Connection, writer, request: dict
    ) -> Optional[dict]:
        op = request.get("op")
        request_id = request.get("id")
        try:
            if op == "ping":
                return ok_response(request_id)
            if op == "position":
                return self._op_position(request)
            if op == "bind":
                dn = request.get("dn", "")
                if not isinstance(dn, str):
                    return error_response(
                        request_id, "bad_request", "bind dn must be a string"
                    )
                connection.bound_dn = dn
                return ok_response(request_id, dn=dn)
            if op == "unbind":
                await write_frame(writer, ok_response(request_id))
                return None
            if not connection.bound:
                return error_response(
                    request_id, "not_bound",
                    f"operation {op!r} requires a prior bind",
                )
            if op == "search":
                return await self._op_search(connection, request)
            if op == "check":
                return await self._op_check(connection, request)
            if op in ("add", "delete", "txn"):
                return await self._op_write(connection, request)
            if op == "modify":
                return await self._op_modify(connection, request)
            if op == "watch":
                return self._op_watch(connection, writer, request)
            if op == "replicate":
                return self._op_replicate(connection, writer, request)
            if op == "promote":
                return await self._op_promote(request)
            if op == "reattach":
                return await self._op_reattach(request)
            return error_response(
                request_id, "unknown_op", f"unknown operation {op!r}"
            )
        except FilterSyntaxError as exc:
            return error_response(request_id, "filter_syntax", str(exc))
        except ShardRoutingError as exc:
            return error_response(request_id, "unroutable", str(exc))
        except (LdifError, ModelError, UpdateError) as exc:
            return error_response(request_id, "invalid", str(exc))
        except StoreError as exc:
            return error_response(request_id, "store_error", str(exc))

    # ------------------------------------------------------------------
    # reads: refresh the connection's view, serve from it
    # ------------------------------------------------------------------
    async def _op_search(self, connection: _Connection, request: dict) -> dict:
        scope = request.get("scope", "sub")
        if scope not in _SCOPES:
            return error_response(
                request.get("id"), "bad_request",
                f"scope must be one of {_SCOPES}, got {scope!r}",
            )
        filter_text = request.get("filter")
        size_limit = request.get("size_limit")
        if size_limit is not None and (
            not isinstance(size_limit, int)
            or isinstance(size_limit, bool)
            or size_limit < 1
        ):
            return error_response(
                request.get("id"), "bad_request",
                f"size_limit must be a positive integer, got {size_limit!r}",
            )
        base = request.get("base")
        await self._ensure_view(connection)

        def run():
            from repro.query.filter_parser import parse_filter

            self._refresh_view(connection.view)
            parsed = parse_filter(filter_text) if filter_text else None
            # Over-fetch by one so the cut happens *after* canonical
            # ordering and the client learns whether results were
            # dropped, without ever scanning past limit + 1 matches.
            fetch = None if size_limit is None else size_limit + 1
            entries = connection.view.search(
                base=base, scope=scope, filter=parsed, size_limit=fetch
            )
            truncated = size_limit is not None and len(entries) > size_limit
            if truncated:
                entries = entries[:size_limit]
            instance = connection.view.instance
            return [_entry_payload(instance, e) for e in entries], truncated

        loop = asyncio.get_running_loop()
        entries, truncated = await loop.run_in_executor(None, run)
        return ok_response(
            request.get("id"),
            entries=entries,
            truncated=truncated,
            position=connection.position_payload(),
        )

    async def _op_check(self, connection: _Connection, request: dict) -> dict:
        await self._ensure_view(connection)

        def run():
            self._refresh_view(connection.view)
            report = connection.view.check()
            return report, len(connection.view.instance)

        loop = asyncio.get_running_loop()
        report, entries = await loop.run_in_executor(None, run)
        return ok_response(
            request.get("id"),
            legal=report.is_legal,
            violations=_violations_payload(report),
            entries=entries,
            position=connection.position_payload(),
        )

    # ------------------------------------------------------------------
    # writes: the single funnel
    # ------------------------------------------------------------------
    def _not_writable(self, request_id) -> dict:
        return error_response(
            request_id, "not_writable",
            f"this server is a replica of {self.replica_of}; "
            "send writes to the primary",
        )

    def _store_position(self) -> dict:
        """The committed frontier, read on the writer thread so a write
        response's position is atomic with its commit."""
        if self.shards:
            return {
                name: [generation, seq]
                for name, generation, seq in self.store.frontier_key()
            }
        return {
            "generation": self.store.generation,
            "seq": self.store.journal_length,
        }

    async def _op_write(self, connection: _Connection, request: dict) -> dict:
        from repro.ldif.changes import parse_changes
        from repro.updates.operations import UpdateTransaction

        if self.store is None:
            return self._not_writable(request.get("id"))
        op = request["op"]
        if op == "add":
            transaction = UpdateTransaction().insert(
                request["dn"],
                request.get("classes", []),
                request.get("attributes", {}),
            )
        elif op == "delete":
            transaction = UpdateTransaction().delete(request["dn"])
        else:  # txn
            transaction = parse_changes(request.get("changes", ""))
            if not transaction.operations:
                # an empty changes document would "apply" vacuously —
                # the same trap as a zero-record modify batch
                return error_response(
                    request.get("id"), "bad_request",
                    "txn requires at least one change record",
                )

        def run():
            outcome = self.store.apply(transaction)
            return outcome, self._store_position()

        outcome, position = await self._run_write(run)
        response = ok_response(
            request.get("id"),
            applied=outcome.applied,
            violations=_violations_payload(outcome.report),
            position=position,
        )
        if outcome.applied:
            await self._commit_happened()
        return response

    async def _op_modify(self, connection: _Connection, request: dict) -> dict:
        from repro.ldif.modify import parse_modifications

        if self.store is None:
            return self._not_writable(request.get("id"))
        records = parse_modifications(request.get("changes", ""))
        if not records:
            # all() over zero records would report a vacuous success.
            return error_response(
                request.get("id"), "bad_request",
                "modify requires at least one modification record",
            )
        results = []
        committed = False
        position = None
        for record in records:

            def run(record=record):
                outcome = self.store.modify(record)
                return outcome, self._store_position()

            outcome, position = await self._run_write(run)
            results.append(
                {
                    "dn": str(record.dn),
                    "applied": outcome.applied,
                    "violations": _violations_payload(outcome.report),
                }
            )
            committed = committed or outcome.applied
        if committed:
            await self._commit_happened()
        return ok_response(
            request.get("id"),
            applied=all(r["applied"] for r in results),
            results=results,
            position=position,
        )

    async def _run_write(self, fn):
        """Serialize ``fn`` onto the dedicated writer thread: the store
        object is single-writer, and the journal fsync must not stall
        the event loop."""
        async with self._write_lock:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._writer_pool, fn)

    async def _commit_happened(self) -> None:
        self._commit_seq += 1
        for feed in self._feeds:
            feed.publish(self._commit_seq)

    def _subscribe(self) -> _CommitFeed:
        feed = _CommitFeed(self._commit_seq)
        self._feeds.add(feed)
        return feed

    def _unsubscribe(self, feed: _CommitFeed) -> None:
        self._feeds.discard(feed)

    # ------------------------------------------------------------------
    # commit-notify fanout
    # ------------------------------------------------------------------
    def _op_watch(
        self, connection: _Connection, writer, request: dict
    ) -> dict:
        if connection.watch_task is None:
            connection.watch_task = asyncio.ensure_future(
                self._watch_loop(writer)
            )
        return ok_response(request.get("id"), seq=self._commit_seq)

    async def _watch_loop(self, writer) -> None:
        """Push one ``notify`` frame per feed wakeup.

        Commits that land while the subscriber's socket is stalled
        coalesce in the bounded feed; the frame that finally gets
        through carries the latest ``seq`` plus ``dropped`` — the
        number of notifications folded away — so a slow consumer knows
        to resync instead of trusting the gap.
        """
        seen = self._commit_seq
        feed = self._subscribe()
        try:
            while True:
                seq, dropped = await feed.next()
                if seq <= seen:
                    if self._draining:
                        return
                    continue  # spurious wake (drain probe on a live server)
                seen = seq
                frame = {"op": "notify", "seq": seq}
                if dropped:
                    frame["dropped"] = dropped
                await write_frame(writer, frame)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            return  # the connection is going away; its handler cleans up
        finally:
            self._unsubscribe(feed)

    # ------------------------------------------------------------------
    # replication: frame shipping over the same bounded feeds
    # ------------------------------------------------------------------
    def _op_replicate(
        self, connection: _Connection, writer, request: dict
    ) -> dict:
        """Subscribe this connection as a replication follower.

        The request carries the follower's durable position — plain
        stores a ``(generation, seq)`` pair, sharded stores a
        ``shards`` map of per-shard pairs; the reply acknowledges with
        the primary's committed frontier, then stream messages (``op:
        "repl"``) are pushed: schema frames strictly before the data
        frames of their generation, a snapshot first when the position
        cannot be served incrementally.  A sharded primary multiplexes
        per-shard streams under one coordinator cut, so a follower set
        never observes half a spanning transaction.
        """
        request_id = request.get("id")
        if self._applier is not None:
            return error_response(
                request_id, "bad_request",
                f"this server is a replica of {self.replica_of}; "
                "replicate from the primary",
            )
        if connection.replicate_task is not None:
            return error_response(
                request_id, "bad_request",
                "this connection is already replicating",
            )
        if self.shards:
            from repro.store.replicate import ShardedFrameSource

            shards = request.get("shards", {})
            if not isinstance(shards, dict) or not all(
                isinstance(name, str)
                and isinstance(pos, (list, tuple))
                and len(pos) == 2
                and all(
                    isinstance(p, int)
                    and not isinstance(p, bool)
                    and p >= 0
                    for p in pos
                )
                for name, pos in shards.items()
            ):
                return error_response(
                    request_id, "bad_request",
                    "sharded replicate position must map shard names to "
                    "non-negative integer pairs",
                )
            source = ShardedFrameSource(self.store_path, self.schema)
            source.attach(
                {name: (pos[0], pos[1]) for name, pos in shards.items()}
            )
            ack = {
                "shards": {
                    name: [generation, seq]
                    for name, generation, seq in self.store.frontier_key()
                }
            }
        else:
            from repro.store.replicate import FrameSource

            generation = request.get("generation", 0)
            seq = request.get("seq", 0)
            if any(
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 0
                for value in (generation, seq)
            ):
                return error_response(
                    request_id, "bad_request",
                    "replicate position must be non-negative integers",
                )
            source = FrameSource(self.store_path, self.schema)
            source.attach(generation, seq)
            ack = {
                "generation": self.store.generation,
                "seq": self.store.journal_length,
            }
        connection.replicate_task = asyncio.ensure_future(
            self._replicate_loop(writer, source)
        )
        return ok_response(request_id, mode="stream", **ack)

    async def _replicate_loop(self, writer, source) -> None:
        """Ship stream messages until the follower disconnects.

        Pull-based: each wakeup polls the journal tail for exactly the
        committed delta past the follower's position, so a slow
        follower costs O(1) server memory — it lags on disk, not in
        RAM.  The poll's file I/O runs on the shared executor, never on
        the event loop.
        """
        loop = asyncio.get_running_loop()
        feed = self._subscribe()
        try:
            while True:
                batch = await loop.run_in_executor(None, source.poll)
                for message in batch:
                    await write_frame(writer, message)
                if not batch:
                    if self._draining:
                        return
                    await feed.next()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            return  # the connection is going away; its handler cleans up
        finally:
            self._unsubscribe(feed)

    # ------------------------------------------------------------------
    # topology: role introspection, in-place promotion, re-attachment
    # ------------------------------------------------------------------
    def _topology_position(self) -> dict:
        if self._applier is not None:
            if self.shards:
                return {
                    name: list(pos)
                    for name, pos in self._applier.position().items()
                }
            generation, seq = self._applier.position()
            return {"generation": generation, "seq": seq}
        if self.store is None:
            return {}
        return self._store_position()

    def _op_position(self, request: dict) -> dict:
        """Role and committed frontier — the health-probe surface the
        front door polls; answered without a bind or a serving view so
        a bootstrapping replica is still observable."""
        payload = {
            "role": self.role,
            "position": self._topology_position(),
        }
        if self._applier is not None:
            payload["upstream"] = self.replica_of
            if self.shards:
                payload["consistent"] = self._applier.consistent()
            lag = self._applier.lag_frames() if not self.shards else None
            if lag is not None:
                payload["lag_frames"] = lag
        return ok_response(request.get("id"), **payload)

    async def _op_promote(self, request: dict) -> dict:
        """Promote this replica to a writable primary, in place.

        Runs under the write lock on the writer thread: the sync loop
        is stopped, the applier closed, and PR 9's ``promote`` path
        (or the sharded cohort promotion) drives the generation bump —
        refusing while any 2PC prepare is in doubt or, sharded, while
        the cohort is off its replicated cut.  On refusal the applier
        and sync loop are restarted, so a failed candidate keeps
        following its upstream."""
        request_id = request.get("id")
        if self._applier is None:
            return error_response(
                request_id, "bad_request",
                "this server is already a primary; only a replica can "
                "be promoted",
            )
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            await self._stop_sync()
            applier, self._applier = self._applier, None

            def run():
                applier.close()
                from repro.store.replicate import promote, promote_shards

                if self.shards:
                    return promote_shards(
                        self.store_path, self.schema, self.registry
                    )
                return promote(self.store_path, self.schema, self.registry)

            try:
                self.store = await loop.run_in_executor(
                    self._writer_pool, run
                )
            except StoreError as exc:
                # Refused: go back to being a follower of the same
                # upstream so the elector can try another candidate.
                self._applier = await loop.run_in_executor(
                    None, self._open_applier
                )
                self._sync_stopped = False
                self._sync_task = asyncio.ensure_future(self._sync_loop())
                return error_response(request_id, "store_error", str(exc))
        self.replica_of = None
        await self._commit_happened()  # wake feeds: the world changed
        return ok_response(
            request_id, role="primary", position=self._store_position()
        )

    async def _op_reattach(self, request: dict) -> dict:
        """Repoint the sync loop at a new upstream (post-failover)."""
        request_id = request.get("id")
        upstream = request.get("upstream")
        if not isinstance(upstream, str) or ":" not in upstream:
            return error_response(
                request_id, "bad_request",
                "reattach requires an upstream of the form host:port",
            )
        if self._applier is None:
            return error_response(
                request_id, "bad_request",
                "this server is a primary; only a replica can reattach",
            )
        await self._stop_sync()
        self.replica_of = upstream
        self._applier.upstream = upstream
        self._sync_stopped = False
        self._sync_task = asyncio.ensure_future(self._sync_loop())
        return ok_response(request_id, upstream=upstream)
