"""The read-balancing front door: one write route, N read routes.

A :class:`FrontDoor` is an asyncio proxy that owns a client's view of
a replicated topology — one primary :class:`DirectoryServer` and N
followers running with ``replica_of`` — and gives wire-protocol
clients a single address that scales reads with hardware:

* ``add`` / ``delete`` / ``txn`` / ``modify`` go to the primary, and
  the reply's ``position`` payload (committed atomically with the
  write) feeds the staleness contract below;
* ``search`` / ``check`` spread across the followers under a
  **bounded-staleness contract**: the client may pass ``require_seq``
  (a ``position`` payload an earlier response carried — the router
  serves the read from a replica whose applied frontier is at least
  that position, falling through to the primary when every follower
  lags) or ``max_lag`` (frames of acceptable lag; ``0`` means primary
  reads).  Every reply still carries ``position``, so requests chain.

Per connection the front door additionally enforces **monotonic
reads**: the largest position any response on that connection carried
becomes an implicit ``require_seq`` floor for every later read — a
client never observes its own history running backwards, not even
across a failover.

Failover is automatic: a health-probe loop pings every backend and
polls its frontier; when the primary stops answering, the most
advanced follower is elected and driven through the server's
``promote`` operation (PR 9's promotion path — it refuses while a 2PC
prepare is in doubt or a sharded cohort sits off its replicated cut,
in which case the next candidate is tried), the write route is
repointed, and the surviving followers are re-attached to the new
primary's stream behind the generation bump.  The elected follower's
pre-promotion frontier is recorded as a **lost floor**: a later
``require_seq`` pointing past it — a position only the dead primary
ever acknowledged — answers a typed ``position_lost`` error instead of
silently serving older state.

Why reads scale this way at all is Theorem 4.1: legality under a
bounding schema decomposes into per-entry (modular) verdicts over a
committed instance, so any replica holding a committed prefix answers
``search``/``check`` exactly as the primary would have at that
position — the front door only has to pick a replica whose position
satisfies the caller.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.server.client import DirectoryClient, ServerError
from repro.server.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)

__all__ = ["FrontDoor", "position_geq", "position_max"]

_READ_OPS = ("search", "check")
_WRITE_OPS = ("add", "delete", "txn", "modify")


def _is_plain(position: dict) -> bool:
    """Plain positions are ``{"generation": g, "seq": s}``; sharded
    ones map shard names to ``[g, s]`` pairs."""
    return "generation" in position and not isinstance(
        position.get("generation"), dict
    )


def _plain_tuple(position: dict) -> tuple:
    return (position.get("generation", 0), position.get("seq", 0))


def position_geq(position: Optional[dict], require: Optional[dict]) -> bool:
    """Whether ``position`` satisfies ``require`` (both ``position``
    payloads).  Positions compare lexicographically per WAL — a
    generation bump dominates any sequence — and a sharded requirement
    must be met on every shard it mentions."""
    if require is None:
        return True
    if position is None:
        return False
    if _is_plain(require):
        if not _is_plain(position):
            return False
        return _plain_tuple(position) >= _plain_tuple(require)
    if _is_plain(position):
        return False
    return all(
        tuple(position.get(name, (0, 0))) >= tuple(pos)
        for name, pos in require.items()
    )


def position_max(a: Optional[dict], b: Optional[dict]) -> Optional[dict]:
    """The pointwise-larger of two ``position`` payloads (the monotonic
    floor a connection accumulates)."""
    if a is None:
        return b
    if b is None:
        return a
    if _is_plain(a) and _is_plain(b):
        return a if _plain_tuple(a) >= _plain_tuple(b) else b
    if _is_plain(a) or _is_plain(b):
        return b  # shape change (topology swap): trust the newer payload
    merged = dict(a)
    for name, pos in b.items():
        if tuple(pos) > tuple(merged.get(name, (0, 0))):
            merged[name] = pos
    return merged


def _valid_position_payload(payload) -> bool:
    def ok_int(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) \
            and value >= 0

    if not isinstance(payload, dict) or not payload:
        return False
    if _is_plain(payload):
        return set(payload) <= {"generation", "seq"} and all(
            ok_int(payload.get(key, 0)) for key in ("generation", "seq")
        )
    return all(
        isinstance(name, str)
        and isinstance(pos, (list, tuple))
        and len(pos) == 2
        and all(ok_int(p) for p in pos)
        for name, pos in payload.items()
    )


class _Backend:
    """One member server as the front door sees it."""

    def __init__(self, address: str) -> None:
        self.address = address
        self.client: Optional[DirectoryClient] = None
        self.alive = True
        self.fails = 0
        self.position: Optional[dict] = None

    def payload(self) -> dict:
        return {
            "address": self.address,
            "alive": self.alive,
            "position": self.position,
        }


class _FrontConnection:
    """Per-client state: identity plus the monotonic read floor."""

    def __init__(self, writer) -> None:
        self.writer = writer
        self.bound_dn: Optional[str] = None
        self.busy = False
        self.floor: Optional[dict] = None


class FrontDoor:
    """Proxy one primary and N follower endpoints behind one address.

    Parameters
    ----------
    primary:
        ``"host:port"`` of the writable member server.
    replicas:
        ``"host:port"`` addresses of the follower servers.
    probe_interval / probe_timeout / fail_after:
        Health loop tuning: probe every ``probe_interval`` seconds with
        ``probe_timeout`` per probe; ``fail_after`` consecutive failed
        probes of the primary trigger failover.
    """

    def __init__(
        self,
        primary: str,
        replicas: List[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        probe_interval: float = 0.5,
        probe_timeout: float = 2.0,
        fail_after: int = 2,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.fail_after = fail_after
        self._primary = _Backend(primary)
        self._replicas = [_Backend(address) for address in replicas]
        self._lost_floors: List[dict] = []
        self.failovers = 0
        self._rotation = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: "dict[asyncio.Task, _FrontConnection]" = {}
        self._health_task: Optional[asyncio.Task] = None
        self._probe_now = asyncio.Event()
        self._failover_lock = asyncio.Lock()
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound listen port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("front door is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listen socket and start the health-probe loop."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def stop(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Graceful SIGTERM path: stop accepting, nudge idle clients,
        let in-flight requests finish, drop the backend pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            await asyncio.gather(self._health_task, return_exceptions=True)
            self._health_task = None
        for connection in list(self._connections.values()):
            if not connection.busy:
                try:
                    connection.writer.close()
                except Exception:
                    pass
        pending = {t for t in self._connections if not t.done()}
        if pending and drain:
            _, pending = await asyncio.wait(pending, timeout=timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for backend in self._backends():
            await self._drop_client(backend)

    def _backends(self) -> List[_Backend]:
        return [self._primary] + list(self._replicas)

    # ------------------------------------------------------------------
    # backend pool
    # ------------------------------------------------------------------
    async def _ensure_client(self, backend: _Backend) -> DirectoryClient:
        if backend.client is None:
            host, _, port = backend.address.rpartition(":")
            client = await asyncio.wait_for(
                DirectoryClient.connect(host, int(port)), self.probe_timeout
            )
            try:
                await client.bind("cn=frontdoor")
            except BaseException:
                await client.close()
                raise
            backend.client = client
        return backend.client

    async def _drop_client(self, backend: _Backend) -> None:
        client, backend.client = backend.client, None
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass

    async def _mark_dead(self, backend: _Backend) -> None:
        backend.alive = False
        backend.fails = self.fail_after
        await self._drop_client(backend)

    # ------------------------------------------------------------------
    # client-facing protocol
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        connection = _FrontConnection(writer)
        self._connections[task] = connection
        try:
            while not self._draining:
                request = await read_frame(reader)
                if request is None:
                    break
                connection.busy = True
                try:
                    response = await self._dispatch(connection, request)
                    if response is None:  # unbind
                        break
                    await write_frame(writer, response)
                finally:
                    connection.busy = False
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, connection: _FrontConnection, request: dict
    ) -> Optional[dict]:
        op = request.get("op")
        request_id = request.get("id")
        if op == "ping":
            return ok_response(request_id)
        if op == "topology":
            return self._op_topology(request_id)
        if op == "bind":
            dn = request.get("dn", "")
            if not isinstance(dn, str):
                return error_response(
                    request_id, "bad_request", "bind dn must be a string"
                )
            connection.bound_dn = dn
            return ok_response(request_id, dn=dn)
        if op == "unbind":
            await write_frame(connection.writer, ok_response(request_id))
            return None
        if connection.bound_dn is None:
            return error_response(
                request_id, "not_bound",
                f"operation {op!r} requires a prior bind",
            )
        if op in _WRITE_OPS:
            return await self._forward_write(connection, request)
        if op in _READ_OPS:
            return await self._forward_read(connection, request)
        if op in ("watch", "replicate", "promote", "reattach"):
            return error_response(
                request_id, "bad_request",
                f"{op} is not served through the front door; connect to "
                "a member server directly",
            )
        return error_response(
            request_id, "unknown_op", f"unknown operation {op!r}"
        )

    def _op_topology(self, request_id) -> dict:
        """The routing table: who serves writes, who serves reads, at
        which frontiers — ``fsck --frontdoor`` and the harness's
        oracle both read it here."""
        return ok_response(
            request_id,
            primary=self._primary.payload(),
            replicas=[backend.payload() for backend in self._replicas],
            lost_floors=list(self._lost_floors),
            failovers=self.failovers,
        )

    # ------------------------------------------------------------------
    # write route
    # ------------------------------------------------------------------
    async def _forward_write(
        self, connection: _FrontConnection, request: dict
    ) -> dict:
        request_id = request.get("id")
        fields = {
            key: value
            for key, value in request.items()
            if key not in ("op", "id")
        }
        backend = self._primary
        if not backend.alive:
            return error_response(
                request_id, "unavailable",
                "the primary is down; failover in progress — retry",
            )
        try:
            client = await self._ensure_client(backend)
            response = await client.request(request["op"], **fields)
        except ServerError as exc:
            return error_response(request_id, exc.code, exc.message)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            # A write that died in flight is ambiguous — it may or may
            # not have committed — so it is NOT retried elsewhere; the
            # client decides, with idempotence it can reason about.
            await self._mark_dead(backend)
            self._probe_now.set()
            return error_response(
                request_id, "unavailable",
                "lost the primary mid-write; the write may or may not "
                "have committed — verify and retry after failover",
            )
        position = response.get("position")
        backend.position = position_max(backend.position, position)
        connection.floor = position_max(connection.floor, position)
        response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # read route
    # ------------------------------------------------------------------
    async def _forward_read(
        self, connection: _FrontConnection, request: dict
    ) -> dict:
        request_id = request.get("id")
        require = request.get("require_seq")
        max_lag = request.get("max_lag")
        if require is not None and not _valid_position_payload(require):
            return error_response(
                request_id, "bad_request",
                "require_seq must be a position payload (non-negative "
                "integers, booleans excluded)",
            )
        if max_lag is not None and (
            not isinstance(max_lag, int)
            or isinstance(max_lag, bool)
            or max_lag < 0
        ):
            return error_response(
                request_id, "bad_request",
                f"max_lag must be a non-negative integer, got {max_lag!r}",
            )
        # The lost-floor check runs on the caller's *explicit*
        # requirement: a connection floor raised by post-failover
        # responses would otherwise dominate the (older-generation)
        # lost position in the merge and silently mask the loss.
        if self._require_lost(require):
            return error_response(
                request_id, "position_lost",
                f"required position {require} exceeds what survived "
                "failover; the acknowledging primary died before any "
                "follower replicated it",
            )
        # The connection's floor rides along: reads are monotonic even
        # when the caller never asks for read-your-writes explicitly.
        require = position_max(connection.floor, require)
        fields = {
            key: value
            for key, value in request.items()
            if key not in ("op", "id", "require_seq", "max_lag")
        }
        for backend in self._read_candidates(require, max_lag):
            try:
                client = await self._ensure_client(backend)
                response = await client.request(request["op"], **fields)
            except ServerError as exc:
                if exc.code == "store_error" and backend is not self._primary:
                    continue  # replica not serving yet; next candidate
                return error_response(request_id, exc.code, exc.message)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                # Reads are side-effect-free: a follower dying
                # mid-search retries transparently on the next route.
                if backend is not self._primary:
                    await self._mark_dead(backend)
                    continue
                await self._mark_dead(backend)
                self._probe_now.set()
                break
            position = response.get("position")
            backend.position = position_max(backend.position, position)
            if not position_geq(position, require):
                continue  # served, but staler than the contract allows
            connection.floor = position_max(connection.floor, position)
            response["id"] = request_id
            return response
        return error_response(
            request_id, "unavailable",
            "no backend can serve this read at the required position "
            "right now; retry",
        )

    def _read_candidates(
        self, require: Optional[dict], max_lag: Optional[int]
    ) -> List[_Backend]:
        """Follower rotation, staleness-filtered, primary always last.

        ``max_lag=0`` short-circuits to the primary.  A follower whose
        cached frontier already satisfies ``require`` is preferred;
        ones that might have caught up since their last probe still get
        a try (the response's position is verified either way) before
        the read falls through to the primary."""
        if max_lag == 0:
            return [self._primary]
        followers = [b for b in self._replicas if b.alive]
        if not followers:
            return [self._primary]
        self._rotation += 1
        offset = self._rotation % len(followers)
        followers = followers[offset:] + followers[:offset]
        if max_lag is not None and self._primary.position is not None \
                and _is_plain(self._primary.position):
            head = _plain_tuple(self._primary.position)
            followers = [
                b for b in followers
                if b.position is not None
                and _is_plain(b.position)
                and _plain_tuple(b.position)[0] == head[0]
                and head[1] - _plain_tuple(b.position)[1] <= max_lag
            ]
        if require is not None:
            satisfied = [
                b for b in followers if position_geq(b.position, require)
            ]
            lagging = [b for b in followers if b not in satisfied]
            followers = satisfied + lagging
        return followers + [self._primary]

    def _require_lost(self, require: Optional[dict]) -> bool:
        """Whether ``require`` points past a recorded lost floor — a
        position only the dead primary ever held.  Same-generation
        comparison only: positions in the new generation are the new
        primary's own history and always servable."""
        if require is None:
            return False
        for floor in self._lost_floors:
            if _is_plain(floor) and _is_plain(require):
                if require.get("generation") == floor.get("generation") \
                        and require.get("seq", 0) > floor.get("seq", 0):
                    return True
            elif not _is_plain(floor) and not _is_plain(require):
                for name, pos in require.items():
                    held = floor.get(name)
                    if held is not None and pos[0] == held[0] \
                            and pos[1] > held[1]:
                        return True
        return False

    # ------------------------------------------------------------------
    # health and failover
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while not self._draining:
            try:
                await asyncio.wait_for(
                    self._probe_now.wait(), self.probe_interval
                )
            except asyncio.TimeoutError:
                pass
            self._probe_now.clear()
            if self._draining:
                return
            for backend in self._backends():
                await self._probe(backend)
            if not self._primary.alive:
                async with self._failover_lock:
                    if not self._primary.alive:
                        await self._failover()

    async def _probe(self, backend: _Backend) -> None:
        try:
            client = await self._ensure_client(backend)
            response = await asyncio.wait_for(
                client.position(), self.probe_timeout
            )
        except Exception:
            backend.fails += 1
            await self._drop_client(backend)
            if backend.fails >= self.fail_after:
                backend.alive = False
            return
        backend.fails = 0
        backend.alive = True
        backend.position = position_max(
            backend.position, response.get("position") or None
        )

    async def _failover(self) -> None:
        """Elect the most advanced live follower and promote it.

        A candidate that refuses (in-doubt 2PC state, an inconsistent
        sharded cut) or dies mid-promotion is skipped and the next most
        advanced follower is tried.  On success the write route is
        repointed, the elected follower's pre-promotion frontier is
        recorded as a lost floor, and every surviving follower is
        re-attached to the new primary's stream."""

        def key(backend: _Backend):
            position = backend.position
            if position is None:
                return ()
            if _is_plain(position):
                return _plain_tuple(position)
            return tuple(sorted(
                (name, pos[0], pos[1]) for name, pos in position.items()
            ))

        candidates = sorted(
            (b for b in self._replicas if b.alive), key=key, reverse=True
        )
        for backend in candidates:
            try:
                client = await self._ensure_client(backend)
                probe = await asyncio.wait_for(
                    client.position(), self.probe_timeout
                )
                elected_floor = probe.get("position")
                promoted = await client.promote()
            except ServerError:
                continue  # refused (in doubt / off-cut): next candidate
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                await self._mark_dead(backend)
                continue
            if elected_floor:
                self._lost_floors.append(elected_floor)
            self._replicas = [b for b in self._replicas if b is not backend]
            backend.position = promoted.get("position")
            backend.alive = True
            backend.fails = 0
            self._primary = backend
            self.failovers += 1
            for survivor in self._replicas:
                try:
                    surviving = await self._ensure_client(survivor)
                    await asyncio.wait_for(
                        surviving.reattach(self._primary.address),
                        self.probe_timeout,
                    )
                except Exception:
                    await self._mark_dead(survivor)
            return
