"""Asyncio client for the directory server.

Used by the test suite and ``benchmarks/bench_server.py``; also the
reference implementation of the wire protocol's client side.  Requests
are matched to responses by ``id``; server-pushed ``notify`` frames
(which carry no ``id``) land in a queue consumed by
:meth:`DirectoryClient.next_notify` — so a follower ``await``\\ s a
commit instead of polling.  Replication stream messages (``op:
"repl"``, pushed after a :meth:`DirectoryClient.replicate` subscribe)
land in their own queue consumed by
:meth:`DirectoryClient.next_stream_message`;
:func:`sync_replica` drives a
:class:`~repro.store.replicate.ReplicaApplier` from it.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.server.protocol import read_frame, write_frame

__all__ = ["DirectoryClient", "ServerError", "sync_replica"]


class ServerError(Exception):
    """A response with ``ok: false``; carries the machine-readable code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class DirectoryClient:
    """One protocol connection.  All methods are coroutine-safe to call
    sequentially; pipelining is possible by issuing requests from
    separate tasks (responses are matched by id)."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._notifies: asyncio.Queue = asyncio.Queue()
        self._stream: asyncio.Queue = asyncio.Queue()
        self._closed = False
        self._receiver = asyncio.ensure_future(self._receive_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "DirectoryClient":
        """Open a TCP connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _receive_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                if frame.get("op") == "notify":
                    self._notifies.put_nowait(frame)
                    continue
                if frame.get("op") == "repl":
                    self._stream.put_nowait(frame)
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except Exception as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError(f"connection lost: {exc}")
                    )
            self._pending.clear()
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))
            self._pending.clear()

    async def request(self, op: str, **fields) -> dict:
        """Send one request and await its response; raises
        :class:`ServerError` on ``ok: false``."""
        if self._closed:
            raise ConnectionError("client is closed")
        if self._receiver.done():
            # The receive loop has already unwound (peer died): a future
            # registered now would never be resolved by it.
            raise ConnectionError("connection lost")
        request_id = next(self._ids)
        message = {"op": op, "id": request_id}
        message.update(fields)
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        await write_frame(self._writer, message)
        response = await future
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown"),
                response.get("message", ""),
            )
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def ping(self) -> dict:
        """Liveness probe (allowed before bind)."""
        return await self.request("ping")

    async def bind(self, dn: str = "") -> dict:
        """Establish the session identity (``""`` = anonymous);
        required before any other operation."""
        return await self.request("bind", dn=dn)

    async def search(
        self,
        base: Optional[str] = None,
        scope: str = "sub",
        filter: Optional[str] = None,
        size_limit: Optional[int] = None,
        require_seq=None,
        max_lag: Optional[int] = None,
    ) -> dict:
        """Search the server's committed view; returns ``entries`` in
        canonical global document order, a ``truncated`` flag (true
        when ``size_limit`` cut the result), plus ``position``.

        ``require_seq`` / ``max_lag`` express the bounded-staleness
        contract to a front door (see
        :class:`~repro.server.frontdoor.FrontDoor`): ``require_seq`` is
        a ``position`` payload from an earlier response this read must
        not precede (read-your-writes); ``max_lag=0`` forces primary
        reads.  A plain server ignores both (its view is the primary's).
        """
        fields: dict = {"scope": scope}
        if base is not None:
            fields["base"] = base
        if filter is not None:
            fields["filter"] = filter
        if size_limit is not None:
            fields["size_limit"] = size_limit
        if require_seq is not None:
            fields["require_seq"] = require_seq
        if max_lag is not None:
            fields["max_lag"] = max_lag
        return await self.request("search", **fields)

    async def add(self, dn: str, classes, attributes=None) -> dict:
        """Insert one entry as a single-operation transaction."""
        return await self.request(
            "add", dn=dn, classes=list(classes),
            attributes=dict(attributes or {}),
        )

    async def delete(self, dn: str) -> dict:
        """Delete one leaf entry as a single-operation transaction."""
        return await self.request("delete", dn=dn)

    async def txn(self, changes: str) -> dict:
        """Apply an LDIF changes document as one atomic transaction."""
        return await self.request("txn", changes=changes)

    async def modify(self, changes: str) -> dict:
        """Apply an LDIF document of ``changetype: modify`` records."""
        return await self.request("modify", changes=changes)

    async def check(self, require_seq=None, max_lag: Optional[int] = None) -> dict:
        """Run the full legality check (the extended operation) on
        the connection's freshly refreshed view.  ``require_seq`` /
        ``max_lag`` carry the staleness contract through a front door,
        exactly as on :meth:`search`."""
        fields: dict = {}
        if require_seq is not None:
            fields["require_seq"] = require_seq
        if max_lag is not None:
            fields["max_lag"] = max_lag
        return await self.request("check", **fields)

    async def position(self) -> dict:
        """The server's role and committed frontier (allowed before
        bind; the front door's health-probe surface)."""
        return await self.request("position")

    async def promote(self) -> dict:
        """Ask a replica server to promote itself to a primary."""
        return await self.request("promote")

    async def reattach(self, upstream: str) -> dict:
        """Repoint a replica server's sync loop at a new upstream."""
        return await self.request("reattach", upstream=upstream)

    async def watch(self) -> dict:
        """Subscribe to commit notifications on this connection."""
        return await self.request("watch")

    async def next_notify(self, timeout: Optional[float] = None) -> dict:
        """Await the next server-pushed commit notification."""
        if timeout is None:
            return await self._notifies.get()
        return await asyncio.wait_for(self._notifies.get(), timeout)

    async def replicate(
        self,
        generation: int = 0,
        seq: int = 0,
        shards: Optional[dict] = None,
    ) -> dict:
        """Subscribe this connection as a replication follower at the
        given durable position (``(0, 0)`` = fresh: the primary ships a
        snapshot first).  A sharded primary takes ``shards`` — a map of
        per-shard ``(generation, seq)`` pairs — instead.  The response
        acknowledges with the primary's committed frontier; stream
        messages then arrive via :meth:`next_stream_message`."""
        if shards is not None:
            return await self.request(
                "replicate",
                shards={name: list(pos) for name, pos in shards.items()},
            )
        return await self.request("replicate", generation=generation, seq=seq)

    async def next_stream_message(
        self, timeout: Optional[float] = None
    ) -> dict:
        """Await the next server-pushed replication stream message."""
        if timeout is None:
            return await self._stream.get()
        return await asyncio.wait_for(self._stream.get(), timeout)

    async def unbind(self) -> None:
        """End the session and close the connection."""
        try:
            await self.request("unbind")
        except ConnectionError:
            pass
        await self.close()

    async def close(self) -> None:
        """Tear the connection down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._receiver.cancel()
        try:
            await self._receiver
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "DirectoryClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def sync_replica(
    client: DirectoryClient,
    applier,
    *,
    until: Optional[tuple] = None,
    timeout: Optional[float] = 30.0,
) -> tuple:
    """Drive a :class:`~repro.store.replicate.ReplicaApplier` from a
    server's replication stream until it reaches ``until`` (default:
    the committed frontier the server acknowledged at subscribe time).

    Subscribes at the applier's durable position, then applies each
    pushed stream message on the shared executor (the applier fsyncs).
    Positions compare lexicographically, so a compaction fold that
    bumps the generation past the target still terminates.  Returns
    the applier's final position; keep calling
    :meth:`DirectoryClient.next_stream_message` /
    ``applier.apply_message`` afterwards to follow live.

    A :class:`~repro.store.replicate.ShardedReplicaApplier` (its
    ``position()`` is a per-shard map) syncs the same way against a
    sharded primary's ``shards`` acknowledgement, per-shard positions
    each compared lexicographically.
    """
    position = applier.position()
    loop = asyncio.get_running_loop()
    if isinstance(position, dict):
        ack = await client.replicate(shards=position)
        target = dict(until) if until is not None else {
            name: tuple(pos) for name, pos in ack["shards"].items()
        }

        def behind() -> bool:
            current = applier.position()
            return any(
                tuple(current.get(name, (0, 0))) < tuple(pos)
                for name, pos in target.items()
            )
    else:
        ack = await client.replicate(*position)
        target = tuple(until) if until is not None else (
            ack["generation"], ack["seq"],
        )
        applier.frontier = target

        def behind() -> bool:
            return applier.position() < target

    while behind():
        message = await client.next_stream_message(timeout)
        await loop.run_in_executor(None, applier.apply_message, message)
    return applier.position()
