"""Command-line interface.

Usage::

    bounding-schemas validate    --schema S.dsl --data D.ldif [--structure query|naive|batched]
    bounding-schemas check       --schema S.dsl (--data D.ldif | --store DIR)
                                 [--shards] [--jobs N] [--profile] [--follow]
                                 [--interval SEC] [--iterations N]
                                 [--structure batched|query|naive]
    bounding-schemas create      STORE_DIR --schema S.dsl [--data D.ldif]
                                 [--shard NAME=BASE_DN ...]
    bounding-schemas consistency --schema S.dsl [--witness OUT.ldif] [--proof]
                                 [--repair]
    bounding-schemas query       --data D.ldif --filter '(objectClass=person)'
    bounding-schemas translate   --schema S.dsl
    bounding-schemas generate    --workload whitepages|den --scale N --out D.ldif
                                 [--schema-out S.dsl] [--seed N]
    bounding-schemas apply       --schema S.dsl --data D.ldif --changes C.ldif
                                 [--out NEW.ldif]
    bounding-schemas discover    --data D.ldif [--out S.dsl]
                                 [--min-forbidden-support N]
    bounding-schemas fsck        STORE_DIR [--schema S.dsl] [--read-only]
                                 [--shards]
    bounding-schemas recover     STORE_DIR [--schema S.dsl] [--force]
                                 [--shards] [--wait-lock SEC]

``fsck --shards`` distinguishes its exit codes: 0 the composite view is
healthy, 1 it is degraded (journal damage, orphaned shards, composite
violations), 3 a 2PC participant is in doubt (a prepared transaction
awaits the coordinator log's decision — run ``recover --shards``).
Commands that open a store for writing (``create``, ``recover``) accept
``--wait-lock SECONDS``: instead of failing immediately on another
process's advisory lock, retry with bounded exponential backoff and
jitter until the lock frees or the budget runs out.

``validate``/``apply`` exit 0 when the (resulting) instance is legal and
1 otherwise; ``consistency`` exits 0 when the schema is consistent —
all suitable for CI pipelines guarding directory content.  ``apply``
runs LDIF change records (``changetype: add``/``delete``) through the
Section 4 incremental checker: the whole transaction is applied or,
on any violation, rolled back with an explanation.

``check`` is ``validate`` running on the parallel, memoized legality
engine (:mod:`repro.legality.engine`): ``--jobs N`` shards the per-entry
content check across N workers, ``--profile`` prints the engine's
counter/timer table (entries checked, cache hits, query work, per-phase
wall time).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.consistency.checker import ConsistencyChecker
from repro.legality.checker import LegalityChecker
from repro.ldif.reader import load_ldif
from repro.ldif.writer import dump_ldif, serialize_ldif
from repro.query.evaluator import QueryEvaluator
from repro.query.ast import Select
from repro.query.filter_parser import parse_filter
from repro.query.translate import translate_element
from repro.schema.dsl import dump_dsl, load_dsl

__all__ = ["main"]


def _cmd_validate(args: argparse.Namespace) -> int:
    schema = load_dsl(args.schema)
    instance = load_ldif(args.data)
    checker = LegalityChecker(schema, structure=args.structure)
    report = checker.check(instance)
    if report.is_legal:
        print(f"LEGAL: {len(instance)} entries satisfy {args.schema}")
        return 0
    print(f"ILLEGAL: {len(report)} violation(s)")
    for violation in report:
        print(f"  {violation}")
    return 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.legality.engine import default_parallelism

    if args.store:
        return _check_store(args)
    if not args.data:
        print("check: one of --data or --store is required", file=sys.stderr)
        return 2
    schema = load_dsl(args.schema)
    instance = load_ldif(args.data)
    jobs = args.jobs if args.jobs > 0 else default_parallelism()
    checker = LegalityChecker(schema, structure=args.structure, parallelism=jobs)
    try:
        report = checker.check(instance)
    finally:
        checker.close()
    if report.is_legal:
        print(f"LEGAL: {len(instance)} entries satisfy {args.schema}")
    else:
        print(f"ILLEGAL: {len(report)} violation(s)")
        for violation in report:
            print(f"  {violation}")
    if args.profile and report.stats is not None:
        print(report.stats.format_table())
    return 0 if report.is_legal else 1


def _check_store(args: argparse.Namespace) -> int:
    """``check --store DIR [--follow]``: legality of a live store through
    a lock-free reader view.  With ``--follow``, refresh and re-check in
    a loop (memoized, so each round costs only the delta); ``--iterations``
    bounds the loop (0 = until interrupted).  Interrupting a follow
    (Ctrl-C) is a normal shutdown: message, exit 0, no traceback; a
    store that vanishes mid-follow ends the loop with a clear message
    and exit 1."""
    import os
    import time

    from repro.legality.engine import default_parallelism
    from repro.store.reader import StoreReader
    from repro.store.recovery import SNAPSHOT_FILE

    if args.follow and args.interval <= 0:
        # A zero or negative interval would busy-spin the CPU between
        # refreshes; refuse it up front (covers --shards follow too).
        print(
            f"check: --interval must be positive with --follow "
            f"(got {args.interval:g})",
            file=sys.stderr,
        )
        return 2
    schema = load_dsl(args.schema)
    jobs = args.jobs if args.jobs > 0 else default_parallelism()
    if getattr(args, "shards", False):
        return _check_sharded_store(args, schema, jobs)
    reader = StoreReader.open(
        args.store, schema, parallelism=jobs, structure=args.structure
    )
    status = 0
    rounds = 0
    try:
        while True:
            report = reader.check()
            generation, seq = reader.position()
            if report.is_legal:
                print(
                    f"[gen {generation} seq {seq}] LEGAL: "
                    f"{len(reader.instance)} entries"
                )
            else:
                status = 1
                print(
                    f"[gen {generation} seq {seq}] ILLEGAL: "
                    f"{len(report)} violation(s)"
                )
                for violation in report:
                    print(f"  {violation}")
            if args.profile and report.stats is not None:
                print(report.stats.format_table())
            rounds += 1
            if not args.follow:
                break
            if args.iterations and rounds >= args.iterations:
                break
            time.sleep(args.interval)
            refreshed = reader.refresh()
            if refreshed.stale:
                if not os.path.exists(os.path.join(args.store, SNAPSHOT_FILE)):
                    print(
                        f"store {args.store!r} is gone (removed or compacted "
                        "away); stopping follow",
                        file=sys.stderr,
                    )
                    status = 1
                    break
                print(f"stale view: {refreshed.note}", file=sys.stderr)
    except KeyboardInterrupt:
        print("follow interrupted; exiting", file=sys.stderr)
        status = 0
    finally:
        reader.close()
    return status


def _frontier_tag(frontier) -> str:
    """``shard@gGEN.SEQ`` pairs, the composite position shown per round."""
    return " ".join(
        f"{name}@g{generation}.{seq}"
        for name, (generation, seq) in sorted(frontier.items())
    )


def _check_sharded_store(args: argparse.Namespace, schema, jobs: int) -> int:
    """``check --store DIR --shards``: legality of a sharded store
    through a composite of per-shard lock-free readers.

    One-shot with ``--jobs N > 1`` runs one worker *process per shard*
    (:func:`repro.store.sharded.check_shards_parallel`); ``--follow``
    refreshes every shard view each round and prints the composite
    frontier.  Ctrl-C is a normal shutdown (exit 0); a shard map that
    vanishes mid-follow ends the loop with a message and exit 1.
    """
    import os
    import time

    from repro.errors import ShardMapError
    from repro.store.shardmap import shard_map_path
    from repro.store.sharded import CompositeReader, check_shards_parallel

    try:
        if not args.follow and jobs > 1:
            report, entries = check_shards_parallel(
                args.store, schema, jobs=jobs, structure=args.structure
            )
            if report.is_legal:
                print(f"LEGAL: {entries} entries across shards ({jobs} jobs)")
                return 0
            print(f"ILLEGAL: {len(report)} violation(s)")
            for violation in report:
                print(f"  {violation}")
            return 1
        reader = CompositeReader.open(
            args.store, schema, parallelism=jobs, structure=args.structure
        )
    except ShardMapError as exc:
        print(f"check: {exc}", file=sys.stderr)
        return 1
    status = 0
    rounds = 0
    try:
        while True:
            report = reader.check()
            tag = _frontier_tag(reader.frontier())
            if report.is_legal:
                print(f"[{tag}] LEGAL: {len(reader.instance)} entries")
            else:
                status = 1
                print(f"[{tag}] ILLEGAL: {len(report)} violation(s)")
                for violation in report:
                    print(f"  {violation}")
            rounds += 1
            if not args.follow:
                break
            if args.iterations and rounds >= args.iterations:
                break
            time.sleep(args.interval)
            refreshed = reader.refresh()
            if refreshed.stale:
                if not os.path.exists(shard_map_path(args.store)):
                    print(
                        f"sharded store {args.store!r} is gone (removed "
                        "mid-follow); stopping follow",
                        file=sys.stderr,
                    )
                    status = 1
                    break
                print(f"stale view: {refreshed.note}", file=sys.stderr)
    except KeyboardInterrupt:
        print("follow interrupted; exiting", file=sys.stderr)
        status = 0
    finally:
        reader.close()
    return status


def _retry_locked(fn, wait_lock: float, command: str):
    """Run ``fn``, retrying on :class:`StoreLockedError` with bounded
    exponential backoff plus jitter for up to ``wait_lock`` seconds.

    The holder's pid (when the lock file records one) is reported on
    every retry, so an operator can see *who* to wait for.  With
    ``wait_lock`` 0 (the default) the first failure propagates —
    exactly the old fail-fast behavior."""
    import random
    import time

    from repro.errors import StoreLockedError

    deadline = time.monotonic() + max(0.0, wait_lock)
    delay = 0.05
    while True:
        try:
            return fn()
        except StoreLockedError as exc:
            remaining = deadline - time.monotonic()
            holder = (
                f" (held by pid {exc.holder_pid})"
                if exc.holder_pid is not None
                else ""
            )
            if remaining <= 0:
                if wait_lock > 0:
                    print(
                        f"{command}: gave up waiting after {wait_lock:g}s"
                        f"{holder}",
                        file=sys.stderr,
                    )
                raise
            sleep_for = min(delay, remaining) * (0.5 + random.random())
            print(
                f"{command}: store is locked{holder}; retrying in "
                f"{sleep_for:.2f}s",
                file=sys.stderr,
            )
            time.sleep(sleep_for)
            delay = min(delay * 2, 2.0)


def _parse_shard_args(pairs: List[str]) -> dict:
    """``NAME=BASE_DN`` pairs from repeated ``--shard`` flags."""
    bases = {}
    for pair in pairs:
        name, sep, base = pair.partition("=")
        if not sep or not name or not base:
            raise ValueError(
                f"--shard wants NAME=BASE_DN, got {pair!r}"
            )
        bases[name] = base
    return bases


def _cmd_create(args: argparse.Namespace) -> int:
    """``create``: initialize a store directory — plain, or sharded
    when ``--shard NAME=BASE_DN`` is given (repeatable, one per shard)."""
    from repro.errors import StoreError, UpdateError
    from repro.model.instance import DirectoryInstance
    from repro.store import DirectoryStore
    from repro.store.sharded import ShardedStore

    schema = load_dsl(args.schema)
    instance = (
        load_ldif(args.data) if args.data else DirectoryInstance()
    )
    wait_lock = getattr(args, "wait_lock", 0.0)
    try:
        if args.shard:
            bases = _parse_shard_args(args.shard)
            with _retry_locked(
                lambda: ShardedStore.create(
                    args.directory, schema, bases, instance
                ),
                wait_lock,
                "create",
            ) as store:
                print(
                    f"created sharded store {args.directory} "
                    f"({len(instance)} entries, {len(bases)} shard(s))"
                )
                for spec in store.shard_map:
                    print(
                        f"  {spec.name}: base {spec.base} "
                        f"({len(store.shard(spec.name).instance)} entries)"
                    )
        else:
            _retry_locked(
                lambda: DirectoryStore.create(args.directory, schema, instance),
                wait_lock,
                "create",
            ).close()
            print(f"created store {args.directory} ({len(instance)} entries)")
        return 0
    except (StoreError, UpdateError, ValueError, OSError) as exc:
        print(f"create: {exc}", file=sys.stderr)
        return 1


def _fsck_shards(directory: str, schema) -> int:
    """``fsck --shards``: inspect a sharded store — print the shard
    map, each shard's committed position and lag through lock-free
    readers, any in-doubt 2PC participants, and the composite legality
    verdict.  Touches nothing.

    Exit codes: 0 healthy, 1 degraded (damage, orphans, composite
    violations), 3 in-doubt 2PC state awaiting resolution."""
    from repro.errors import ShardMapError, StoreError
    from repro.store.recovery import recover
    from repro.store.shardmap import read_shard_map
    from repro.store.sharded import CompositeReader, shard_dir
    from repro.store.txlog import inspect_txlog

    if schema is None:
        print("fsck: --shards requires --schema", file=sys.stderr)
        return 2
    try:
        shard_map = read_shard_map(directory)
    except ShardMapError as exc:
        print(f"fsck: {exc}")
        return 1
    print(f"sharded store: {directory}")
    print(f"shard map: {len(shard_map)} shard(s)"
          + (" [nested cut]" if shard_map.has_cut() else ""))
    for spec in shard_map:
        print(f"  {spec.name}: base {spec.base}")
    _print_replica_state(directory)
    # In-doubt 2PC state: a prepared-but-undecided participant (found
    # by a per-shard recovery dry run) or an unfinished coordinator
    # record.  A corrupt coordinator log means the decisions themselves
    # cannot be trusted — that is in-doubt too.
    try:
        txlog = inspect_txlog(directory)
    except StoreError as exc:
        print(f"coordinator log: {exc}")
        print("IN-DOUBT 2PC STATE (coordinator log is corrupt)")
        return 3
    in_doubt = []
    for spec in shard_map:
        try:
            _, shard_report = recover(
                shard_dir(directory, spec.name), repair=False
            )
        except (StoreError, OSError):
            continue  # the reader/legality pass below reports damage
        if shard_report.in_doubt_txid is not None:
            in_doubt.append((spec.name, shard_report.in_doubt_txid))
    try:
        reader = CompositeReader.open(directory, schema)
    except (StoreError, OSError) as exc:
        print(f"fsck: {exc}")
        return 1
    try:
        from repro.legality.scope import shard_local_schema
        from repro.store.index import index_sidecar_status

        local_schema = shard_local_schema(schema, reader.scope)
        for name, (generation, seq) in sorted(reader.frontier().items()):
            shard = reader.shard_reader(name)
            lag = shard.lag()
            lag_note = (
                "current" if lag.current
                else f"{lag.generations} generation(s), {lag.frames} frame(s) behind"
            )
            # Index sidecar health is informational: any non-"present"
            # state just means the next open rebuilds.
            status = index_sidecar_status(
                shard_dir(directory, name), local_schema, generation, seq
            )
            print(
                f"  {name}: generation {generation}, seq {seq} "
                f"({len(shard.instance)} entries; {lag_note}; "
                f"index sidecar {status})"
            )
        print(f"scope: {reader.scope.summary()}")
        report = reader.check()
        print("legality: " + ("legal" if report.is_legal else "ILLEGAL"))
        if in_doubt or (txlog is not None and txlog.unfinished()):
            for name, txid in in_doubt:
                verdict = "abort" if txlog is None else txlog.verdict(txid)
                print(
                    f"  IN DOUBT: shard {name} holds prepared transaction "
                    f"{txid} (coordinator verdict: {verdict})"
                )
            resolved_txids = {txid for _, txid in in_doubt}
            if txlog is not None:
                for txid, entry in sorted(txlog.unfinished().items()):
                    if txid not in resolved_txids:
                        print(
                            f"  unfinished coordinator record: {txid} "
                            f"(state: {entry.state})"
                        )
            print("IN-DOUBT 2PC STATE (run `recover --shards` to resolve)")
            return 3
        if report.is_legal:
            print("COMPOSITE VIEW CONSISTENT")
            return 0
        for violation in report:
            print(f"  {violation}")
        return 1
    finally:
        reader.close()


def _cmd_apply(args: argparse.Namespace) -> int:
    from repro.ldif.changes import load_changes
    from repro.updates.incremental import IncrementalChecker

    schema = load_dsl(args.schema)
    instance = load_ldif(args.data)
    transaction = load_changes(args.changes)
    guard = IncrementalChecker(schema, instance)
    outcome = guard.apply_transaction(transaction)
    if outcome.applied:
        print(
            f"APPLIED: {len(transaction)} operation(s); instance now has "
            f"{len(instance)} entries (work: {outcome.cost} entries touched)"
        )
        if args.out:
            dump_ldif(instance, args.out)
            print(f"wrote updated instance to {args.out}")
        return 0
    print("REJECTED (rolled back):")
    for violation in outcome.report:
        print(f"  {violation}")
    return 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.errors import StoreError
    from repro.store.recovery import recover

    if getattr(args, "frontdoor", None):
        return _fsck_frontdoor(args.frontdoor)
    if args.directory is None:
        print("fsck: a store directory is required (or --frontdoor)",
              file=sys.stderr)
        return 2
    schema = load_dsl(args.schema) if args.schema else None
    if getattr(args, "shards", False):
        return _fsck_shards(args.directory, schema)
    if args.read_only:
        return _fsck_read_only(args.directory, schema)
    try:
        _, report = recover(args.directory, schema, repair=False)
    except (StoreError, OSError) as exc:
        print(f"fsck: {exc}")
        return 1
    if schema is not None:
        from repro.store.index import index_sidecar_status

        # Informational only: a missing/stale/corrupt sidecar just
        # means the next open rebuilds the indexes — never an error.
        print(
            "index sidecar: "
            + index_sidecar_status(
                args.directory, schema, report.generation, report.last_seq
            )
        )
    print(report.summary())
    _print_replica_state(args.directory)
    if report.healthy:
        print("HEALTHY")
        return 0
    print("DAMAGED (run `recover` to repair)")
    return 1


def _print_replica_state(directory: str) -> None:
    """Report the replication-follower sidecars, when present."""
    from repro.store.replicate import read_cut_state, read_replica_state

    state = read_replica_state(directory)
    if state is not None:
        print(
            "replica state: following "
            f"{state.get('upstream') or '<unknown upstream>'} — synced to "
            f"generation {state.get('generation')}, seq {state.get('seq')} "
            "(promote before writing locally)"
        )
    cut = read_cut_state(directory)
    if cut is not None:
        frontier = ", ".join(
            f"{name}: ({pos[0]}, {pos[1]})" for name, pos in sorted(cut.items())
        )
        print(
            f"replicated cut: {frontier} (the cohort is promotable only "
            "on this frontier)"
        )


def _fsck_frontdoor(address: str) -> int:
    """``fsck --frontdoor HOST:PORT``: report a running front door's
    topology — every member's address, liveness, and cached frontier,
    plus recorded lost floors.  Exit 0 when the primary is alive."""
    import asyncio

    from repro.server.client import DirectoryClient, ServerError

    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"fsck: --frontdoor must be HOST:PORT, got {address!r}",
              file=sys.stderr)
        return 2

    async def run() -> int:
        try:
            client = await DirectoryClient.connect(host, int(port_text))
        except (ConnectionError, OSError) as exc:
            print(f"fsck: cannot reach front door {address}: {exc}")
            return 1
        try:
            topology = await client.request("topology")
        except (ServerError, ConnectionError, OSError) as exc:
            print(f"fsck: {exc}")
            return 1
        finally:
            await client.close()

        def line(member: dict, role: str) -> None:
            position = member.get("position")
            frontier = "unknown frontier" if position is None else (
                _position_text(
                    (position["generation"], position["seq"])
                    if "generation" in position
                    else {n: tuple(p) for n, p in position.items()}
                )
            )
            liveness = "alive" if member.get("alive") else "DOWN"
            print(f"  {role} {member['address']}: {liveness}, {frontier}")

        print(f"front door: {address} "
              f"({topology.get('failovers', 0)} failover(s))")
        line(topology["primary"], "primary")
        for member in topology.get("replicas", []):
            line(member, "replica")
        for floor in topology.get("lost_floors", []):
            print(f"  lost floor: {floor} (positions past this in that "
                  "generation died with a demoted primary)")
        if not topology["primary"].get("alive"):
            print("PRIMARY DOWN (failover pending or no candidate)")
            return 1
        print("TOPOLOGY SERVING")
        return 0

    return asyncio.run(run())


def _fsck_read_only(directory: str, schema) -> int:
    """``fsck --read-only``: inspect the committed state through a
    lock-free reader — safe to point at a store a live writer holds
    locked, guaranteed to modify nothing (not even quarantine files)."""
    from repro.errors import StoreError
    from repro.store.reader import StoreReader

    if schema is None:
        print("fsck: --read-only requires --schema", file=sys.stderr)
        return 2
    try:
        reader = StoreReader.open(directory, schema)
    except (StoreError, OSError) as exc:
        print(f"fsck: {exc}")
        return 1
    try:
        generation, seq = reader.position()
        lag = reader.lag()
        report = reader.check()
        print(f"store: {directory}")
        print(f"view: generation {generation}, seq {seq} "
              f"({len(reader.instance)} entries)")
        print(
            "lag: current"
            if lag.current
            else f"lag: {lag.generations} generation(s), {lag.frames} frame(s)"
        )
        print("legality: " + ("legal" if report.is_legal else "ILLEGAL"))
        if report.is_legal:
            print("READ-ONLY VIEW CONSISTENT")
            return 0
        for violation in report:
            print(f"  {violation}")
        return 1
    finally:
        reader.close()


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.errors import StoreError
    from repro.store.recovery import recover

    schema = load_dsl(args.schema) if args.schema else None
    if getattr(args, "shards", False):
        return _recover_shards(args, schema)
    try:
        _, report = recover(
            args.directory, schema, repair=True, force=args.force
        )
    except (StoreError, OSError) as exc:
        print(f"recover: {exc}")
        return 1
    print(report.summary())
    if report.repaired:
        print("REPAIRED")
    if report.read_only:
        print("STILL DAMAGED (re-run with --force to quarantine corruption)")
        return 1
    return 0


def _recover_shards(args: argparse.Namespace, schema) -> int:
    """``recover --shards``: recover every shard and resolve in-doubt
    2PC participants from the coordinator log (presumed abort) by
    opening — and immediately closing — the sharded store, whose open
    path IS the recovery protocol.  ``--wait-lock`` retries when a live
    writer still holds a shard's lock."""
    from repro.errors import ShardMapError, StoreError
    from repro.store.sharded import ShardedStore
    from repro.store.txlog import inspect_txlog

    if schema is None:
        print("recover: --shards requires --schema", file=sys.stderr)
        return 2
    try:
        txlog = inspect_txlog(args.directory)
        pending = sorted(txlog.unfinished()) if txlog is not None else []
        store = _retry_locked(
            lambda: ShardedStore.open(args.directory, schema),
            getattr(args, "wait_lock", 0.0),
            "recover",
        )
    except (ShardMapError, StoreError, OSError) as exc:
        print(f"recover: {exc}")
        return 1
    try:
        for name in store.shard_names():
            print(f"  {name}: {store.shard(name).recovery_report.summary()}")
        if pending:
            print(
                f"resolved {len(pending)} in-doubt 2PC transaction(s): "
                + ", ".join(pending)
            )
        else:
            print("no in-doubt 2PC transactions")
        degraded = [
            name for name in store.shard_names() if store.shard(name).read_only
        ]
        if degraded:
            print(
                "STILL DAMAGED: shard(s) " + ", ".join(degraded)
                + " recovered read-only (repair them with per-shard "
                "`recover --force`)"
            )
            return 1
        print("SHARDS RECOVERED")
        return 0
    finally:
        store.close()


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.stats import collect_stats

    instance = load_ldif(args.data)
    print(collect_stats(instance))
    return 0


def _cmd_modify(args: argparse.Namespace) -> int:
    from repro.ldif.modify import apply_modification, parse_modifications
    from repro.updates.incremental import IncrementalChecker

    schema = load_dsl(args.schema)
    instance = load_ldif(args.data)
    with open(args.changes, "r", encoding="utf-8") as handle:
        records = parse_modifications(handle.read())
    guard = IncrementalChecker(schema, instance)
    for record in records:
        outcome = apply_modification(guard, record)
        if not outcome.applied:
            print(f"REJECTED at {record.dn} (earlier records kept):")
            for violation in outcome.report:
                print(f"  {violation}")
            return 1
        print(f"modified {record.dn}")
    if args.out:
        dump_ldif(instance, args.out)
        print(f"wrote updated instance to {args.out}")
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    from repro.schema.discovery import DiscoveryOptions, discover_schema
    from repro.schema.dsl import serialize_dsl

    instance = load_ldif(args.data)
    options = DiscoveryOptions(
        min_forbidden_support=args.min_forbidden_support,
    )
    result = discover_schema(instance, options)
    print(
        f"discovered from {len(instance)} entries: "
        f"{len(result.core_classes)} core / "
        f"{len(result.auxiliary_classes)} auxiliary classes, "
        f"{result.required_edges} required and "
        f"{result.forbidden_edges} forbidden relationships",
        file=sys.stderr,
    )
    for note in result.notes:
        print(f"note: {note}", file=sys.stderr)
    text = serialize_dsl(result.schema)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote schema to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_consistency(args: argparse.Namespace) -> int:
    schema = load_dsl(args.schema)
    checker = ConsistencyChecker(schema)
    result = checker.check(synthesize=args.witness is not None)
    if result.consistent:
        print(f"CONSISTENT ({len(result.closure)} facts in the closure)")
        empties = result.empty_classes()
        if empties:
            print(
                "warning: these classes can never be populated: "
                + ", ".join(sorted(empties))
            )
        if args.witness is not None:
            if result.witness is not None:
                dump_ldif(result.witness, args.witness)
                print(f"witness instance ({len(result.witness)} entries) "
                      f"written to {args.witness}")
            else:
                print(f"witness synthesis failed: {result.witness_error}")
        return 0
    print("INCONSISTENT")
    if args.proof:
        print(result.proof())
    else:
        print("(re-run with --proof for the derivation of ∅ □)")
    if args.repair:
        from repro.consistency.repair import suggest_repairs

        suggestions = suggest_repairs(schema)
        if suggestions:
            print("repair suggestions (smallest first):")
            for suggestion in suggestions:
                print(f"  {suggestion}")
        else:
            print("no repair of up to 3 structure-element removals exists")
    return 1


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.query.query_parser import parse_query

    instance = load_ldif(args.data)
    if args.hquery:
        query = parse_query(args.hquery)
    else:
        query = Select(parse_filter(args.filter))
    result = QueryEvaluator(instance).evaluate(query)
    for eid in sorted(result, key=lambda e: str(instance.dn_of(e))):
        print(instance.dn_of(eid))
    print(f"({len(result)} entries)", file=sys.stderr)
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    schema = load_dsl(args.schema)
    print("# Figure 4: structure elements and their hierarchical queries")
    for element in schema.structure_schema.elements():
        print(translate_element(element))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads import (
        den_schema,
        generate_den,
        generate_whitepages,
        whitepages_schema,
    )

    if args.workload == "whitepages":
        schema = whitepages_schema()
        instance = generate_whitepages(
            orgs=max(1, args.scale),
            units_per_level=3,
            depth=2,
            persons_per_unit=4,
            seed=args.seed,
        )
    else:
        schema = den_schema()
        instance = generate_den(
            sites=max(1, args.scale),
            devices_per_site=4,
            interfaces_per_device=3,
            domains=max(1, args.scale),
            policies_per_domain=5,
            seed=args.seed,
        )
    if args.out:
        dump_ldif(instance, args.out)
        print(f"wrote {len(instance)} entries to {args.out}")
    else:
        print(serialize_ldif(instance))
    if args.schema_out:
        dump_dsl(schema, args.schema_out)
        print(f"wrote schema to {args.schema_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve STORE --schema S.dsl [--shards] [--port N]``: run the
    asyncio network front-end (:mod:`repro.server`) over the store.
    SIGTERM/SIGINT drain gracefully: the listener closes, in-flight
    requests finish, then the store's writer lock is released."""
    import asyncio
    import signal

    from repro.errors import ShardMapError, StoreError
    from repro.server import DirectoryServer

    schema = load_dsl(args.schema)

    async def run() -> int:
        server = DirectoryServer(
            args.store,
            schema,
            shards=args.shards,
            jobs=args.jobs,
            host=args.host,
            port=args.port,
            structure=args.structure,
            replica_of=args.replica_of,
        )
        try:
            await server.start()
        except (StoreError, ShardMapError, OSError) as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 1
        print(
            f"serving {args.store} on {args.host}:{server.port}"
            + (" (sharded)" if args.shards else "")
            + (f" (replica of {args.replica_of})" if args.replica_of else ""),
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        print("draining connections and shutting down", file=sys.stderr)
        await server.stop(drain=True)
        return 0

    return asyncio.run(run())


def _position_text(position) -> str:
    """Human form of a replication position — a ``(generation, seq)``
    pair for a plain store, a per-shard map for a sharded cohort."""
    if isinstance(position, dict):
        if not position:
            return "no shard map yet"
        return ", ".join(
            f"{name}: generation {pos[0]}, seq {pos[1]}"
            for name, pos in sorted(position.items())
        )
    generation, seq = position
    return f"generation {generation}, seq {seq}"


def _cmd_replicate(args: argparse.Namespace) -> int:
    """``replicate DIR --schema S.dsl --from HOST:PORT [--oneshot]``:
    follow a primary server as a WAL-shipping replica.  Bootstraps (or
    resumes from DIR's durable position), catches up to the primary's
    committed frontier, then — unless ``--oneshot`` — keeps applying
    pushed frames until SIGTERM/SIGINT."""
    import asyncio
    import signal

    from repro.errors import StoreError
    from repro.server.client import DirectoryClient, ServerError, sync_replica
    from repro.store.replicate import ReplicaApplier, ShardedReplicaApplier

    schema = load_dsl(args.schema)
    host, _, port_text = args.upstream.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"replicate: --from must be HOST:PORT, got {args.upstream!r}",
              file=sys.stderr)
        return 2

    async def run() -> int:
        loop = asyncio.get_running_loop()
        try:
            client = await DirectoryClient.connect(host, int(port_text))
        except (ConnectionError, OSError) as exc:
            print(f"replicate: cannot reach {args.upstream}: {exc}",
                  file=sys.stderr)
            return 1
        applier = None
        try:
            await client.bind("cn=replica")
            if getattr(args, "shards", False):
                applier = ShardedReplicaApplier(
                    args.directory, schema, upstream=args.upstream
                )
            else:
                applier = ReplicaApplier(
                    args.directory, schema, upstream=args.upstream
                )
            position = await sync_replica(client, applier)
            print(
                f"replica {args.directory}: synced to "
                f"{_position_text(position)} from {args.upstream}",
                flush=True,
            )
            if args.oneshot:
                return 0
            stop = asyncio.Event()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            stopping = asyncio.ensure_future(stop.wait())
            while not stop.is_set():
                incoming = asyncio.ensure_future(
                    client.next_stream_message()
                )
                await asyncio.wait(
                    {stopping, incoming},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not incoming.done():
                    incoming.cancel()
                    break
                await loop.run_in_executor(
                    None, applier.apply_message, incoming.result()
                )
            stopping.cancel()
            print(
                f"replica stopped at {_position_text(applier.position())} "
                "(run `promote` to make it writable, or `replicate` again "
                "to keep following)",
                file=sys.stderr,
            )
            return 0
        except (StoreError, ServerError, ConnectionError, OSError) as exc:
            print(f"replicate: {exc}", file=sys.stderr)
            return 1
        finally:
            if applier is not None:
                applier.close()
            await client.close()

    return asyncio.run(run())


def _cmd_promote(args: argparse.Namespace) -> int:
    """``promote DIR --schema S.dsl [--shards]``: promote a replica
    store to writer.  Refuses when in-doubt 2PC state is visible at the
    replication frontier (only the old primary's coordinator log can
    decide it); ``--shards`` promotes a replicated sharded cohort as a
    unit — every member on the last replicated cut, or nothing."""
    from repro.errors import StoreError
    from repro.store.replicate import promote, promote_shards

    schema = load_dsl(args.schema)
    try:
        if getattr(args, "shards", False):
            store = promote_shards(args.directory, schema)
        else:
            store = promote(args.directory, schema)
    except (StoreError, OSError) as exc:
        print(f"promote: {exc}", file=sys.stderr)
        return 1
    try:
        if getattr(args, "shards", False):
            frontier = ", ".join(
                f"{name}: generation {generation}"
                for name, generation, _ in store.frontier_key()
            )
            print(
                f"promoted {args.directory}: sharded cohort writable "
                f"({frontier}; {len(store.composite_instance())} entries)"
            )
        else:
            print(
                f"promoted {args.directory}: writable at generation "
                f"{store.generation} ({len(store.instance)} entries)"
            )
    finally:
        store.close()
    return 0


def _cmd_frontdoor(args: argparse.Namespace) -> int:
    """``frontdoor --primary HOST:PORT --replica HOST:PORT ...``: run
    the read-balancing proxy (:mod:`repro.server.frontdoor`) over a
    running primary and its replica servers.  Writes route to the
    primary, reads spread across replicas under the bounded-staleness
    contract, and the health loop auto-promotes the most advanced
    replica when the primary dies.  SIGTERM/SIGINT drain gracefully."""
    import asyncio
    import signal

    from repro.server.frontdoor import FrontDoor

    for address in [args.primary] + list(args.replica or []):
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            print(
                f"frontdoor: member must be HOST:PORT, got {address!r}",
                file=sys.stderr,
            )
            return 2

    async def run() -> int:
        door = FrontDoor(
            args.primary,
            list(args.replica or []),
            host=args.host,
            port=args.port,
            probe_interval=args.probe_interval,
            fail_after=args.fail_after,
        )
        try:
            await door.start()
        except OSError as exc:
            print(f"frontdoor: {exc}", file=sys.stderr)
            return 1
        print(
            f"front door on {args.host}:{door.port} — primary "
            f"{args.primary}, {len(args.replica or [])} replica(s)",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        print("draining connections and shutting down", file=sys.stderr)
        await door.stop(drain=True)
        return 0

    return asyncio.run(run())


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="bounding-schemas",
        description="Bounding-schemas for LDAP directories (EDBT 2000).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="test an LDIF instance for legality")
    validate.add_argument("--schema", required=True, help="bounding-schema DSL file")
    validate.add_argument("--data", required=True, help="LDIF instance file")
    validate.add_argument(
        "--structure",
        choices=("query", "naive", "batched"),
        default="query",
        help="structure-checking strategy (default: the Figure 4 reduction)",
    )
    validate.set_defaults(func=_cmd_validate)

    check = sub.add_parser(
        "check",
        help="legality test on the parallel, memoized engine",
    )
    check.add_argument("--schema", required=True, help="bounding-schema DSL file")
    source = check.add_mutually_exclusive_group(required=True)
    source.add_argument("--data", help="LDIF instance file")
    source.add_argument(
        "--store",
        metavar="DIR",
        help="check a store directory through a lock-free read-only view "
        "(works against a live writer)",
    )
    check.add_argument(
        "--shards",
        action="store_true",
        help="with --store: DIR is a sharded store root; check the "
        "composite view (per-shard readers stitched across the shard "
        "map); --jobs N > 1 checks shards in parallel worker processes",
    )
    check.add_argument(
        "--follow",
        action="store_true",
        help="with --store: keep refreshing the view and re-checking "
        "(each round costs only the delta)",
    )
    check.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="polling interval for --follow (default 1s)",
    )
    check.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop --follow after N check rounds (default 0: until interrupted)",
    )
    check.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="content-check worker count (default 1: sequential engine; "
        "0: one worker per CPU)",
    )
    check.add_argument(
        "--profile",
        action="store_true",
        help="print the engine's counter/timer table after the verdict",
    )
    check.add_argument(
        "--structure",
        choices=("batched", "query", "naive"),
        default="batched",
        help="structure-checking strategy (default: the batched "
        "structure engine; 'query' evaluates the Figure 4 reduction "
        "one query at a time)",
    )
    check.set_defaults(func=_cmd_check)

    create = sub.add_parser(
        "create",
        help="initialize a store directory (sharded with --shard)",
    )
    create.add_argument("directory", help="store directory to create")
    create.add_argument("--schema", required=True, help="bounding-schema DSL file")
    create.add_argument(
        "--data", help="initial LDIF instance (default: empty directory)"
    )
    create.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="NAME=BASE_DN",
        help="route the subtree at BASE_DN to shard NAME (repeatable; "
        "at least one makes the store sharded; every entry must route)",
    )
    create.add_argument(
        "--wait-lock",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="retry for up to SECONDS (exponential backoff with jitter, "
        "reporting the holder pid) when another process holds the "
        "store's advisory lock (default 0: fail immediately)",
    )
    create.set_defaults(func=_cmd_create)

    consistency = sub.add_parser("consistency", help="decide schema consistency")
    consistency.add_argument("--schema", required=True)
    consistency.add_argument(
        "--witness", metavar="OUT.ldif", help="synthesize a legal witness instance"
    )
    consistency.add_argument(
        "--proof", action="store_true", help="print the ∅ □ derivation when inconsistent"
    )
    consistency.add_argument(
        "--repair",
        action="store_true",
        help="suggest minimal structure-element removals when inconsistent",
    )
    consistency.set_defaults(func=_cmd_consistency)

    apply = sub.add_parser(
        "apply",
        help="apply LDIF change records through the incremental checker",
    )
    apply.add_argument("--schema", required=True)
    apply.add_argument("--data", required=True, help="current instance (LDIF)")
    apply.add_argument("--changes", required=True, help="LDIF change records")
    apply.add_argument("--out", help="write the updated instance here")
    apply.set_defaults(func=_cmd_apply)

    discover = sub.add_parser(
        "discover",
        help="induce the tightest bounding-schema an LDIF instance satisfies",
    )
    discover.add_argument("--data", required=True)
    discover.add_argument("--out", help="DSL output path (default: stdout)")
    discover.add_argument(
        "--min-forbidden-support",
        type=int,
        default=2,
        help="emit forbidden edges only between classes with this many members",
    )
    discover.set_defaults(func=_cmd_discover)

    modify = sub.add_parser(
        "modify",
        help="apply changetype:modify records through the incremental checker",
    )
    modify.add_argument("--schema", required=True)
    modify.add_argument("--data", required=True)
    modify.add_argument("--changes", required=True, help="LDIF modify records")
    modify.add_argument("--out", help="write the updated instance here")
    modify.set_defaults(func=_cmd_modify)

    fsck = sub.add_parser(
        "fsck",
        help="scan a store directory for journal damage (dry run)",
    )
    fsck.add_argument(
        "directory", nargs="?", default=None,
        help="store directory (snapshot + journal); omit with --frontdoor",
    )
    fsck.add_argument(
        "--schema", help="also verify the recovered instance against this DSL"
    )
    fsck.add_argument(
        "--read-only",
        action="store_true",
        help="inspect through a lock-free reader view (requires --schema; "
        "safe against a live writer, touches nothing)",
    )
    fsck.add_argument(
        "--shards",
        action="store_true",
        help="DIR is a sharded store root: print the shard map, "
        "per-shard positions/lag, and the composite legality verdict "
        "(requires --schema; lock-free, touches nothing)",
    )
    fsck.add_argument(
        "--frontdoor", metavar="HOST:PORT",
        help="report a running front door's topology (member liveness, "
        "frontiers, lost floors) instead of scanning a directory",
    )
    fsck.set_defaults(func=_cmd_fsck)

    recover = sub.add_parser(
        "recover",
        help="repair a store: quarantine damaged journal bytes, reset stale journals",
    )
    recover.add_argument("directory", help="store directory (snapshot + journal)")
    recover.add_argument(
        "--schema", help="also verify the recovered instance against this DSL"
    )
    recover.add_argument(
        "--force",
        action="store_true",
        help="quarantine corrupt (not merely torn) journal tails too",
    )
    recover.add_argument(
        "--shards",
        action="store_true",
        help="DIR is a sharded store root: recover every shard and "
        "resolve in-doubt 2PC participants from the coordinator log "
        "(presumed abort; requires --schema)",
    )
    recover.add_argument(
        "--wait-lock",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="retry for up to SECONDS (exponential backoff with jitter, "
        "reporting the holder pid) when a live writer holds a shard's "
        "advisory lock (default 0: fail immediately)",
    )
    recover.set_defaults(func=_cmd_recover)

    serve = sub.add_parser(
        "serve",
        help="serve a store over the network (asyncio, LDAP-ish wire "
        "protocol; see repro.server)",
    )
    serve.add_argument("store", help="store directory to serve")
    serve.add_argument("--schema", required=True)
    serve.add_argument(
        "--shards",
        action="store_true",
        help="STORE is a sharded store root: serve the composite view",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="per-connection legality-check parallelism (default 0: "
        "engine default)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=3890,
        help="bind port (0: ephemeral; the bound port is printed either "
        "way)",
    )
    serve.add_argument(
        "--structure",
        choices=["batched", "query", "naive"],
        default="batched",
        help="structure-checking strategy for the check extended op",
    )
    serve.add_argument(
        "--replica-of",
        dest="replica_of",
        metavar="HOST:PORT",
        help="run as a replica of this primary server: serve reads from "
        "the replicated copy, answer writes with not_writable, and "
        "accept promote/reattach (the front door's failover surface)",
    )
    serve.set_defaults(func=_cmd_serve)

    replicate = sub.add_parser(
        "replicate",
        help="follow a primary server as a WAL-shipping replica "
        "(bootstrap or resume, then apply pushed frames)",
    )
    replicate.add_argument(
        "directory", help="local replica store directory (created if fresh)"
    )
    replicate.add_argument("--schema", required=True)
    replicate.add_argument(
        "--from",
        dest="upstream",
        required=True,
        metavar="HOST:PORT",
        help="primary server address (a `serve` process; pass --shards "
        "when it serves a sharded store)",
    )
    replicate.add_argument(
        "--oneshot",
        action="store_true",
        help="catch up to the primary's committed frontier and exit "
        "instead of following live",
    )
    replicate.add_argument(
        "--shards",
        action="store_true",
        help="the upstream serves a sharded store: replicate the whole "
        "cohort under coordinator-consistent cuts",
    )
    replicate.set_defaults(func=_cmd_replicate)

    promote = sub.add_parser(
        "promote",
        help="promote a replica store to writer (epoch bump; refuses "
        "visible in-doubt 2PC state)",
    )
    promote.add_argument("directory", help="replica store directory")
    promote.add_argument("--schema", required=True)
    promote.add_argument(
        "--shards",
        action="store_true",
        help="DIR is a replicated sharded cohort: promote every shard "
        "on the recorded cut, or refuse atomically",
    )
    promote.set_defaults(func=_cmd_promote)

    frontdoor = sub.add_parser(
        "frontdoor",
        help="read-balancing proxy over a primary and its replicas "
        "(bounded-staleness routing, automatic failover)",
    )
    frontdoor.add_argument(
        "--primary", required=True, metavar="HOST:PORT",
        help="the writable member server",
    )
    frontdoor.add_argument(
        "--replica", action="append", default=[], metavar="HOST:PORT",
        help="a replica member server (repeat per replica)",
    )
    frontdoor.add_argument("--host", default="127.0.0.1")
    frontdoor.add_argument(
        "--port", type=int, default=3891,
        help="bind port (0: ephemeral; the bound port is printed either "
        "way)",
    )
    frontdoor.add_argument(
        "--probe-interval", type=float, default=0.5,
        help="seconds between health probes of every member",
    )
    frontdoor.add_argument(
        "--fail-after", type=int, default=2,
        help="consecutive failed probes before a member is declared "
        "dead (the primary's death triggers failover)",
    )
    frontdoor.set_defaults(func=_cmd_frontdoor)

    stats = sub.add_parser("stats", help="structural summary of an LDIF instance")
    stats.add_argument("--data", required=True)
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser(
        "query", help="run an LDAP filter or hierarchical query against an instance"
    )
    query.add_argument("--data", required=True)
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--filter", help="RFC 2254 filter string")
    group.add_argument(
        "--hquery",
        help="hierarchical query, e.g. '(d (objectClass=orgGroup) (objectClass=person))'",
    )
    query.set_defaults(func=_cmd_query)

    translate = sub.add_parser(
        "translate", help="show the Figure 4 query for every structure element"
    )
    translate.add_argument("--schema", required=True)
    translate.set_defaults(func=_cmd_translate)

    generate = sub.add_parser("generate", help="generate a sample directory")
    generate.add_argument(
        "--workload", choices=("whitepages", "den"), default="whitepages"
    )
    generate.add_argument("--scale", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", help="LDIF output path (default: stdout)")
    generate.add_argument("--schema-out", help="also write the workload schema DSL")
    generate.set_defaults(func=_cmd_generate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
