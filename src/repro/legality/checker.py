"""The full legality test (Definition 2.7, Theorem 3.1).

:class:`LegalityChecker` combines the per-entry content check
(Section 3.1), the query-reduction structure check (Section 3.2), and —
when the schema declares extras — the Section 6.1 checks, into one
``O(|D| * (...))`` pass matching the Theorem 3.1 bound.

The ``structure`` argument selects the structure-checking strategy:
``"query"`` (the paper's linear reduction, default), ``"naive"`` (the
quadratic pairwise baseline), or ``"batched"`` (the
:class:`~repro.legality.structure_engine.StructureEngine`, which
evaluates the whole check set as one batch) — all produce identical
verdicts, which the test suite asserts by differential testing.

The ``parallelism`` knob routes checking through the
:class:`~repro.legality.engine.CheckSession` engine: the per-entry
content check is sharded across a worker pool and memoized under content
fingerprints, and the returned reports carry ``report.stats``.  With the
default ``parallelism=None`` the checker runs the plain sequential pass
(verdict-identical, no pool, no cache).
"""

from __future__ import annotations

from typing import Literal, Optional

from repro.model.instance import DirectoryInstance
from repro.legality.content import ContentChecker
from repro.legality.engine import CheckSession
from repro.legality.extras import ExtrasChecker
from repro.legality.report import LegalityReport
from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker
from repro.legality.structure_engine import StructureEngine
from repro.schema.directory_schema import DirectorySchema

__all__ = ["LegalityChecker"]


class LegalityChecker:
    """Tests whether directory instances are legal w.r.t. one schema.

    The checker is schema-bound and reusable across instances: the
    Figure 4 queries are compiled once at construction time.

    Parameters
    ----------
    schema:
        The bounding-schema to check against.
    structure:
        Structure-checking strategy (``"batched"``, ``"query"``, or
        ``"naive"``).
    parallelism:
        When not ``None``, delegate to a
        :class:`~repro.legality.engine.CheckSession` with this many
        content-check workers (``1`` = sequential but memoized and
        instrumented).  The session is exposed as :attr:`session`.
    """

    def __init__(
        self,
        schema: DirectorySchema,
        structure: Literal["batched", "query", "naive"] = "query",
        parallelism: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.content = ContentChecker(schema)
        if structure == "query":
            self.structure: (
                QueryStructureChecker | NaiveStructureChecker | StructureEngine
            ) = QueryStructureChecker(schema.structure_schema)
        elif structure == "naive":
            self.structure = NaiveStructureChecker(schema.structure_schema)
        elif structure == "batched":
            self.structure = StructureEngine(schema.structure_schema)
        else:
            raise ValueError(f"unknown structure strategy {structure!r}")
        self.extras = None if schema.extras is None else ExtrasChecker(schema.extras)
        self.session: Optional[CheckSession] = None
        if parallelism is not None:
            self.session = CheckSession(
                schema, parallelism=parallelism, structure=structure
            )

    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """The full legality report for ``instance``."""
        if self.session is not None:
            return self.session.check(instance)
        report = self.content.check(instance)
        report.extend(self.structure.check(instance).violations)
        if self.extras is not None:
            report.extend(self.extras.check(instance).violations)
        return report

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Yes/no legality verdict (short-circuits on first failure)."""
        if self.session is not None:
            return self.session.is_legal(instance)
        if not self.content.is_legal(instance):
            return False
        if not self.structure.is_legal(instance):
            return False
        if self.extras is not None and not self.extras.check(instance).is_legal:
            return False
        return True

    def close(self) -> None:
        """Release the worker pools, if any were created."""
        if self.session is not None:
            self.session.close()
        if isinstance(self.structure, StructureEngine):
            self.structure.close()
