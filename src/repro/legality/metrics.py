"""Observability for the legality engine.

:class:`CheckStats` is the machine-readable record one
:class:`~repro.legality.engine.CheckSession` check leaves behind:
counters (entries content-checked, fingerprint-cache hits/misses, query
evaluator work, violations found), the worker/chunk layout of the
parallel phase, and per-phase wall-clock timings.  The engine attaches a
snapshot to every :class:`~repro.legality.report.LegalityReport` it
produces (``report.stats``) and keeps a cumulative copy on the session;
the ``check --profile`` CLI renders :meth:`CheckStats.format_table`.

Counters, not timings, are what the benchmark gates assert on — wall
clock varies with the machine, the number of content checks actually
executed does not (the FIG5 philosophy of measuring *shape*).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Tuple

__all__ = ["CheckStats"]


@dataclass
class CheckStats:
    """Counters and timers describing one (or several) legality checks.

    Attributes
    ----------
    entries_checked:
        Per-entry content checks actually *executed* — fingerprint-cache
        hits do not count.  On a warm re-check after a subtree update
        this is proportional to ``|Δ|``, not ``|D|``.
    cache_hits / cache_misses:
        Fingerprint-cache outcomes.  ``hits + misses`` equals the number
        of entries visited by memoized content phases.
    queries_evaluated:
        Work done by the hierarchical query evaluator (entries touched)
        during structure checking.
    structure_checks:
        Structure-schema elements actually *evaluated* (memoized verdict
        hits do not count) — the structure-phase analogue of
        ``entries_checked``.
    structure_cache_hits:
        Structure verdicts served from the per-element fingerprint memo.
    structure_batched:
        Structure elements answered by the combined bitmask flag pass
        instead of an individual Figure 4 query evaluation.
    flag_passes:
        Whole-forest flag-propagation sweeps performed (the batched
        engine needs at most 2 per check, one per direction, however
        many elements share them).
    violations:
        Violations reported.
    index_probes / index_hits / index_candidates:
        Secondary-index activity (:mod:`repro.store.index`): posting-list
        probes issued, probes that found a non-empty posting list, and
        total candidate entries those postings named.  Populated by the
        index-backed extras delta checks and by index-planned searches;
        ``candidates`` is the work-unit the bench gates compare against
        ``|D|`` to certify sublinearity.
    workers / chunks:
        Layout of the parallel content phase (``workers == 0`` means the
        sequential path ran).
    phase_seconds:
        Wall-clock seconds per phase (``content``, ``structure``,
        ``extras``, ...).
    """

    entries_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    queries_evaluated: int = 0
    structure_checks: int = 0
    structure_cache_hits: int = 0
    structure_batched: int = 0
    flag_passes: int = 0
    violations: int = 0
    index_probes: int = 0
    index_hits: int = 0
    index_candidates: int = 0
    workers: int = 0
    chunks: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under ``phase``."""
        started = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - started
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + elapsed

    def merge(self, other: "CheckStats") -> None:
        """Fold ``other``'s counters and timings into this record."""
        self.entries_checked += other.entries_checked
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.queries_evaluated += other.queries_evaluated
        self.structure_checks += other.structure_checks
        self.structure_cache_hits += other.structure_cache_hits
        self.structure_batched += other.structure_batched
        self.flag_passes += other.flag_passes
        self.violations += other.violations
        self.index_probes += other.index_probes
        self.index_hits += other.index_hits
        self.index_candidates += other.index_candidates
        self.workers = max(self.workers, other.workers)
        self.chunks += other.chunks
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def copy(self) -> "CheckStats":
        """An independent snapshot of this record."""
        snapshot = CheckStats()
        snapshot.merge(self)
        return snapshot

    def since(self, baseline: "CheckStats") -> "CheckStats":
        """The delta from ``baseline`` to this record — what happened
        between two snapshots of a cumulative session counter (used by
        :meth:`repro.store.journal.DirectoryStore.apply` to attribute
        check work to one transaction)."""
        delta = CheckStats(
            entries_checked=self.entries_checked - baseline.entries_checked,
            cache_hits=self.cache_hits - baseline.cache_hits,
            cache_misses=self.cache_misses - baseline.cache_misses,
            queries_evaluated=self.queries_evaluated - baseline.queries_evaluated,
            structure_checks=self.structure_checks - baseline.structure_checks,
            structure_cache_hits=(
                self.structure_cache_hits - baseline.structure_cache_hits
            ),
            structure_batched=self.structure_batched - baseline.structure_batched,
            flag_passes=self.flag_passes - baseline.flag_passes,
            violations=self.violations - baseline.violations,
            index_probes=self.index_probes - baseline.index_probes,
            index_hits=self.index_hits - baseline.index_hits,
            index_candidates=self.index_candidates - baseline.index_candidates,
            workers=self.workers,
            chunks=self.chunks - baseline.chunks,
        )
        for phase, seconds in self.phase_seconds.items():
            before = baseline.phase_seconds.get(phase, 0.0)
            if seconds - before > 0.0:
                delta.phase_seconds[phase] = seconds - before
        return delta

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Total wall time across all recorded phases."""
        return sum(self.phase_seconds.values())

    @property
    def hit_rate(self) -> float:
        """Fraction of memoized lookups answered from the cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows for the ``--profile`` table."""
        rows: List[Tuple[str, str]] = [
            ("entries content-checked", str(self.entries_checked)),
            ("fingerprint cache hits", str(self.cache_hits)),
            ("fingerprint cache misses", str(self.cache_misses)),
            ("cache hit rate", f"{self.hit_rate:.1%}"),
            ("query work (entries touched)", str(self.queries_evaluated)),
            ("structure checks evaluated", str(self.structure_checks)),
            ("structure memo hits", str(self.structure_cache_hits)),
            ("structure checks batched", str(self.structure_batched)),
            ("flag passes", str(self.flag_passes)),
            ("violations", str(self.violations)),
            ("index probes", str(self.index_probes)),
            ("index probe hits", str(self.index_hits)),
            ("index candidates", str(self.index_candidates)),
            ("workers", str(self.workers) if self.workers else "sequential"),
            ("chunks", str(self.chunks)),
        ]
        for phase in sorted(self.phase_seconds):
            rows.append((f"{phase} wall time", f"{self.phase_seconds[phase] * 1e3:.1f} ms"))
        rows.append(("total wall time", f"{self.total_seconds * 1e3:.1f} ms"))
        return rows

    def format_table(self) -> str:
        """The ``--profile`` table: aligned two-column plain text."""
        rows = self.rows()
        width = max(len(label) for label, _ in rows)
        lines = [f"  {label.ljust(width)}  {value}" for label, value in rows]
        return "\n".join(["profile:"] + lines)

    def __str__(self) -> str:
        return self.format_table()
