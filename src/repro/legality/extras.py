"""Legality checking for the Section 6.1 extras.

Enforces the orthogonal schema features of
:class:`repro.schema.extras.SchemaExtras`:

* single-valued attributes hold at most one value per entry;
* key attributes are unique across **all** entries of the instance (the
  paper: "any notion of a key in an LDAP directory must be unique across
  all entries in the directory instance, not just within a single object
  class").

Extensible classes need no checker of their own — they relax the
allowed-attribute check inside :class:`repro.legality.content.ContentChecker`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.model.instance import DirectoryInstance
from repro.legality.report import Kind, LegalityReport, Violation
from repro.schema.extras import SchemaExtras

__all__ = ["ExtrasChecker"]


class ExtrasChecker:
    """Checks single-valued and key restrictions over an instance."""

    def __init__(self, extras: SchemaExtras) -> None:
        self.extras = extras

    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """All extras violations; one linear pass over the instance."""
        report = LegalityReport()
        single_valued = self.extras.effective_single_valued()
        keys = self.extras.key_attributes
        referential = self.extras.referential_attributes
        seen_keys: Dict[Tuple[str, Any], str] = {}

        for entry in instance:
            dn = str(entry.dn)
            for attribute in sorted(referential):
                for value in entry.values(attribute):
                    target = value if isinstance(value, str) else str(value)
                    if instance.find(target) is None:
                        report.add(
                            Violation(
                                Kind.DANGLING_REFERENCE,
                                f"attribute {attribute!r} references "
                                f"{target!r}, which names no entry",
                                dn=dn,
                            )
                        )
            for attribute in single_valued:
                values = entry.values(attribute)
                if len(values) > 1:
                    report.add(
                        Violation(
                            Kind.SINGLE_VALUED,
                            f"attribute {attribute!r} is single-valued but "
                            f"holds {len(values)} values",
                            dn=dn,
                        )
                    )
            for attribute in keys:
                for value in entry.values(attribute):
                    previous = seen_keys.get((attribute, value))
                    if previous is not None:
                        report.add(
                            Violation(
                                Kind.DUPLICATE_KEY,
                                f"key {attribute!r} value {value!r} already "
                                f"used by entry {previous}",
                                dn=dn,
                            )
                        )
                    else:
                        seen_keys[(attribute, value)] = dn
        return report
