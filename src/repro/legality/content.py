"""Content-schema legality (Section 3.1).

Content legality is checked **per entry, independently** — the property
that makes content checking trivially incremental under updates
(Section 4.2: an inserted subtree need only be checked in isolation, and
deletions can never violate content legality).

Per entry ``e`` the checker verifies the Definition 2.7 conditions:

Attribute schema
    * every required attribute of every class in ``class(e)`` has a value;
    * every attribute with a value is allowed by some class in
      ``class(e)`` (``objectClass`` itself is always permitted, and
      entries of an *extensible* class — Section 6.1 — are exempt).

Class schema
    * only classes of the schema occur;
    * at least one core class occurs;
    * single inheritance: the core classes of ``e`` are exactly one
      root-to-node chain of the hierarchy — this realizes all the
      ``ci ⊑ cj`` / ``ci ⊥ cj`` elements in
      ``O(|class(e)| + depth(H))`` rather than pairwise;
    * every auxiliary class occurs in ``Aux(c)`` of some core class of
      ``e``.

The per-entry cost matches the Section 3.1 bound
``O(|class(e)| + max|Aux| * depth(H) + |val(e)| + Σ|a(c)|)``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.model.attributes import OBJECT_CLASS
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.legality.report import Kind, LegalityReport, Violation
from repro.schema.directory_schema import DirectorySchema

__all__ = ["ContentChecker"]


class ContentChecker:
    """Checks instances and single entries against the content schema
    ``(A, H)`` of a directory schema."""

    def __init__(self, schema: DirectorySchema) -> None:
        self.schema = schema
        self.attribute_schema = schema.attribute_schema
        self.class_schema = schema.class_schema
        self.extras = schema.extras

    # ------------------------------------------------------------------
    # entry-level checking
    # ------------------------------------------------------------------
    def check_entry(self, entry: Entry, dn: Optional[str] = None) -> List[Violation]:
        """All content violations of one entry."""
        where = dn if dn is not None else str(entry.dn)
        violations: List[Violation] = []
        violations.extend(self._check_classes(entry, where))
        violations.extend(self._check_attributes(entry, where))
        return violations

    def _check_classes(self, entry: Entry, where: str) -> List[Violation]:
        schema = self.class_schema
        violations: List[Violation] = []
        classes = entry.classes

        core: Set[str] = set()
        for name in classes:
            if name not in schema:
                violations.append(
                    Violation(
                        Kind.UNKNOWN_CLASS,
                        f"class {name!r} is not in the class schema",
                        dn=where,
                    )
                )
            elif schema.is_core(name):
                core.add(name)

        if not core:
            violations.append(
                Violation(
                    Kind.NO_CORE_CLASS,
                    "entry belongs to no core object class",
                    dn=where,
                )
            )
            return violations

        # Single inheritance: the deepest core class's superclass chain
        # must cover every core class of the entry (chain test, giving
        # the O(|class(e)| + depth(H)) bound of Section 3.1).
        deepest = max(core, key=lambda c: len(schema.superclasses(c)))
        chain = set(schema.superclasses(deepest))
        for name in chain:
            if name not in classes:
                violations.append(
                    Violation(
                        Kind.MISSING_SUPERCLASS,
                        f"entry belongs to {deepest!r} but not to its "
                        f"superclass {name!r} (single inheritance)",
                        dn=where,
                        element=f"{deepest} ⊑ {name}",
                    )
                )
        for name in sorted(core):
            if name not in chain:
                violations.append(
                    Violation(
                        Kind.INCOMPARABLE_CORE_CLASSES,
                        f"core classes {deepest!r} and {name!r} are "
                        "incomparable (single inheritance forbids joint "
                        "membership)",
                        dn=where,
                        element=f"{deepest} ⊥ {name}",
                    )
                )

        allowed_aux: Set[str] = set()
        for name in core:
            allowed_aux |= schema.aux(name)
        for name in sorted(classes):
            if name in schema and schema.is_auxiliary(name) and name not in allowed_aux:
                violations.append(
                    Violation(
                        Kind.DISALLOWED_AUXILIARY,
                        f"auxiliary class {name!r} is not in Aux(c) of any "
                        "core class of the entry",
                        dn=where,
                    )
                )
        return violations

    def _check_attributes(self, entry: Entry, where: str) -> List[Violation]:
        schema = self.attribute_schema
        violations: List[Violation] = []
        classes = entry.classes

        for object_class in sorted(classes):
            for attribute in sorted(schema.required(object_class)):
                if not entry.has_attribute(attribute):
                    violations.append(
                        Violation(
                            Kind.MISSING_REQUIRED_ATTRIBUTE,
                            f"attribute {attribute!r} is required by class "
                            f"{object_class!r} but absent",
                            dn=where,
                        )
                    )

        if self.extras is not None and self.extras.is_extensible(classes):
            return violations

        for attribute in entry.attribute_names():
            if attribute == OBJECT_CLASS:
                continue
            if not schema.allowed_by_any(classes, attribute):
                violations.append(
                    Violation(
                        Kind.DISALLOWED_ATTRIBUTE,
                        f"attribute {attribute!r} is not allowed by any "
                        "class of the entry",
                        dn=where,
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # instance-level checking
    # ------------------------------------------------------------------
    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """Content-check every entry; linear in ``|D|``.

        DNs come from the instance's O(1) key cache, so the pass stays
        linear even on pathologically deep directories.
        """
        report = LegalityReport()
        for entry in instance:
            report.extend(self.check_entry(entry, dn=instance.dn_string_of(entry)))
        return report

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Whether every entry passes the content check."""
        for entry in instance:
            if self.check_entry(entry, dn=instance.dn_string_of(entry)):
                return False
        return True
