"""Structure-schema legality (Section 3.2).

Two checkers with identical verdicts and very different costs:

:class:`QueryStructureChecker`
    The paper's contribution: each element of ``(Cr, Er, Ef)`` is
    translated to a hierarchical selection query (Figure 4) and evaluated
    by the linear-time engine — total cost ``O(|S| * |D|)``
    (Theorem 3.1).

:class:`NaiveStructureChecker`
    The "straightforward approach" the paper argues against: compare
    every (parent, child) pair and every (ancestor, descendant) pair of
    the instance against the structure schema —
    ``O((|Er| + |Ef|) * |D|^2)``.  Kept as the differential-testing
    oracle and as the benchmark baseline for Experiment FIG4.
"""

from __future__ import annotations

from typing import List, Set

from repro.axes import Axis
from repro.model.instance import DirectoryInstance
from repro.legality.report import Kind, LegalityReport, Violation
from repro.query.evaluator import QueryEvaluator
from repro.query.translate import TranslatedCheck, translate_element
from repro.schema.elements import ForbiddenEdge, RequiredClass, RequiredEdge
from repro.schema.structure_schema import StructureSchema

__all__ = ["QueryStructureChecker", "NaiveStructureChecker"]

_MAX_WITNESSES = 5


def _required_violation(
    element: RequiredEdge, instance: DirectoryInstance, witnesses: Set[int]
) -> List[Violation]:
    violations = []
    for eid in sorted(witnesses)[:_MAX_WITNESSES]:
        violations.append(
            Violation(
                Kind.REQUIRED_RELATIONSHIP,
                f"entry violates required relationship {element}",
                dn=str(instance.dn_of(eid)),
                element=str(element),
            )
        )
    if len(witnesses) > _MAX_WITNESSES:
        violations.append(
            Violation(
                Kind.REQUIRED_RELATIONSHIP,
                f"... and {len(witnesses) - _MAX_WITNESSES} more entries "
                f"violate {element}",
                element=str(element),
            )
        )
    return violations


def _forbidden_violation(
    element: ForbiddenEdge, instance: DirectoryInstance, witnesses: Set[int]
) -> List[Violation]:
    violations = []
    for eid in sorted(witnesses)[:_MAX_WITNESSES]:
        violations.append(
            Violation(
                Kind.FORBIDDEN_RELATIONSHIP,
                f"entry participates in forbidden relationship {element}",
                dn=str(instance.dn_of(eid)),
                element=str(element),
            )
        )
    if len(witnesses) > _MAX_WITNESSES:
        violations.append(
            Violation(
                Kind.FORBIDDEN_RELATIONSHIP,
                f"... and {len(witnesses) - _MAX_WITNESSES} more entries "
                f"participate in {element}",
                element=str(element),
            )
        )
    return violations


class QueryStructureChecker:
    """Structure legality via the Figure 4 query reduction."""

    def __init__(self, structure_schema: StructureSchema) -> None:
        self.structure_schema = structure_schema
        #: The translated checks, built once per schema (query compilation
        #: is instance-independent).
        self.checks: List[TranslatedCheck] = [
            translate_element(element) for element in structure_schema.elements()
        ]
        #: Evaluator work (entries touched) of the most recent
        #: :meth:`check`/:meth:`is_legal` call — surfaced by the legality
        #: engine's observability layer.
        self.last_cost = 0

    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """Evaluate every translated query; collect violations."""
        report = LegalityReport()
        evaluator = QueryEvaluator(instance)
        for check in self.checks:
            result = evaluator.evaluate(check.query)
            if check.legal_when_empty:
                if not result:
                    continue
                element = check.element
                if isinstance(element, RequiredEdge):
                    report.extend(_required_violation(element, instance, result))
                else:
                    assert isinstance(element, ForbiddenEdge)
                    report.extend(_forbidden_violation(element, instance, result))
            else:
                if result:
                    continue
                assert isinstance(check.element, RequiredClass)
                report.add(
                    Violation(
                        Kind.MISSING_REQUIRED_CLASS,
                        f"no entry belongs to required class "
                        f"{check.element.object_class!r}",
                        element=str(check.element),
                    )
                )
        self.last_cost = evaluator.cost
        return report

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Short-circuiting yes/no variant of :meth:`check`."""
        evaluator = QueryEvaluator(instance)
        try:
            for check in self.checks:
                result = evaluator.evaluate(check.query)
                if bool(result) == check.legal_when_empty:
                    return False
            return True
        finally:
            self.last_cost = evaluator.cost


class NaiveStructureChecker:
    """The quadratic pairwise baseline (Section 3.2's strawman).

    Materializes every (ancestor, descendant) and (parent, child) pair of
    the instance and tests each pair against every relationship element;
    required elements additionally track which source entries found a
    qualifying relative.  Verdicts are identical to
    :class:`QueryStructureChecker` (asserted by the differential tests).
    """

    def __init__(self, structure_schema: StructureSchema) -> None:
        self.structure_schema = structure_schema

    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """Scan every hierarchical pair against every element; report
        the same violations as the query checker, quadratically."""
        report = LegalityReport()
        required = list(self.structure_schema.required_edges)
        forbidden = list(self.structure_schema.forbidden_edges)

        # satisfied[i] = source entries of required[i] with a qualifying
        # relative found during the pair scan.
        satisfied: List[Set[int]] = [set() for _ in required]
        sources: List[Set[int]] = [
            instance.entries_with_class(edge.source) for edge in required
        ]
        forbidden_hits: List[Set[int]] = [set() for _ in forbidden]

        for entry in instance:
            ancestors = list(instance.ancestors_of(entry))
            parent = ancestors[0] if ancestors else None
            for ancestor in ancestors:
                is_parent = parent is not None and ancestor.eid == parent.eid
                for i, edge in enumerate(required):
                    if edge.axis is Axis.DESCENDANT or (
                        edge.axis is Axis.CHILD and is_parent
                    ):
                        # ancestor -> entry is a (source, target) candidate
                        if ancestor.belongs_to(edge.source) and entry.belongs_to(
                            edge.target
                        ):
                            satisfied[i].add(ancestor.eid)
                    if edge.axis is Axis.ANCESTOR or (
                        edge.axis is Axis.PARENT and is_parent
                    ):
                        if entry.belongs_to(edge.source) and ancestor.belongs_to(
                            edge.target
                        ):
                            satisfied[i].add(entry.eid)
                for j, fedge in enumerate(forbidden):
                    if fedge.axis is Axis.CHILD and not is_parent:
                        continue
                    if ancestor.belongs_to(fedge.source) and entry.belongs_to(
                        fedge.target
                    ):
                        forbidden_hits[j].add(ancestor.eid)

        for i, edge in enumerate(required):
            missing = sources[i] - satisfied[i]
            if missing:
                report.extend(_required_violation(edge, instance, missing))
        for j, fedge in enumerate(forbidden):
            if forbidden_hits[j]:
                report.extend(_forbidden_violation(fedge, instance, forbidden_hits[j]))

        for name in sorted(self.structure_schema.required_classes):
            if not instance.entries_with_class(name):
                report.add(
                    Violation(
                        Kind.MISSING_REQUIRED_CLASS,
                        f"no entry belongs to required class {name!r}",
                        element=str(RequiredClass(name)),
                    )
                )
        return report

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Yes/no verdict via the direct Definition 2.6 semantics."""
        return all(
            element.is_satisfied(instance)
            for element in self.structure_schema.elements()
        )
