"""The parallel, memoized legality engine (``CheckSession``).

Theorem 3.1 makes the legality test linear in ``|D|``; this module
attacks the constant factor.  The Section 3.1 content check is *per
entry, independent* — embarrassingly parallel, exactly the property
validation engines for sibling formalisms (ShEx, SHACL) exploit — so a
:class:`CheckSession`:

1. **shards** the per-entry content check over document-order chunks
   across a ``concurrent.futures`` worker pool — a process pool with a
   pickled schema where possible, a thread pool as fallback — selected
   by the ``parallelism=`` knob (also surfaced as ``--jobs`` on the
   CLI);
2. **memoizes** content verdicts keyed by each entry's *content
   fingerprint* (:meth:`repro.model.entry.Entry.content_fingerprint` — a
   stable digest of classes plus the attribute multiset, invalidated at
   the mutation sites), so a re-check after a subtree update re-runs
   content checks only on the dirty set: cost O(|Δ|), not O(|D|);
3. **observes** itself: every check produces a
   :class:`~repro.legality.metrics.CheckStats` (entries checked, cache
   hits, query work, per-phase wall time) attached to the returned
   report and accumulated on the session.

The structure phase runs on the
:class:`~repro.legality.structure_engine.StructureEngine` by default:
the whole Figure 4 check set is evaluated as one batch (combined flag
passes, concurrent non-batched checks on the session's ``parallelism``,
per-element verdict memoization keyed on class fingerprints).  Extras
checking remains the global single-pass algorithm of Section 6.1.

Verdict equivalence with the sequential :class:`ContentChecker` (and the
naive structure baseline) is asserted by differential tests: same
violations, same order.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Dict, List, Literal, Mapping, Optional, Sequence, Tuple

from repro.legality.content import ContentChecker
from repro.legality.extras import ExtrasChecker
from repro.legality.metrics import CheckStats
from repro.legality.report import LegalityReport, Violation
from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker
from repro.legality.structure_engine import StructureEngine
from repro.model.dn import RDN
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema

__all__ = ["CheckSession"]

#: A content verdict as cached: DN-independent (kind, message, element)
#: triples, rebound to the offending entry's DN on report assembly.
Verdict = Tuple[Tuple[str, str, Optional[str]], ...]

#: One unit of worker input: (fingerprint, dn, classes, attributes).
_Payload = Tuple[str, str, Tuple[str, ...], Dict[str, List[object]]]

#: Entries are detached in workers; the RDN never participates in the
#: content check, so a placeholder suffices.
_PAYLOAD_RDN = RDN("cn", "payload")

# ----------------------------------------------------------------------
# process-pool worker side
# ----------------------------------------------------------------------
_WORKER_CHECKER: Optional[ContentChecker] = None


def _init_worker(schema_bytes: bytes) -> None:
    """Process-pool initializer: unpickle the schema once per worker."""
    global _WORKER_CHECKER
    _WORKER_CHECKER = ContentChecker(pickle.loads(schema_bytes))


def _check_chunk(payloads: Sequence[_Payload]) -> List[Tuple[str, Verdict]]:
    """Content-check one chunk of detached entries (worker side)."""
    checker = _WORKER_CHECKER
    assert checker is not None, "worker used before initialization"
    return _run_chunk(checker, payloads)


def _run_chunk(
    checker: ContentChecker, payloads: Sequence[_Payload]
) -> List[Tuple[str, Verdict]]:
    results: List[Tuple[str, Verdict]] = []
    for fingerprint, dn, classes, attributes in payloads:
        entry = Entry(_PAYLOAD_RDN, classes, attributes)
        verdict = tuple(
            (v.kind, v.message, v.element)
            for v in checker.check_entry(entry, dn=dn)
        )
        results.append((fingerprint, verdict))
    return results


class CheckSession:
    """A reusable legality-checking session: worker pool + verdict cache.

    Parameters
    ----------
    schema:
        The bounding-schema; compiled once (Figure 4 queries, pickled
        schema bytes for pool workers).
    parallelism:
        Worker count for the content phase.  ``None`` or ``<= 1`` runs
        sequentially (still memoized).
    structure:
        ``"batched"`` (default — the
        :class:`~repro.legality.structure_engine.StructureEngine`:
        batched flag propagation, concurrent evaluation on this
        session's ``parallelism``, per-element memoized verdicts),
        ``"query"`` (the paper's one-query-at-a-time linear reduction),
        or ``"naive"`` (the quadratic differential-testing oracle).
    executor:
        ``"process"``, ``"thread"``, or ``"auto"`` (default): prefer
        processes, fall back to threads when the schema does not pickle
        or process pools are unavailable.
    memoize:
        When false, the fingerprint cache is bypassed entirely (every
        entry is checked every time) — used by benchmarks that need
        cold-path timings.
    cache_limit:
        Maximum number of cached verdicts; eviction is LRU (one coldest
        verdict per insertion beyond the limit), so hot verdicts
        survive adversarial streams of ever-fresh content.
    min_parallel:
        Instances smaller than this run the sequential path even when
        ``parallelism > 1`` — pool latency would dominate.
    """

    def __init__(
        self,
        schema: DirectorySchema,
        parallelism: Optional[int] = None,
        structure: Literal["batched", "query", "naive"] = "batched",
        executor: Literal["auto", "process", "thread"] = "auto",
        memoize: bool = True,
        cache_limit: int = 1_000_000,
        min_parallel: int = 2_048,
    ) -> None:
        self.schema = schema
        self.parallelism = max(1, parallelism or 1)
        self.memoize = memoize
        self.cache_limit = cache_limit
        self.min_parallel = min_parallel
        self.content = ContentChecker(schema)
        if structure == "batched":
            self.structure: (
                StructureEngine | QueryStructureChecker | NaiveStructureChecker
            ) = StructureEngine(
                schema.structure_schema,
                parallelism=self.parallelism,
                memoize=memoize,
            )
        elif structure == "query":
            self.structure = QueryStructureChecker(schema.structure_schema)
        elif structure == "naive":
            self.structure = NaiveStructureChecker(schema.structure_schema)
        else:
            raise ValueError(f"unknown structure strategy {structure!r}")
        self.extras = None if schema.extras is None else ExtrasChecker(schema.extras)
        #: Cumulative stats across every check this session ran.
        self.stats = CheckStats()
        self._cache: "OrderedDict[str, Verdict]" = OrderedDict()
        self._executor: Optional[Executor] = None
        self._executor_kind: str = executor
        self._schema_bytes: Optional[bytes] = None
        self._chunk_runner: Callable[
            [Sequence[_Payload]], List[Tuple[str, Verdict]]
        ] = _check_chunk

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pools (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if isinstance(self.structure, StructureEngine):
            self.structure.close()

    def __enter__(self) -> "CheckSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def clear_cache(self) -> None:
        """Drop every memoized verdict (content and structure)."""
        self._cache.clear()
        if isinstance(self.structure, StructureEngine):
            self.structure.clear_memo()

    @property
    def cache_size(self) -> int:
        """Number of distinct fingerprints with a cached verdict."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """The full legality report for ``instance``.

        Verdict-identical to :class:`~repro.legality.checker.LegalityChecker`
        with the same ``structure`` strategy; the returned report carries
        this check's :class:`~repro.legality.metrics.CheckStats` under
        ``report.stats``.
        """
        stats = CheckStats()
        report = LegalityReport(stats=stats)
        with stats.timer("content"):
            report.extend(self._check_content(instance, stats))
        with stats.timer("structure"):
            report.extend(self.structure.check(instance).violations)
        stats.queries_evaluated += getattr(self.structure, "last_cost", 0)
        stats.structure_checks += getattr(
            self.structure, "last_checks_evaluated", 0
        )
        stats.structure_cache_hits += getattr(self.structure, "last_cache_hits", 0)
        stats.structure_batched += getattr(self.structure, "last_batched", 0)
        stats.flag_passes += getattr(self.structure, "last_flag_passes", 0)
        if self.extras is not None:
            with stats.timer("extras"):
                report.extend(self.extras.check(instance).violations)
        stats.violations = len(report)
        self.stats.merge(stats)
        return report

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Yes/no legality verdict."""
        return self.check(instance).is_legal

    def check_entry(self, entry: Entry, dn: Optional[str] = None) -> List[Violation]:
        """Memoized per-entry content check (same verdicts as
        :meth:`ContentChecker.check_entry`).

        This is the hook the incremental checker (Section 4.2) feeds its
        Δ through: verdicts computed while vetting a subtree insertion
        are cached under content fingerprints, so a later session
        re-check of the updated instance pays nothing for Δ.
        """
        where = dn if dn is not None else str(entry.dn)
        if not self.memoize:
            self.stats.entries_checked += 1
            return self.content.check_entry(entry, dn=where)
        fingerprint = entry.content_fingerprint()
        verdict = self._cache.get(fingerprint)
        if verdict is not None:
            self._cache.move_to_end(fingerprint)
        if verdict is None:
            self.stats.cache_misses += 1
            self.stats.entries_checked += 1
            verdict = tuple(
                (v.kind, v.message, v.element)
                for v in self.content.check_entry(entry, dn=where)
            )
            self._store(fingerprint, verdict)
        else:
            self.stats.cache_hits += 1
        return [
            Violation(kind, message, dn=where, element=element)
            for kind, message, element in verdict
        ]

    # ------------------------------------------------------------------
    # content phase
    # ------------------------------------------------------------------
    def _check_content(
        self, instance: DirectoryInstance, stats: CheckStats
    ) -> List[Violation]:
        entries = list(instance)
        # Pass 1: resolve memoized verdicts, collect the miss set.
        verdicts: List[Optional[Verdict]] = [None] * len(entries)
        misses: List[int] = []
        if self.memoize:
            for index, entry in enumerate(entries):
                cached = self._cache.get(entry.content_fingerprint())
                if cached is None:
                    misses.append(index)
                else:
                    self._cache.move_to_end(entry.content_fingerprint())
                    verdicts[index] = cached
            stats.cache_hits += len(entries) - len(misses)
            stats.cache_misses += len(misses)
        else:
            misses = list(range(len(entries)))

        # Pass 2: check the misses — sharded across the pool when the
        # workload justifies it, inline otherwise.  Within a pass,
        # entries sharing a fingerprint are checked once (a verdict is a
        # pure function of the fingerprinted content), so
        # ``entries_checked`` counts checks actually executed.
        if misses:
            if self.parallelism > 1 and len(misses) >= self.min_parallel:
                results = self._check_parallel(instance, entries, misses, stats)
            else:
                results = {}
                for index in misses:
                    entry = entries[index]
                    fingerprint = entry.content_fingerprint()
                    if fingerprint in results:
                        continue
                    results[fingerprint] = tuple(
                        (v.kind, v.message, v.element)
                        for v in self.content.check_entry(
                            entry, dn=instance.dn_string_of(entry)
                        )
                    )
            stats.entries_checked += len(results)
            for index in misses:
                fingerprint = entries[index].content_fingerprint()
                verdict = results[fingerprint]
                verdicts[index] = verdict
                if self.memoize:
                    self._store(fingerprint, verdict)

        # Pass 3: assemble in document order, binding DNs lazily (legal
        # entries — the common case — never pay the DN lookup).
        violations: List[Violation] = []
        for entry, verdict in zip(entries, verdicts):
            assert verdict is not None
            if verdict:
                where = instance.dn_string_of(entry)
                violations.extend(
                    Violation(kind, message, dn=where, element=element)
                    for kind, message, element in verdict
                )
        return violations

    def _check_parallel(
        self,
        instance: DirectoryInstance,
        entries: List[Entry],
        misses: List[int],
        stats: CheckStats,
    ) -> Dict[str, Verdict]:
        # Deduplicate by fingerprint: identical content needs one check.
        payloads: Dict[str, _Payload] = {}
        for index in misses:
            entry = entries[index]
            fingerprint = entry.content_fingerprint()
            if fingerprint in payloads:
                continue
            payloads[fingerprint] = (
                fingerprint,
                instance.dn_string_of(entry),
                tuple(entry.classes),
                {
                    name: list(entry.values(name))
                    for name in entry.attribute_names()
                    if name != "objectClass"
                },
            )
        work = list(payloads.values())
        chunk_count = max(1, min(len(work), self.parallelism * 4))
        size = (len(work) + chunk_count - 1) // chunk_count
        chunks = [work[i : i + size] for i in range(0, len(work), size)]
        stats.chunks += len(chunks)

        executor = self._get_executor()
        results: Dict[str, Verdict] = {}
        if executor is not None:
            stats.workers = max(stats.workers, self.parallelism)
            try:
                for chunk_result in executor.map(self._chunk_runner, chunks):
                    results.update(chunk_result)
                return results
            except Exception:
                # A broken pool (killed worker, pickling trouble at call
                # time) must degrade, not fail: drop to the sequential
                # path and stop trying to parallelize this session.
                self.close()
                self._executor_kind = "none"
                results.clear()
        for chunk in chunks:
            results.update(_run_chunk(self.content, chunk))
        return results

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------
    def _get_executor(self) -> Optional[Executor]:
        if self._executor is not None:
            return self._executor
        kind = self._executor_kind
        if kind == "none" or self.parallelism <= 1:
            return None
        if kind in ("process", "auto"):
            try:
                schema_bytes = self._pickled_schema()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.parallelism,
                    initializer=_init_worker,
                    initargs=(schema_bytes,),
                )
                self._chunk_runner = _check_chunk
                return self._executor
            except Exception:
                if kind == "process":
                    raise
                # auto: schema unpicklable or no process support here —
                # threads still help when checks release the GIL and
                # keep the code path uniform when they do not.
        self._executor = ThreadPoolExecutor(max_workers=self.parallelism)
        # Thread workers share this process; bind this session's checker
        # directly (no module-level global — sessions must not clash).
        self._chunk_runner = partial(_run_chunk, self.content)
        return self._executor

    def _pickled_schema(self) -> bytes:
        if self._schema_bytes is None:
            self._schema_bytes = pickle.dumps(self.schema)
        return self._schema_bytes

    # ------------------------------------------------------------------
    # cache internals
    # ------------------------------------------------------------------
    def _store(self, fingerprint: str, verdict: Verdict) -> None:
        if fingerprint in self._cache:
            self._cache.move_to_end(fingerprint)
            self._cache[fingerprint] = verdict
            return
        # LRU eviction: drop exactly the coldest verdict per insertion
        # beyond the limit — hot entries survive adversarial streams of
        # ever-fresh content (a wholesale clear() would not).
        while len(self._cache) >= self.cache_limit:
            self._cache.popitem(last=False)
        self._cache[fingerprint] = verdict

    # ------------------------------------------------------------------
    # cache persistence (the DirectoryStore sidecar)
    # ------------------------------------------------------------------
    def export_verdicts(self) -> Dict[str, List[List[Optional[str]]]]:
        """The fingerprint cache as a JSON-serializable mapping —
        ``fingerprint -> [[kind, message, element-or-null], ...]`` —
        for the :mod:`repro.store.journal` warm-start sidecar.
        Fingerprints are content digests (position-independent and
        stable across processes), so exported verdicts stay valid for
        any instance checked under the same schema."""
        return {
            fingerprint: [list(entry) for entry in verdict]
            for fingerprint, verdict in self._cache.items()
        }

    def import_verdicts(self, payload: Mapping[str, object]) -> int:
        """Warm the fingerprint cache from :meth:`export_verdicts`
        output.  Malformed rows are rejected wholesale (``ValueError``)
        — a corrupt sidecar must degrade to a cold start, never seed a
        wrong verdict.  Returns the number of verdicts imported."""
        staged: List[Tuple[str, Verdict]] = []
        for fingerprint, rows in payload.items():
            if not isinstance(fingerprint, str) or not isinstance(rows, list):
                raise ValueError("malformed verdict-cache payload")
            verdict: List[Tuple[str, str, Optional[str]]] = []
            for row in rows:
                if (
                    not isinstance(row, list)
                    or len(row) != 3
                    or not isinstance(row[0], str)
                    or not isinstance(row[1], str)
                    or not (row[2] is None or isinstance(row[2], str))
                ):
                    raise ValueError("malformed verdict-cache payload")
                verdict.append((row[0], row[1], row[2]))
            staged.append((fingerprint, tuple(verdict)))
        for fingerprint, verdict in staged:
            self._store(fingerprint, verdict)
        return len(staged)


def default_parallelism() -> int:
    """A sensible ``--jobs`` default: the machine's CPU count."""
    return os.cpu_count() or 1
