"""Legality reports: structured violation records.

Checkers never just answer yes/no — they return a
:class:`LegalityReport` listing every :class:`Violation` found, each tied
to the schema condition it breaks (Definition 2.7) and, where applicable,
the offending entry.  Reports compose: the full legality test
concatenates the content, structure, and extras reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.legality.metrics import CheckStats

__all__ = ["Violation", "LegalityReport", "Kind"]


class Kind:
    """Violation kind constants, grouped by the Definition 2.7 clause
    they correspond to."""

    # Attribute schema (Definition 2.7, first bullet group)
    MISSING_REQUIRED_ATTRIBUTE = "missing-required-attribute"
    DISALLOWED_ATTRIBUTE = "disallowed-attribute"
    # Class schema (second bullet group)
    UNKNOWN_CLASS = "unknown-class"
    NO_CORE_CLASS = "no-core-class"
    MISSING_SUPERCLASS = "missing-superclass"
    INCOMPARABLE_CORE_CLASSES = "incomparable-core-classes"
    DISALLOWED_AUXILIARY = "disallowed-auxiliary"
    # Structure schema (third bullet group)
    REQUIRED_RELATIONSHIP = "required-relationship"
    FORBIDDEN_RELATIONSHIP = "forbidden-relationship"
    MISSING_REQUIRED_CLASS = "missing-required-class"
    # Routing-cut integrity (sharded stores): a nested shard whose
    # attachment entry is missing from its enclosing shard.
    ORPHANED_SHARD = "orphaned-shard"
    # Section 6.1 extras
    SINGLE_VALUED = "single-valued"
    DUPLICATE_KEY = "duplicate-key"
    DANGLING_REFERENCE = "dangling-reference"

    CONTENT_KINDS = frozenset(
        {
            MISSING_REQUIRED_ATTRIBUTE,
            DISALLOWED_ATTRIBUTE,
            UNKNOWN_CLASS,
            NO_CORE_CLASS,
            MISSING_SUPERCLASS,
            INCOMPARABLE_CORE_CLASSES,
            DISALLOWED_AUXILIARY,
        }
    )
    STRUCTURE_KINDS = frozenset(
        {REQUIRED_RELATIONSHIP, FORBIDDEN_RELATIONSHIP, MISSING_REQUIRED_CLASS}
    )
    EXTRAS_KINDS = frozenset({SINGLE_VALUED, DUPLICATE_KEY, DANGLING_REFERENCE})


@dataclass(frozen=True)
class Violation:
    """One breach of one schema condition.

    Parameters
    ----------
    kind:
        A :class:`Kind` constant.
    message:
        Human-readable explanation naming the schema element involved.
    dn:
        Distinguished name of the offending entry, when one exists
        (violated required-class elements have none).
    element:
        ``str()`` of the schema element, when the violation stems from a
        structure element.
    """

    kind: str
    message: str
    dn: Optional[str] = None
    element: Optional[str] = None

    def __str__(self) -> str:
        location = f" at {self.dn}" if self.dn else ""
        return f"[{self.kind}]{location}: {self.message}"


@dataclass
class LegalityReport:
    """The outcome of a legality test: all violations found.

    Checks run through the legality engine
    (:class:`repro.legality.engine.CheckSession`) additionally attach a
    :class:`~repro.legality.metrics.CheckStats` snapshot under
    :attr:`stats`; plain checkers leave it ``None``.
    """

    violations: List[Violation] = field(default_factory=list)
    stats: Optional["CheckStats"] = None

    @property
    def is_legal(self) -> bool:
        """Whether the instance satisfied every checked condition."""
        return not self.violations

    def add(self, violation: Violation) -> None:
        """Append one violation."""
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        """Append several violations."""
        self.violations.extend(violations)

    def merged_with(self, other: "LegalityReport") -> "LegalityReport":
        """A new report holding both reports' violations."""
        return LegalityReport(self.violations + other.violations)

    def of_kind(self, *kinds: str) -> List[Violation]:
        """The violations whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [v for v in self.violations if v.kind in wanted]

    def content_violations(self) -> List[Violation]:
        """Violations of the content schema (attribute + class)."""
        return [v for v in self.violations if v.kind in Kind.CONTENT_KINDS]

    def structure_violations(self) -> List[Violation]:
        """Violations of the structure schema."""
        return [v for v in self.violations if v.kind in Kind.STRUCTURE_KINDS]

    def summary(self) -> Tuple[int, int, int]:
        """``(content, structure, extras)`` violation counts."""
        content = len(self.content_violations())
        structure = len(self.structure_violations())
        return content, structure, len(self.violations) - content - structure

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def __len__(self) -> int:
        return len(self.violations)

    def __str__(self) -> str:
        if self.is_legal:
            return "legal (no violations)"
        lines = [f"ILLEGAL: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)
