"""Scope analysis: which legality checks survive a routing cut.

A sharded store (:mod:`repro.store.sharded`) routes disjoint DIT
subtrees to independent per-shard stores.  Theorem 4.1's modularity
says subtree updates are independently checkable — but only for checks
whose *scope* is contained in one shard.  This module classifies the
schema's elements against a shard map:

* **content checks** are per-entry and always shard-local;
* **required classes** (``c □``) are existential over the *whole*
  directory — always composite: a shard holding no ``organization``
  is fine as long as some shard does;
* **relationship elements** (``Er ∪ Ef``, the Figure 4 checks) relate
  an entry to its children/parents/descendants/ancestors.  Under a
  *flat* map (every shard base a root DN) each shard holds complete
  trees, every structural axis stays inside one tree, and the edge is
  provably shard-local: the union of per-shard verdicts equals the
  global verdict.  Under a *nested* cut (a base of depth > 1 carved
  out of an enclosing shard) an edge's witness can sit on the far side
  of the cut — a nested shard's root has its parent in another shard —
  so every relationship element is classified composite and evaluated
  on the stitched view.  (A finer per-edge analysis — e.g. child-axis
  edges only span the cut at its boundary — is possible; classifying
  whole axes is the sound, simple cut made here.)

The shard-local and composite schemas built from a classification
share the content components (attribute/class schemas, registry) of
the source schema; only the structure schema is partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import ForbiddenEdge, RequiredEdge, SchemaElement
from repro.schema.structure_schema import StructureSchema

__all__ = [
    "ShardScope",
    "analyze_shard_scope",
    "shard_local_schema",
    "composite_structure_schema",
]


@dataclass(frozen=True)
class ShardScope:
    """The classification of a schema's structure elements against a
    routing cut."""

    #: Relationship elements whose per-shard verdicts union to the
    #: global verdict (evaluated inside each shard).
    local_edges: Tuple[SchemaElement, ...]
    #: Relationship elements whose scope can span the cut (evaluated on
    #: the composite view only).
    composite_edges: Tuple[SchemaElement, ...]
    #: Required classes ``c □`` — always composite.
    required_classes: FrozenSet[str]
    #: Whether the map nests a base inside another shard's subtree.
    nested: bool

    def summary(self) -> str:
        """One-line human summary of the classification."""
        return (
            f"{len(self.local_edges)} shard-local edge(s), "
            f"{len(self.composite_edges)} composite edge(s), "
            f"{len(self.required_classes)} composite required class(es)"
            + (" [nested cut]" if self.nested else "")
        )


def analyze_shard_scope(schema: DirectorySchema, shard_map) -> ShardScope:
    """Classify ``schema``'s structure elements against ``shard_map``
    (a :class:`~repro.store.shardmap.ShardMap`)."""
    structure = schema.structure_schema
    nested = shard_map.has_cut()
    edges: List[SchemaElement] = structure.relationship_elements()
    if nested:
        local: List[SchemaElement] = []
        composite = edges
    else:
        local = edges
        composite = []
    return ShardScope(
        local_edges=tuple(local),
        composite_edges=tuple(composite),
        required_classes=structure.required_classes,
        nested=nested,
    )


def _structure_from_elements(elements) -> StructureSchema:
    built = StructureSchema()
    for element in elements:
        if isinstance(element, RequiredEdge):
            built.require(element.source, element.axis, element.target)
        elif isinstance(element, ForbiddenEdge):
            built.forbid(element.source, element.axis, element.target)
        else:  # pragma: no cover - scope holds only edges here
            raise TypeError(f"unexpected element {element!r}")
    return built


def shard_local_schema(
    schema: DirectorySchema, scope: ShardScope
) -> DirectorySchema:
    """The schema each per-shard store enforces: full content bound,
    structure bound restricted to the shard-local edges (no required
    classes — those are composite by definition)."""
    return DirectorySchema(
        attribute_schema=schema.attribute_schema,
        class_schema=schema.class_schema,
        structure_schema=_structure_from_elements(scope.local_edges),
        registry=schema.registry,
        extras=None,
    ).validate()


def composite_structure_schema(scope: ShardScope) -> StructureSchema:
    """The structure bound evaluated on the composite view: required
    classes plus every cut-spanning edge."""
    built = _structure_from_elements(scope.composite_edges)
    built.require_class(*sorted(scope.required_classes))
    return built
