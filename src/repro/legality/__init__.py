"""Legality testing of directory instances (Section 3 of the paper)."""

from repro.legality.checker import LegalityChecker
from repro.legality.content import ContentChecker
from repro.legality.engine import CheckSession
from repro.legality.extras import ExtrasChecker
from repro.legality.metrics import CheckStats
from repro.legality.report import Kind, LegalityReport, Violation
from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker
from repro.legality.structure_engine import StructureEngine

__all__ = [
    "LegalityChecker",
    "CheckSession",
    "CheckStats",
    "ContentChecker",
    "ExtrasChecker",
    "QueryStructureChecker",
    "NaiveStructureChecker",
    "StructureEngine",
    "LegalityReport",
    "Violation",
    "Kind",
]
