"""The batched, parallel, memoized structure-check engine.

Theorem 3.1 bounds the structure check by ``O(|S| * |D|)`` — per query.
Evaluated one at a time, every Figure 4 check whose operands are large
relative to ``|D|`` falls back to a whole-forest flag pass
(``_descendant_by_flags`` / ``_ancestor_by_flags`` in
:mod:`repro.query.evaluator`), so a schema with many such elements does
many full ``O(|D|)`` sweeps where one would do.  SHACL validators face
the same shapes-over-graph problem and win by sharing graph traversals
across shapes; :class:`StructureEngine` does the analogue for the whole
translated check set, in three layers:

1. **Batched flag propagation** — checks whose inner operand is an
   ``(objectClass=c)`` selection *and* whose adaptive evaluation would
   use a whole-forest flag pass are collected and answered together:
   one reverse pass over document order computes ``has_c_below`` and
   one forward pass computes ``has_c_above`` for **all** such classes
   at once, using per-entry integer bitmasks (one bit per tracked
   class).  ``|S|`` sweeps become at most 2.  Checks the adaptive
   evaluator would run via semi-joins or interval joins keep that path
   — batching them would *add* work, not share it.  The strategy
   predicates are imported from the evaluator so both layers stay in
   agreement (:func:`repro.query.evaluator.descendant_prefers_flags`
   et al.).

2. **Concurrent evaluation** — the Figure 4 queries are independent of
   each other, so the non-batched checks are sharded across a thread
   pool on a shared read-only interval numbering (pre-built before
   dispatch).  Violations are merged deterministically in element
   order, so reports are byte-identical to the sequential checkers'.

3. **Per-element memoization** — each verdict is keyed on the
   *fingerprints* of the classes the element mentions
   (:meth:`repro.model.instance.DirectoryInstance.class_fingerprint`,
   plus the instance token).  Entry ids are never reused and entries
   never re-parent while keeping their id (moves are delete+insert), so
   a structure verdict is a pure function of the mentioned classes'
   member sets: a ``recheck()`` after a subtree update re-evaluates
   only elements whose source/target classes intersect the dirty set.

Verdicts are differentially identical to both
:class:`~repro.legality.structure.QueryStructureChecker` and
:class:`~repro.legality.structure.NaiveStructureChecker` — same
violations, same order (asserted by ``tests/test_structure_engine.py``
and the ``benchmarks/bench_structure.py`` gates).
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.axes import Axis
from repro.legality.report import Kind, LegalityReport, Violation
from repro.legality.structure import _forbidden_violation, _required_violation
from repro.model.instance import DirectoryInstance
from repro.query.evaluator import (
    QueryEvaluator,
    ancestor_prefers_flags,
    descendant_prefers_flags,
    prefers_semi_join,
)
from repro.query.translate import TranslatedCheck, translate_element
from repro.schema.elements import ForbiddenEdge, RequiredClass, RequiredEdge
from repro.schema.structure_schema import StructureSchema

__all__ = ["StructureEngine"]

#: A memoized verdict: the violation-witness set for relationship
#: elements (empty = legal), or the non-emptiness bit for required
#: classes.  Witnesses are entry ids; DNs are rendered at report time
#: (valid because a fingerprint hit implies the source member set — a
#: superset of the witnesses — is unchanged).
_Verdict = Union[FrozenSet[int], bool]

#: A memo key: (instance token, fingerprints of the mentioned classes).
_MemoKey = Tuple[int, ...]


class StructureEngine:
    """Batch-evaluates a structure schema's whole translated check set.

    Drop-in verdict-compatible with
    :class:`~repro.legality.structure.QueryStructureChecker`: same
    ``check``/``is_legal`` surface, same ``last_cost`` observability
    hook, identical reports.

    Parameters
    ----------
    structure_schema:
        The ``(Cr, Er, Ef)`` component of the bounding-schema; compiled
        to Figure 4 checks once.
    parallelism:
        Worker-thread count for the non-batched checks.  ``None`` or
        ``<= 1`` evaluates them inline (still batched and memoized).
    memoize:
        When false, the per-element verdict memo is bypassed — every
        check is (re-)evaluated on every call.
    """

    def __init__(
        self,
        structure_schema: StructureSchema,
        parallelism: Optional[int] = None,
        memoize: bool = True,
    ) -> None:
        self.structure_schema = structure_schema
        self.checks: List[TranslatedCheck] = [
            translate_element(element) for element in structure_schema.elements()
        ]
        self.parallelism = max(1, parallelism or 1)
        self.memoize = memoize
        #: Evaluator work (entries touched) of the most recent call.
        self.last_cost = 0
        #: Elements actually evaluated by the most recent call (memo
        #: hits excluded) — the dirty set after an update.
        self.last_checks_evaluated = 0
        #: Memoized verdicts served by the most recent call.
        self.last_cache_hits = 0
        #: Elements answered by the combined bitmask pass.
        self.last_batched = 0
        #: Whole-forest flag sweeps performed (at most 2 per call).
        self.last_flag_passes = 0
        # check index -> (memo key, verdict); bounded by |S| since each
        # index keeps only its latest verdict.
        self._memo: Dict[int, Tuple[_MemoKey, _Verdict]] = {}
        self._executor: Optional[Executor] = None
        self._pool_broken = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "StructureEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def clear_memo(self) -> None:
        """Drop every memoized structure verdict."""
        self._memo.clear()

    @property
    def memo_size(self) -> int:
        """Number of elements with a memoized verdict (``<= |S|``)."""
        return len(self._memo)

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, instance: DirectoryInstance) -> LegalityReport:
        """Evaluate the whole check set; collect violations in element
        order (report-identical to ``QueryStructureChecker.check``)."""
        verdicts = self._verdicts(instance)
        return self._assemble(instance, verdicts)

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Yes/no structure verdict."""
        verdicts = self._verdicts(instance)
        for check, verdict in zip(self.checks, verdicts):
            if check.legal_when_empty:
                if verdict:
                    return False
            elif not verdict:
                return False
        return True

    # ------------------------------------------------------------------
    # evaluation pipeline
    # ------------------------------------------------------------------
    def _verdicts(self, instance: DirectoryInstance) -> List[_Verdict]:
        self.last_cost = 0
        self.last_checks_evaluated = 0
        self.last_cache_hits = 0
        self.last_batched = 0
        self.last_flag_passes = 0

        # Force the shared interval numbering once, before any worker
        # touches the instance (the lazy rebuild is not thread-safe).
        instance.entry_ids()

        token = instance.instance_token
        verdicts: List[Optional[_Verdict]] = [None] * len(self.checks)
        pending: List[Tuple[int, _MemoKey]] = []
        for index, check in enumerate(self.checks):
            key = self._memo_key(token, instance, check)
            if self.memoize:
                cached = self._memo.get(index)
                if cached is not None and cached[0] == key:
                    verdicts[index] = cached[1]
                    self.last_cache_hits += 1
                    continue
            pending.append((index, key))

        if pending:
            self._evaluate_pending(instance, pending, verdicts)
            self.last_checks_evaluated += len(pending)
            if self.memoize:
                for index, key in pending:
                    verdict = verdicts[index]
                    assert verdict is not None
                    self._memo[index] = (key, verdict)
        final: List[_Verdict] = []
        for verdict in verdicts:  # all checks answered; keep alignment
            assert verdict is not None
            final.append(verdict)
        return final

    def _memo_key(
        self, token: int, instance: DirectoryInstance, check: TranslatedCheck
    ) -> _MemoKey:
        element = check.element
        if isinstance(element, RequiredClass):
            return (token, *instance.class_fingerprint(element.object_class))
        assert isinstance(element, (RequiredEdge, ForbiddenEdge))
        return (
            token,
            *instance.class_fingerprint(element.source),
            *instance.class_fingerprint(element.target),
        )

    def _evaluate_pending(
        self,
        instance: DirectoryInstance,
        pending: List[Tuple[int, _MemoKey]],
        verdicts: List[Optional[_Verdict]],
    ) -> None:
        batched: List[Tuple[int, Union[RequiredEdge, ForbiddenEdge]]] = []
        queried: List[int] = []
        for index, _ in pending:
            element = self.checks[index].element
            if isinstance(element, RequiredClass):
                # O(1) via the per-class index — no query needed.
                self.last_cost += 1
                verdicts[index] = instance.class_count(element.object_class) > 0
            elif self._would_flag_pass(instance, element):
                batched.append((index, element))
            else:
                queried.append(index)
        if batched:
            self._evaluate_batched(instance, batched, verdicts)
        if queried:
            self._evaluate_queries(instance, queried, verdicts)

    # ------------------------------------------------------------------
    # layer 1: batched flag propagation
    # ------------------------------------------------------------------
    def _would_flag_pass(
        self, instance: DirectoryInstance, element: object
    ) -> bool:
        """Mirror of the adaptive evaluator's strategy choice for a
        Figure 4 query: true iff evaluating this element alone would
        sweep the whole forest with a flag pass."""
        if not isinstance(element, (RequiredEdge, ForbiddenEdge)):
            return False
        if element.axis not in (Axis.DESCENDANT, Axis.ANCESTOR):
            return False
        n_source = instance.class_count(element.source)
        n_target = instance.class_count(element.target)
        if n_source == 0 or n_target == 0:
            return False  # the evaluator short-circuits on an empty side
        if prefers_semi_join(n_source, n_target):
            return False
        if prefers_semi_join(n_target, n_source) and element.axis is Axis.DESCENDANT:
            return False
        if element.axis is Axis.DESCENDANT:
            return descendant_prefers_flags(n_source, n_target, len(instance))
        return ancestor_prefers_flags(
            n_source, instance.max_depth(), len(instance)
        )

    def _evaluate_batched(
        self,
        instance: DirectoryInstance,
        batched: List[Tuple[int, Union[RequiredEdge, ForbiddenEdge]]],
        verdicts: List[Optional[_Verdict]],
    ) -> None:
        """Answer every flag-bound check with (at most) one reverse and
        one forward pass, carrying one bit per tracked target class."""
        bits: Dict[str, int] = {}
        for _, element in batched:
            bits.setdefault(element.target, 1 << len(bits))

        # Per-entry class masks for the tracked targets only: cost is
        # the total member count, not |D| * |classes|.
        entry_mask: Dict[int, int] = {}
        for name, bit in bits.items():
            members = instance.entries_with_class(name)
            self.last_cost += len(members)
            for eid in members:
                entry_mask[eid] = entry_mask.get(eid, 0) | bit

        order = instance.entry_ids()
        below: Dict[int, int] = {}
        above: Dict[int, int] = {}
        if any(e.axis is Axis.DESCENDANT for _, e in batched):
            # Reverse document order visits children before parents:
            # below[eid] = bits of classes with a member strictly below.
            children_ids = instance.children_ids
            for eid in reversed(order):
                mask = 0
                for child in children_ids(eid):
                    mask |= below[child] | entry_mask.get(child, 0)
                below[eid] = mask
            self.last_cost += len(order)
            self.last_flag_passes += 1
        if any(e.axis is Axis.ANCESTOR for _, e in batched):
            # Forward pass: above[eid] = bits strictly above eid.
            parent_id = instance.parent_id
            for eid in order:
                parent = parent_id(eid)
                above[eid] = (
                    0
                    if parent is None
                    else above[parent] | entry_mask.get(parent, 0)
                )
            self.last_cost += len(order)
            self.last_flag_passes += 1

        for index, element in batched:
            bit = bits[element.target]
            masks = below if element.axis is Axis.DESCENDANT else above
            sources = instance.entries_with_class(element.source)
            self.last_cost += len(sources)
            if isinstance(element, RequiredEdge):
                witnesses = frozenset(
                    eid for eid in sources if not masks[eid] & bit
                )
            else:
                witnesses = frozenset(eid for eid in sources if masks[eid] & bit)
            verdicts[index] = witnesses
            self.last_batched += 1

    # ------------------------------------------------------------------
    # layer 2: concurrent per-query evaluation
    # ------------------------------------------------------------------
    def _evaluate_queries(
        self,
        instance: DirectoryInstance,
        indexes: List[int],
        verdicts: List[Optional[_Verdict]],
    ) -> None:
        """Evaluate the non-batched checks, sharded across the thread
        pool when it pays; inline otherwise."""

        def run(shard: List[int]) -> Tuple[int, List[Tuple[int, FrozenSet[int]]]]:
            evaluator = QueryEvaluator(instance)
            out: List[Tuple[int, FrozenSet[int]]] = []
            for index in shard:
                out.append(
                    (index, frozenset(evaluator.evaluate(self.checks[index].query)))
                )
            return evaluator.cost, out

        shards: List[List[int]] = []
        if self.parallelism > 1 and len(indexes) > 1 and not self._pool_broken:
            shards = [
                indexes[offset :: self.parallelism]
                for offset in range(self.parallelism)
            ]
            shards = [shard for shard in shards if shard]
        if len(shards) > 1:
            executor = self._get_executor()
            if executor is not None:
                try:
                    for cost, out in executor.map(run, shards):
                        self.last_cost += cost
                        for index, witnesses in out:
                            verdicts[index] = witnesses
                    return
                except Exception:
                    # A broken pool degrades to inline evaluation — the
                    # verdicts must never depend on the pool's health.
                    self.close()
                    self._pool_broken = True
        cost, out = run(indexes)
        self.last_cost += cost
        for index, witnesses in out:
            verdicts[index] = witnesses

    def _get_executor(self) -> Optional[Executor]:
        if self._executor is None and not self._pool_broken:
            try:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="structure-engine",
                )
            except Exception:
                self._pool_broken = True
        return self._executor

    # ------------------------------------------------------------------
    # report assembly (element order — deterministic merge)
    # ------------------------------------------------------------------
    def _assemble(
        self, instance: DirectoryInstance, verdicts: List[_Verdict]
    ) -> LegalityReport:
        report = LegalityReport()
        for check, verdict in zip(self.checks, verdicts):
            element = check.element
            if check.legal_when_empty:
                if not verdict:
                    continue
                assert isinstance(verdict, frozenset)
                if isinstance(element, RequiredEdge):
                    report.extend(_required_violation(element, instance, verdict))
                else:
                    assert isinstance(element, ForbiddenEdge)
                    report.extend(_forbidden_violation(element, instance, verdict))
            elif not verdict:
                assert isinstance(element, RequiredClass)
                report.add(
                    Violation(
                        Kind.MISSING_REQUIRED_CLASS,
                        f"no entry belongs to required class "
                        f"{element.object_class!r}",
                        element=str(element),
                    )
                )
        return report
