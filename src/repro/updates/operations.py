"""Update operations and transactions (Section 4.1).

LDAP updates happen one entry at a time: a new entry must be a root or a
child of an existing entry, and only leaves can be deleted.  An *update
transaction* is a sequence of distinct entry insertions and deletions;
Theorem 4.1 shows legality checking may treat any transaction as a set of
*subtree* insertions followed by *subtree* deletions, which is the
granularity the incremental checker works at.

This module defines the operation/transaction value objects; the
Theorem 4.1 decomposition lives in :mod:`repro.updates.transactions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import UpdateError
from repro.model.dn import DN, parse_dn

__all__ = ["InsertEntry", "DeleteEntry", "UpdateOperation", "UpdateTransaction"]


@dataclass(frozen=True)
class InsertEntry:
    """Insert one entry at ``dn`` with the given classes and attributes.

    The parent entry (``dn.parent()``) must exist at apply time — either
    already in the instance or inserted earlier in the same transaction.
    """

    dn: DN
    classes: Tuple[str, ...]
    attributes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    @staticmethod
    def make(
        dn: Union[DN, str],
        classes: Any,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "InsertEntry":
        """Convenience constructor accepting strings/dicts/lists."""
        parsed = parse_dn(dn) if isinstance(dn, str) else dn
        attr_items: List[Tuple[str, Tuple[Any, ...]]] = []
        for name, values in (attributes or {}).items():
            attr_items.append((name, tuple(values)))
        return InsertEntry(parsed, tuple(classes), tuple(attr_items))

    def attribute_dict(self) -> Dict[str, List[Any]]:
        """The attributes as a plain dict of value lists."""
        return {name: list(values) for name, values in self.attributes}

    def __str__(self) -> str:
        return f"insert {self.dn}"


@dataclass(frozen=True)
class DeleteEntry:
    """Delete the entry at ``dn``.

    At apply time the entry must be a leaf — either a leaf of the
    instance or one whose descendants are all deleted earlier in the same
    transaction.
    """

    dn: DN

    @staticmethod
    def make(dn: Union[DN, str]) -> "DeleteEntry":
        """Convenience constructor accepting a DN string."""
        return DeleteEntry(parse_dn(dn) if isinstance(dn, str) else dn)

    def __str__(self) -> str:
        return f"delete {self.dn}"


UpdateOperation = Union[InsertEntry, DeleteEntry]


@dataclass
class UpdateTransaction:
    """A sequence of distinct entry insertions and deletions.

    Distinctness (the Section 4.1 assumption) means no DN is targeted by
    two operations; :meth:`validate` enforces it.
    """

    operations: List[UpdateOperation] = field(default_factory=list)

    def insert(
        self,
        dn: Union[DN, str],
        classes: Any,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "UpdateTransaction":
        """Append an insertion; returns ``self`` for chaining."""
        self.operations.append(InsertEntry.make(dn, classes, attributes))
        return self

    def delete(self, dn: Union[DN, str]) -> "UpdateTransaction":
        """Append a deletion; returns ``self`` for chaining."""
        self.operations.append(DeleteEntry.make(dn))
        return self

    def insertions(self) -> List[InsertEntry]:
        """All insertion operations, in transaction order."""
        return [op for op in self.operations if isinstance(op, InsertEntry)]

    def deletions(self) -> List[DeleteEntry]:
        """All deletion operations, in transaction order."""
        return [op for op in self.operations if isinstance(op, DeleteEntry)]

    def validate(self) -> "UpdateTransaction":
        """Enforce the distinctness assumption of Section 4.1.

        Raises
        ------
        UpdateError
            If two operations target the same DN.
        """
        seen: set = set()
        for op in self.operations:
            # DN resolution is case-insensitive, so distinctness must
            # compare normalized forms; the message keeps the spelling
            # the caller wrote.
            key = str(op.dn.normalized())
            if key in seen:
                raise UpdateError(
                    f"transaction targets {str(op.dn)!r} more than once "
                    "(operations must be distinct, Section 4.1)"
                )
            seen.add(key)
        return self

    def __iter__(self) -> Iterator[UpdateOperation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)
