"""Directory updates and incremental legality testing (Section 4)."""

from repro.updates.incremental import IncrementalChecker, UpdateOutcome
from repro.updates.operations import (
    DeleteEntry,
    InsertEntry,
    UpdateOperation,
    UpdateTransaction,
)
from repro.updates.table import (
    DELTA_TABLE,
    DeltaRule,
    build_delta_query,
    rule_for,
)
from repro.updates.transactions import SubtreeUpdate, apply_subtree_update, decompose

__all__ = [
    "IncrementalChecker",
    "UpdateOutcome",
    "InsertEntry",
    "DeleteEntry",
    "UpdateOperation",
    "UpdateTransaction",
    "SubtreeUpdate",
    "decompose",
    "apply_subtree_update",
    "DeltaRule",
    "DELTA_TABLE",
    "rule_for",
    "build_delta_query",
]
