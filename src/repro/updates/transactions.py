"""Theorem 4.1: decomposing transactions into subtree updates.

Any update transaction ``U`` (a sequence of distinct entry insertions and
deletions) applied to a legal instance ``D`` yields the same final
instance as: first inserting the maximal subtrees formed by the inserted
entries, then deleting the maximal subtrees formed by the deleted entries
— and ``U`` preserves legality iff *each* of those subtree steps does
(Theorem 4.1).  This is the modularity property that lets the incremental
checker (:mod:`repro.updates.incremental`) work one subtree at a time.

:func:`decompose` performs the grouping and validates the LDAP
preconditions:

* an inserted entry's parent either exists in ``D`` or is itself inserted
  (insertions grow downward from existing entries);
* deleting an entry requires deleting its whole subtree (LDAP removes
  leaves only, so a transaction that removes an interior entry must also
  remove every descendant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional

from repro.errors import UpdateError
from repro.model.dn import DN
from repro.model.instance import DirectoryInstance
from repro.updates.operations import InsertEntry, UpdateTransaction

__all__ = ["SubtreeUpdate", "decompose", "apply_subtree_update"]


@dataclass
class SubtreeUpdate:
    """One Theorem 4.1 step: insert or delete a single subtree.

    For insertions, ``subtree`` is the Δ to graft under ``parent_dn``
    (``None`` grafts new roots).  For deletions, ``root_dn`` names the
    subtree of the instance to prune.
    """

    kind: Literal["insert", "delete"]
    parent_dn: Optional[DN] = None
    subtree: Optional[DirectoryInstance] = None
    root_dn: Optional[DN] = None

    def __str__(self) -> str:
        if self.kind == "insert":
            root_count = len(self.subtree.root_ids()) if self.subtree else 0
            where = self.parent_dn if self.parent_dn else "(root)"
            size = len(self.subtree) if self.subtree else 0
            return f"insert subtree ({size} entries, {root_count} root(s)) under {where}"
        return f"delete subtree at {self.root_dn}"


def _group_insertions(
    transaction: UpdateTransaction,
    instance: DirectoryInstance,
) -> List[SubtreeUpdate]:
    inserts = transaction.insertions()
    # Grouping keys are case-normalized, matching DN resolution: an op
    # written `CN=X,...` is the child of one written `cn=x,...`.
    by_dn: Dict[str, InsertEntry] = {
        str(op.dn.normalized()): op for op in inserts
    }

    # Roots of inserted subtrees: inserted entries whose parent is not
    # itself inserted.  Their parents must exist in the instance.
    deleted_dns = {str(op.dn.normalized()) for op in transaction.deletions()}
    roots: List[InsertEntry] = []
    children: Dict[str, List[InsertEntry]] = {key: [] for key in by_dn}
    for op in inserts:
        parent_key = str(op.dn.parent().normalized())
        if parent_key in by_dn:
            children[parent_key].append(op)
        else:
            if not op.dn.parent().is_empty():
                if instance.find(op.dn.parent()) is None:
                    raise UpdateError(
                        f"insertion {op.dn} has no parent: {op.dn.parent()} "
                        "is neither in the instance nor inserted"
                    )
                if parent_key in deleted_dns:
                    raise UpdateError(
                        f"insertion {op.dn} attaches under {op.dn.parent()}, "
                        "which the same transaction deletes"
                    )
            roots.append(op)

    # Each root grows into one standalone Δ instance.
    updates: List[SubtreeUpdate] = []
    for root in roots:
        delta = DirectoryInstance(attributes=instance.attributes)

        def build(op: InsertEntry, parent_entry) -> None:
            node = delta.add_entry(
                parent_entry, op.dn.rdn, op.classes, op.attribute_dict()
            )
            for child_op in children[str(op.dn.normalized())]:
                build(child_op, node)

        build(root, None)
        parent_dn = root.dn.parent()
        updates.append(
            SubtreeUpdate(
                "insert",
                parent_dn=None if parent_dn.is_empty() else parent_dn,
                subtree=delta,
            )
        )
    return updates


def _group_deletions(
    transaction: UpdateTransaction,
    instance: DirectoryInstance,
) -> List[SubtreeUpdate]:
    deletes = transaction.deletions()
    targeted = {str(op.dn.normalized()) for op in deletes}
    updates: List[SubtreeUpdate] = []
    for op in deletes:
        if instance.find(op.dn) is None:
            raise UpdateError(f"deletion target {op.dn} is not in the instance")
        parent_key = str(op.dn.parent().normalized())
        if parent_key in targeted:
            continue  # interior node of a larger deleted subtree
        # This is a subtree root; its whole subtree must be targeted.
        entry = instance.entry(str(op.dn))
        for descendant in instance.descendants_of(entry):
            if str(instance.dn_of(descendant).normalized()) not in targeted:
                raise UpdateError(
                    f"transaction deletes {op.dn} but not its descendant "
                    f"{instance.dn_of(descendant)} (LDAP deletes leaves only)"
                )
        updates.append(SubtreeUpdate("delete", root_dn=op.dn))
    return updates


def decompose(
    transaction: UpdateTransaction,
    instance: DirectoryInstance,
) -> List[SubtreeUpdate]:
    """Decompose ``transaction`` into subtree updates per Theorem 4.1.

    Returns insertions first, then deletions — the canonical order the
    theorem licenses.  No two returned subtree roots are in an
    (ancestor, descendant) relationship.

    Raises
    ------
    UpdateError
        If the transaction violates the LDAP preconditions or
        distinctness.
    """
    transaction.validate()
    return _group_insertions(transaction, instance) + _group_deletions(
        transaction, instance
    )


def apply_subtree_update(
    instance: DirectoryInstance, update: SubtreeUpdate
) -> DirectoryInstance:
    """Apply one subtree update in place; returns the Δ as a standalone
    instance (the grafted copy for insertions, the pruned subtree for
    deletions)."""
    if update.kind == "insert":
        assert update.subtree is not None
        parent = None if update.parent_dn is None else str(update.parent_dn)
        instance.insert_subtree(parent, update.subtree)
        return update.subtree
    assert update.root_dn is not None
    return instance.delete_subtree(str(update.root_dn))
