"""Incremental legality testing under subtree updates (Section 4.2).

:class:`IncrementalChecker` wraps a directory instance assumed legal
w.r.t. a schema and offers transactional subtree updates:

* :meth:`try_insert` grafts a subtree Δ, re-establishes legality by the
  Figure 5 insertion rules — content-check Δ in isolation plus one
  Δ-scoped query per structural relationship — and **rolls the graft
  back** if any check fails;
* :meth:`try_delete` prunes a subtree, applies the Figure 5 deletion
  rules — no work for required-parent/ancestor and forbidden forms, a
  full re-check only for required-child/descendant — plus the *counted*
  required-class test (the paper notes ``Cr`` becomes incrementally
  testable for deletion "if we had the ability to associate each ci with
  the number of entries that belong to ci"; our per-class index provides
  exactly those counts), and rolls back on failure;
* :meth:`apply_transaction` runs a whole Section 4.1 transaction through
  the Theorem 4.1 decomposition, checking each subtree step and rolling
  back *all* applied steps if any step fails.

Every method reports the machine-independent work counter
(:attr:`UpdateOutcome.cost`) so the FIG5 benchmark can compare
incremental cost against full re-checking without timing noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Union

from repro.errors import UpdateError
from repro.model.dn import DN
from repro.model.instance import DirectoryInstance
from repro.legality.engine import CheckSession
from repro.legality.metrics import CheckStats
from repro.legality.report import Kind, LegalityReport, Violation
from repro.legality.structure import QueryStructureChecker
from repro.query.ast import SCOPE_DELTA, SCOPE_EMPTY, SCOPE_NEW, SCOPE_OLD
from repro.query.evaluator import QueryEvaluator
from repro.query.translate import translate_element  # noqa: F401 (used in try_modify)
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import ForbiddenEdge, RequiredEdge
from repro.updates.operations import UpdateTransaction
from repro.updates.table import build_delta_query, rule_for
from repro.updates.transactions import SubtreeUpdate, decompose

__all__ = ["UpdateOutcome", "IncrementalChecker"]


@dataclass
class UpdateOutcome:
    """Result of one attempted update.

    Attributes
    ----------
    report:
        The violations that would have arisen (empty when applied).
    cost:
        Entries touched by the incremental checks — the work measure the
        FIG5 benchmark compares against full re-checking.
    checks:
        Human-readable descriptions of the checks that actually ran
        (skip rows are recorded as ``"skip: ..."``).
    stats:
        Per-transaction :class:`~repro.legality.metrics.CheckStats`
        delta, attached by :meth:`repro.store.journal.DirectoryStore.apply`
        (``None`` for outcomes produced outside a store commit).
    """

    report: LegalityReport = field(default_factory=LegalityReport)
    cost: int = 0
    checks: List[str] = field(default_factory=list)
    stats: Optional["CheckStats"] = None

    @property
    def applied(self) -> bool:
        """Whether the update was kept (no violations)."""
        return self.report.is_legal


class IncrementalChecker:
    """Maintains a legal instance under subtree updates.

    Parameters
    ----------
    schema:
        The bounding-schema; its structure elements are compiled to
        Δ-queries once at construction.
    instance:
        The instance to guard.  Unless ``assume_legal`` is true it is
        fully checked once up front.
    session:
        An optional :class:`~repro.legality.engine.CheckSession` to
        route per-entry content checks through.  The checker feeds every
        Δ it vets into the session's fingerprint cache, so a subsequent
        :meth:`recheck` re-runs content checks only on content the
        session has not seen — cost O(|Δ|), not O(|D|).  When ``None``
        a private sequential session is created.
    """

    def __init__(
        self,
        schema: DirectorySchema,
        instance: DirectoryInstance,
        assume_legal: bool = False,
        session: Optional[CheckSession] = None,
    ) -> None:
        self.schema = schema
        self.instance = instance
        self.session = session if session is not None else CheckSession(schema)
        # The sequential content checker backing the session — kept as an
        # attribute for cold (unmemoized) baselines like full_recheck().
        self.content = self.session.content
        self.structure = QueryStructureChecker(schema.structure_schema)
        self.relationships = schema.structure_schema.relationship_elements()
        if not assume_legal:
            # Route the baseline through the session: it both vets the
            # starting instance and warms the fingerprint cache, so the
            # first incremental step already re-checks only its Δ.
            baseline = LegalityReport()
            for entry in instance:
                baseline.extend(self.session.check_entry(entry))
            baseline.extend(self.structure.check(instance).violations)
            if not baseline.is_legal:
                raise UpdateError(
                    "instance is not legal to begin with:\n" + str(baseline)
                )

    # ------------------------------------------------------------------
    # insertions
    # ------------------------------------------------------------------
    def try_insert(
        self,
        parent: Optional[Union[DN, str]],
        delta: DirectoryInstance,
    ) -> UpdateOutcome:
        """Graft ``delta`` under ``parent`` if that preserves legality.

        On violation the graft is rolled back and the outcome's report
        explains why.
        """
        outcome = UpdateOutcome()

        # Content schema: Δ checked in isolation suffices (Section 4.2).
        # Going through the session memoizes the verdicts: Δ's
        # fingerprints stay valid after the graft (fingerprints are
        # position-independent), so later session re-checks skip Δ.
        for entry in delta:
            outcome.report.extend(self.session.check_entry(entry))
        outcome.cost += len(delta)
        outcome.checks.append(f"content check of Δ ({len(delta)} entries)")
        if not outcome.report.is_legal:
            return outcome

        parent_key = None if parent is None else str(parent)
        created = self.instance.insert_subtree(parent_key, delta)
        delta_ids: Set[int] = {entry.eid for entry in created}
        scopes = {
            SCOPE_DELTA: delta_ids,
            SCOPE_NEW: self.instance.all_entry_id_set(),
            SCOPE_OLD: self.instance.all_entry_id_set() - delta_ids,
            SCOPE_EMPTY: set(),
        }
        evaluator = QueryEvaluator(self.instance, scopes)

        for element in self.relationships:
            query = build_delta_query(element, "insert")
            assert query is not None  # every insert row is incremental
            offenders = evaluator.evaluate(query)
            outcome.checks.append(f"Δ-query for {element}: {query}")
            if offenders:
                self._report_structural(outcome.report, element, offenders)
        outcome.cost += evaluator.cost
        self.session.stats.queries_evaluated += evaluator.cost
        # Required classes: insertion can only help (no check, Section 4).
        outcome.checks.append("skip: required classes cannot be violated by insertion")

        if not outcome.report.is_legal:
            # Roll back: prune each grafted root.
            for root in self._delta_roots(created, delta_ids):
                self.instance.delete_subtree(root)
        return outcome

    # ------------------------------------------------------------------
    # deletions
    # ------------------------------------------------------------------
    def try_delete(self, root: Union[DN, str]) -> UpdateOutcome:
        """Prune the subtree at ``root`` if that preserves legality.

        On violation the subtree is re-inserted where it was.
        """
        outcome = UpdateOutcome()
        root_entry = self.instance.entry(str(root) if isinstance(root, DN) else root)
        parent = self.instance.parent_of(root_entry)
        parent_dn = None if parent is None else str(parent.dn)
        removed = self.instance.delete_subtree(root_entry)
        outcome.cost += len(removed)
        outcome.checks.append("content: deletion cannot violate the content schema")

        evaluator = QueryEvaluator(self.instance)
        for element in self.relationships:
            rule = rule_for(element, "delete")
            if rule.needs_no_check:
                outcome.checks.append(f"skip: {element} (∅-scoped row)")
                continue
            # ROADMAP short-circuit for the non-incremental rows: a
            # required child/descendant element is vacuously satisfied
            # when no source-class entry remains, and the class-count
            # index answers that in O(1) — no full re-check needed.
            if (
                rule.needs_full_recheck
                and isinstance(element, RequiredEdge)
                and self.instance.class_count(element.source) == 0
            ):
                outcome.cost += 1
                outcome.checks.append(
                    f"skip: {element} (class-count short-circuit: no "
                    f"{element.source!r} entries remain)"
                )
                continue
            query = build_delta_query(element, "delete")
            assert query is not None
            offenders = evaluator.evaluate(query)
            outcome.checks.append(f"full re-check for {element} on D−Δ")
            if offenders:
                self._report_structural(outcome.report, element, offenders)
        outcome.cost += evaluator.cost
        self.session.stats.queries_evaluated += evaluator.cost

        # Counted required-class test (end of Section 4).
        for name in sorted(self.schema.structure_schema.required_classes):
            outcome.cost += 1
            if self.instance.class_count(name) == 0:
                outcome.report.add(
                    Violation(
                        Kind.MISSING_REQUIRED_CLASS,
                        f"deleting the subtree removes the last entry of "
                        f"required class {name!r}",
                        element=f"{name} □",
                    )
                )
        outcome.checks.append("counted required-class test")

        if not outcome.report.is_legal:
            self.instance.insert_subtree(parent_dn, removed)
        return outcome

    # ------------------------------------------------------------------
    # move / rename (LDAP modrdn, expressed through Theorem 4.1)
    # ------------------------------------------------------------------
    def try_move(
        self,
        target: Union[DN, str],
        new_parent: Optional[Union[DN, str]] = None,
        new_rdn: Optional[str] = None,
    ) -> UpdateOutcome:
        """Move and/or rename a subtree, preserving legality.

        LDAP's ``modrdn``/``moddn`` operation is, in the paper's terms,
        a subtree deletion followed by a subtree insertion of the same
        content (Theorem 4.1 grants the decomposition) — except that the
        *intermediate* state need not be legal: the paper's modularity
        argument applies to the transaction as a whole, so this method
        checks the final state.  Mechanically: prune, optionally rename
        the root, graft at the destination, then run the Figure 5
        insertion checks for the grafted subtree *plus* the deletion
        checks for the vacated position — and roll the whole move back
        on any violation.

        Raises
        ------
        UpdateError
            If the destination lies inside the moved subtree.
        """
        outcome = UpdateOutcome()
        entry = self.instance.entry(str(target) if isinstance(target, DN) else target)
        old_parent = self.instance.parent_of(entry)
        old_parent_dn = None if old_parent is None else str(old_parent.dn)
        destination = (
            old_parent_dn
            if new_parent is None
            else (str(new_parent) if isinstance(new_parent, DN) else new_parent)
        )
        if destination is not None:
            dest_entry = self.instance.find(destination)
            if dest_entry is None:
                raise UpdateError(f"destination {destination!r} does not exist")
            if dest_entry.eid == entry.eid or self.instance.is_ancestor(
                entry, dest_entry
            ):
                raise UpdateError(
                    "destination lies inside the moved subtree"
                )

        removed = self.instance.delete_subtree(entry)
        if new_rdn is not None:
            from repro.model.dn import parse_rdn

            removed.roots()[0].rdn = parse_rdn(new_rdn)
        try:
            created = self.instance.insert_subtree(destination, removed)
        except Exception as exc:
            # e.g. duplicate DN at the destination: restore and report
            self.instance.insert_subtree(old_parent_dn, removed)
            raise UpdateError(f"move failed: {exc}") from exc

        # Insertion-side checks (content is unchanged by construction,
        # but the rename may matter to nothing; structure does).
        delta_ids = {e.eid for e in created}
        scopes = {
            SCOPE_DELTA: delta_ids,
            SCOPE_NEW: self.instance.all_entry_id_set(),
            SCOPE_OLD: self.instance.all_entry_id_set() - delta_ids,
            SCOPE_EMPTY: set(),
        }
        evaluator = QueryEvaluator(self.instance, scopes)
        for element in self.relationships:
            query = build_delta_query(element, "insert")
            assert query is not None
            offenders = evaluator.evaluate(query)
            if offenders:
                self._report_structural(outcome.report, element, offenders)
        # Deletion-side checks for the vacated position: required
        # child/descendant elements may have lost their witness.
        for element in self.relationships:
            rule = rule_for(element, "delete")
            if rule.needs_no_check:
                continue
            if (
                rule.needs_full_recheck
                and isinstance(element, RequiredEdge)
                and self.instance.class_count(element.source) == 0
            ):
                outcome.cost += 1
                continue
            query = build_delta_query(element, "delete")
            assert query is not None
            offenders = evaluator.evaluate(query) - delta_ids
            offenders = {
                eid for eid in offenders
                if eid in self.instance.all_entry_id_set()
            }
            if offenders:
                self._report_structural(outcome.report, element, offenders)
        outcome.cost += evaluator.cost
        self.session.stats.queries_evaluated += evaluator.cost
        outcome.checks.append(
            "move: Figure 5 insertion checks at the destination plus "
            "deletion checks for the vacated position"
        )

        if not outcome.report.is_legal:
            # Roll back: prune from destination, restore at the origin.
            restored = self.instance.delete_subtree(created[0])
            if new_rdn is not None:
                restored.roots()[0].rdn = entry.rdn
            self.instance.insert_subtree(old_parent_dn, restored)
        return outcome

    # ------------------------------------------------------------------
    # modification (an extension beyond Figure 5 — see DESIGN.md §7)
    # ------------------------------------------------------------------
    def try_modify(
        self,
        target: Union[DN, str],
        add_classes: Sequence[str] = (),
        remove_classes: Sequence[str] = (),
        replace_attributes: Optional[dict] = None,
    ) -> UpdateOutcome:
        """Modify one entry in place, incrementally re-checking legality;
        rolls the modification back on violation.

        The paper's update model covers entry insertion/deletion only;
        the incremental rules here are derived the same way Figure 5's
        rows are:

        * attribute changes → re-run the per-entry *content* check only
          (content legality is per-entry, Section 3.1);
        * **added** classes → the entry is the only possible new violator
          of required edges sourced at those classes, and the only new
          endpoint of forbidden pairs — all checkable with Δ = {entry};
        * **removed** classes → other entries may have relied on this
          entry as their required relative, so every required edge whose
          *target* involves a removed class is re-checked in full (the
          analogue of Figure 5's non-incremental deletion rows), plus
          the counted required-class test.
        """
        outcome = UpdateOutcome()
        entry = self.instance.entry(str(target) if isinstance(target, DN) else target)

        # Snapshot for rollback.
        old_classes = set(entry.classes)
        old_attributes = {
            name: list(entry.values(name))
            for name in entry.attribute_names()
            if name != "objectClass"
        }

        def rollback() -> None:
            for name in list(entry.attribute_names()):
                if name != "objectClass":
                    entry.replace_values(name, old_attributes.get(name, []))
            for name, values in old_attributes.items():
                if not entry.has_attribute(name):
                    entry.replace_values(name, values)
            for cls in list(entry.classes - old_classes):
                entry.remove_class(cls)
            for cls in old_classes - entry.classes:
                entry.add_class(cls)

        # Apply.
        for cls in add_classes:
            entry.add_class(cls)
        for cls in remove_classes:
            entry.remove_class(cls)
        for name, values in (replace_attributes or {}).items():
            entry.replace_values(name, values)

        # Content: per-entry, always sufficient (Section 3.1); memoized
        # through the session like every other content verdict.
        outcome.report.extend(self.session.check_entry(entry))
        outcome.cost += 1
        outcome.checks.append("content check of the modified entry")

        added = set(add_classes) - old_classes
        removed = set(remove_classes) & old_classes
        delta_ids = {entry.eid}
        scopes = {
            SCOPE_DELTA: delta_ids,
            SCOPE_NEW: self.instance.all_entry_id_set(),
            SCOPE_OLD: self.instance.all_entry_id_set() - delta_ids,
            SCOPE_EMPTY: set(),
        }
        evaluator = QueryEvaluator(self.instance, scopes)

        if outcome.report.is_legal and (added or removed):
            from repro.query.translate import class_selection
            from repro.query.ast import HSelect, Minus

            for element in self.relationships:
                if isinstance(element, RequiredEdge):
                    if element.source in added:
                        # only the modified entry can newly violate
                        source = class_selection(element.source).scoped(SCOPE_DELTA)
                        target_sel = class_selection(element.target).scoped(SCOPE_NEW)
                        query = Minus(source, HSelect(element.axis, source, target_sel))
                        offenders = evaluator.evaluate(query)
                        outcome.checks.append(
                            f"Δ-check for {element} (class added): {query}"
                        )
                        if offenders:
                            self._report_structural(outcome.report, element, offenders)
                    if element.target in removed:
                        # others may have relied on this entry: full pass
                        check = translate_element(element)
                        offenders = evaluator.evaluate(check.query)
                        outcome.checks.append(
                            f"full re-check for {element} (target class removed)"
                        )
                        if offenders:
                            self._report_structural(outcome.report, element, offenders)
                else:
                    assert isinstance(element, ForbiddenEdge)
                    if element.source in added:
                        query = HSelect(
                            element.axis,
                            class_selection(element.source).scoped(SCOPE_DELTA),
                            class_selection(element.target).scoped(SCOPE_NEW),
                        )
                        offenders = evaluator.evaluate(query)
                        outcome.checks.append(
                            f"Δ-check for {element} (source class added)"
                        )
                        if offenders:
                            self._report_structural(outcome.report, element, offenders)
                    if element.target in added:
                        query = HSelect(
                            element.axis,
                            class_selection(element.source).scoped(SCOPE_NEW),
                            class_selection(element.target).scoped(SCOPE_DELTA),
                        )
                        offenders = evaluator.evaluate(query)
                        outcome.checks.append(
                            f"Δ-check for {element} (target class added)"
                        )
                        if offenders:
                            self._report_structural(outcome.report, element, offenders)
            outcome.cost += evaluator.cost
            self.session.stats.queries_evaluated += evaluator.cost
            # Counted required-class test for removals.
            for name in sorted(self.schema.structure_schema.required_classes):
                if name in removed and self.instance.class_count(name) == 0:
                    outcome.report.add(
                        Violation(
                            Kind.MISSING_REQUIRED_CLASS,
                            f"modification removes the last entry of "
                            f"required class {name!r}",
                            element=f"{name} □",
                        )
                    )
            outcome.checks.append("counted required-class test")

        if not outcome.report.is_legal:
            rollback()
        return outcome

    # ------------------------------------------------------------------
    # transactions (Theorem 4.1)
    # ------------------------------------------------------------------
    def apply_transaction(self, transaction: UpdateTransaction) -> UpdateOutcome:
        """Run a whole transaction: decompose into subtree updates
        (insertions first, then deletions), check each step, and roll
        back every applied step if any step fails."""
        outcome = UpdateOutcome()
        steps = decompose(transaction, self.instance)
        undo: List[SubtreeUpdate] = []
        try:
            return self._apply_steps(steps, undo, outcome)
        except Exception:
            # A step *raised* (rather than reporting a violation):
            # without this rollback the earlier steps would stay
            # applied, leaving the instance in a state no committed
            # transaction ever produced.
            self._undo(undo)
            raise

    def _apply_steps(
        self,
        steps: List[SubtreeUpdate],
        undo: List[SubtreeUpdate],
        outcome: UpdateOutcome,
    ) -> UpdateOutcome:
        for step in steps:
            if step.kind == "insert":
                assert step.subtree is not None
                parent = None if step.parent_dn is None else str(step.parent_dn)
                step_outcome = self.try_insert(parent, step.subtree)
                if step_outcome.applied:
                    root_dns = [
                        step.subtree.dn_of(r) for r in step.subtree.root_ids()
                    ]
                    base = step.parent_dn
                    for dn in root_dns:
                        full = DN(dn.rdns + (base.rdns if base else ()))
                        undo.append(SubtreeUpdate("delete", root_dn=full))
            else:
                assert step.root_dn is not None
                entry = self.instance.entry(str(step.root_dn))
                parent = self.instance.parent_of(entry)
                parent_dn = None if parent is None else parent.dn
                snapshot = self.instance.extract_subtree(entry)
                step_outcome = self.try_delete(step.root_dn)
                if step_outcome.applied:
                    undo.append(
                        SubtreeUpdate(
                            "insert", parent_dn=parent_dn, subtree=snapshot
                        )
                    )
            outcome.cost += step_outcome.cost
            outcome.checks.extend(f"[{step}] {c}" for c in step_outcome.checks)
            if not step_outcome.applied:
                outcome.report.extend(step_outcome.report.violations)
                self._undo(undo)
                return outcome
        return outcome

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _undo(self, undo: List[SubtreeUpdate]) -> None:
        for step in reversed(undo):
            if step.kind == "delete":
                assert step.root_dn is not None
                self.instance.delete_subtree(str(step.root_dn))
            else:
                assert step.subtree is not None
                parent = None if step.parent_dn is None else str(step.parent_dn)
                self.instance.insert_subtree(parent, step.subtree)

    def _delta_roots(self, created, delta_ids: Set[int]):
        roots = []
        for entry in created:
            parent = self.instance.parent_id(entry.eid)
            if parent is None or parent not in delta_ids:
                roots.append(entry.eid)
        return roots

    def _report_structural(
        self, report: LegalityReport, element, offenders: Set[int]
    ) -> None:
        kind = (
            Kind.REQUIRED_RELATIONSHIP
            if isinstance(element, RequiredEdge)
            else Kind.FORBIDDEN_RELATIONSHIP
        )
        assert isinstance(element, (RequiredEdge, ForbiddenEdge))
        for eid in sorted(offenders)[:5]:
            report.add(
                Violation(
                    kind,
                    f"update violates {element}",
                    dn=str(self.instance.dn_of(eid)),
                    element=str(element),
                )
            )
        if len(offenders) > 5:
            report.add(
                Violation(
                    kind,
                    f"... and {len(offenders) - 5} more entries violate {element}",
                    element=str(element),
                )
            )

    # ------------------------------------------------------------------
    # comparison baseline
    # ------------------------------------------------------------------
    def full_recheck(self) -> LegalityReport:
        """Non-incremental full legality check of the current instance —
        the *cold* baseline the FIG5 benchmark compares against (the
        session's fingerprint cache is deliberately bypassed)."""
        report = self.content.check(self.instance)
        report.extend(self.structure.check(self.instance).violations)
        return report

    def recheck(self) -> LegalityReport:
        """Warm full re-check through the session.

        Content verdicts for every entry whose fingerprint the session
        has already seen — the whole instance minus the dirty set — come
        from the cache, so the content work is O(|Δ|).  The returned
        report carries the session's :class:`CheckStats` for this call
        under ``report.stats`` (``entries_checked`` is the dirty-set
        size the benchmark gates assert on).
        """
        return self.session.check(self.instance)
