"""Figure 5 as executable data: Δ-query expressions per relationship form.

Figure 5 of the paper lists, for each of the six structural-relationship
forms and each update kind (subtree insertion / subtree deletion):

* whether the form is *incrementally testable* (Theorem 4.2), and
* the Δ-query — the Figure 4 query with each sub-expression re-scoped to
  one of ``∅``, ``Δ``, ``D``, or the updated instance.

This module encodes that table row by row.  The tests assert the table
against the paper (test_fig5_table) and against semantics: for every row,
the Δ-query verdict on a legal ``D`` equals the full re-check verdict.

Row derivations (insertions of a subtree ``Δ`` into a legal ``D``):

``ci → cj``   (required child)
    Existing entries only *gain* children, so only Δ-entries can violate;
    a Δ-entry's children all lie inside Δ.  Query: all three
    sub-expressions scoped to ``Δ``.
``cj ← ci``   (required parent)
    Only Δ-entries can violate; the Δ-roots' parents live in ``D``, so
    the inner parent test runs on ``D + Δ``.
``ci →→ cj``  (required descendant)
    As required child — a Δ-entry's descendants all lie inside Δ
    (this is the ``Q1`` example worked in Section 4.2).
``cj ←← ci``  (required ancestor)
    As required parent — ancestors of Δ-entries span ``D + Δ``.
``ci ↛ cj``   (forbidden child)
    Every *new* (parent, child) pair has its child in Δ; the parent may
    be the attachment point in ``D``.  Query: ``(c (oc=ci)[D+Δ]
    (oc=cj)[Δ])``.
``ci ↛↛ cj``  (forbidden descendant)
    Same with the descendant axis.

Deletions of a subtree ``Δ`` from a legal ``D``:

``ci → cj``, ``ci →→ cj``
    *Not incrementally testable*: removing a subtree can remove a
    remaining entry's last required child/descendant — the Figure 4 query
    must be re-evaluated on all of ``D - Δ``.
``cj ← ci``, ``cj ←← ci``
    No check (``∅`` scopes): a deleted subtree contains all of its own
    descendants, so no surviving entry loses a parent or ancestor.
``ci ↛ cj``, ``ci ↛↛ cj``
    No check: deletion never creates pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

from repro.axes import Axis
from repro.query.ast import (
    SCOPE_DELTA,
    SCOPE_EMPTY,
    SCOPE_NEW,
    HSelect,
    Minus,
    Query,
)
from repro.query.translate import class_selection
from repro.schema.elements import ForbiddenEdge, RequiredEdge, SchemaElement

__all__ = ["DeltaRule", "DELTA_TABLE", "rule_for", "build_delta_query"]

Operation = Literal["insert", "delete"]

#: Scope plan: (outer-atom scope, inner-atom scope) for required edges,
#: (source scope, target scope) for forbidden edges.  ``None`` marks a
#: non-incremental row (full re-check on the updated instance) and
#: ``"skip"`` a row needing no check at all.
_SKIP = "skip"
_FULL = "full"


@dataclass(frozen=True)
class DeltaRule:
    """One row of Figure 5.

    Attributes
    ----------
    axis, forbidden:
        Identify the relationship form.
    operation:
        ``"insert"`` or ``"delete"``.
    incremental:
        The Theorem 4.2 verdict for this row.
    plan:
        ``"skip"`` (no check needed — the ``∅``-scoped rows),
        ``"full"`` (re-evaluate the Figure 4 query on the updated
        instance), or a pair of scope labels for the two atomic
        selections of the Δ-query.
    """

    axis: Axis
    forbidden: bool
    operation: Operation
    incremental: bool
    plan: object

    @property
    def needs_no_check(self) -> bool:
        """Whether this row's Δ-query is trivially empty (``∅`` scopes)."""
        return self.plan == _SKIP

    @property
    def needs_full_recheck(self) -> bool:
        """Whether this row falls back to evaluating on ``D ∓ Δ``."""
        return self.plan == _FULL


_ROWS: Tuple[DeltaRule, ...] = (
    # --- insertions: every form is incrementally testable -------------
    DeltaRule(Axis.CHILD, False, "insert", True, (SCOPE_DELTA, SCOPE_DELTA)),
    DeltaRule(Axis.PARENT, False, "insert", True, (SCOPE_DELTA, SCOPE_NEW)),
    DeltaRule(Axis.DESCENDANT, False, "insert", True, (SCOPE_DELTA, SCOPE_DELTA)),
    DeltaRule(Axis.ANCESTOR, False, "insert", True, (SCOPE_DELTA, SCOPE_NEW)),
    DeltaRule(Axis.CHILD, True, "insert", True, (SCOPE_NEW, SCOPE_DELTA)),
    DeltaRule(Axis.DESCENDANT, True, "insert", True, (SCOPE_NEW, SCOPE_DELTA)),
    # --- deletions -----------------------------------------------------
    DeltaRule(Axis.CHILD, False, "delete", False, _FULL),
    DeltaRule(Axis.PARENT, False, "delete", True, _SKIP),
    DeltaRule(Axis.DESCENDANT, False, "delete", False, _FULL),
    DeltaRule(Axis.ANCESTOR, False, "delete", True, _SKIP),
    DeltaRule(Axis.CHILD, True, "delete", True, _SKIP),
    DeltaRule(Axis.DESCENDANT, True, "delete", True, _SKIP),
)

#: Figure 5 indexed by (axis, forbidden, operation).
DELTA_TABLE: Dict[Tuple[Axis, bool, Operation], DeltaRule] = {
    (row.axis, row.forbidden, row.operation): row for row in _ROWS
}


def rule_for(element: SchemaElement, operation: Operation) -> DeltaRule:
    """The Figure 5 row governing ``element`` under ``operation``.

    Raises
    ------
    KeyError
        If ``element`` is not a structural-relationship element.
    """
    if isinstance(element, RequiredEdge):
        return DELTA_TABLE[(element.axis, False, operation)]
    if isinstance(element, ForbiddenEdge):
        return DELTA_TABLE[(element.axis, True, operation)]
    raise KeyError(f"{element} has no Figure 5 row")


def build_delta_query(element: SchemaElement, operation: Operation) -> Optional[Query]:
    """Build the scoped Δ-query for ``element`` under ``operation``.

    Returns ``None`` for ``skip`` rows (no check needed).  For ``full``
    rows, returns the plain Figure 4 query (to be evaluated on the
    updated instance).  Otherwise returns the Figure 4 query shape with
    the row's scopes attached to its atomic selections.
    """
    rule = rule_for(element, operation)
    if rule.needs_no_check:
        return None

    if isinstance(element, RequiredEdge):
        if rule.needs_full_recheck:
            source = class_selection(element.source)
            return Minus(source, HSelect(element.axis, source, class_selection(element.target)))
        outer_scope, inner_scope = rule.plan  # type: ignore[misc]
        source = class_selection(element.source).scoped(outer_scope)
        target = class_selection(element.target).scoped(inner_scope)
        return Minus(source, HSelect(element.axis, source, target))

    assert isinstance(element, ForbiddenEdge)
    if rule.needs_full_recheck:  # pragma: no cover - no such row exists
        return HSelect(
            element.axis,
            class_selection(element.source),
            class_selection(element.target),
        )
    source_scope, target_scope = rule.plan  # type: ignore[misc]
    return HSelect(
        element.axis,
        class_selection(element.source).scoped(source_scope),
        class_selection(element.target).scoped(target_scope),
    )


def empty_scoped_query(element: SchemaElement) -> Query:
    """The ``∅``-scoped Δ-query of a ``skip`` row, for display/printing
    parity with Figure 5 (never worth evaluating)."""
    if isinstance(element, RequiredEdge):
        source = class_selection(element.source).scoped(SCOPE_EMPTY)
        target = class_selection(element.target).scoped(SCOPE_EMPTY)
        return Minus(source, HSelect(element.axis, source, target))
    assert isinstance(element, ForbiddenEdge)
    return HSelect(
        element.axis,
        class_selection(element.source).scoped(SCOPE_EMPTY),
        class_selection(element.target).scoped(SCOPE_EMPTY),
    )
