"""LDIF parsing (RFC 2849 content records).

The paper's experiments presume LDAP tooling for loading directory data;
since no LDAP stack is available offline, this module implements the LDIF
content format directly: ``dn:`` lines, ``attribute: value`` lines, base64
values (``::``), line continuations (a leading space), comments (``#``), and
an optional ``version:`` header.

Records are assembled into a :class:`~repro.model.instance.DirectoryInstance`
by sorting on DN depth so parents are created before children; a record
whose parent DN is absent becomes an error (matching LDAP server behaviour).
"""

from __future__ import annotations

import base64
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import LdifError
from repro.model.attributes import OBJECT_CLASS, AttributeRegistry
from repro.model.dn import DN, parse_dn
from repro.model.instance import DirectoryInstance

__all__ = ["LdifRecord", "parse_ldif_records", "parse_ldif", "load_ldif"]


class LdifRecord:
    """One parsed LDIF content record: a DN plus attribute lines."""

    __slots__ = ("dn", "attributes")

    def __init__(self, dn: DN, attributes: List[Tuple[str, str]]) -> None:
        self.dn = dn
        self.attributes = attributes

    def object_classes(self) -> List[str]:
        """The values of the ``objectClass`` attribute, in file order."""
        return [v for (a, v) in self.attributes if a == OBJECT_CLASS]

    def other_attributes(self) -> Dict[str, List[str]]:
        """All attributes except ``objectClass``, grouped by name."""
        grouped: Dict[str, List[str]] = {}
        for attribute, value in self.attributes:
            if attribute == OBJECT_CLASS:
                continue
            grouped.setdefault(attribute, []).append(value)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LdifRecord({self.dn!s}, {len(self.attributes)} lines)"


def _unfold(lines: Iterable[str]) -> Iterator[str]:
    """Join continuation lines (RFC 2849: a line starting with one space
    continues the previous line)."""
    current: Optional[str] = None
    for raw in lines:
        line = raw.rstrip("\n").rstrip("\r")
        if line.startswith(" "):
            if current is None:
                raise LdifError("continuation line with no preceding line")
            current += line[1:]
            continue
        if current is not None:
            yield current
        current = line
    if current is not None:
        yield current


def _parse_attribute_line(line: str) -> Tuple[str, str]:
    if line.strip() == "-":
        # clause separator inside a changetype:modify record (RFC 2849)
        return ("-", "")
    colon = line.find(":")
    if colon <= 0:
        raise LdifError(f"malformed LDIF line: {line!r}")
    name = line[:colon].strip()
    rest = line[colon + 1:]
    if rest.startswith(":"):
        encoded = rest[1:].strip()
        try:
            value = base64.b64decode(encoded, validate=True).decode("utf-8")
        except Exception as exc:
            raise LdifError(f"invalid base64 value in line {line!r}") from exc
    else:
        value = rest.strip()
    return name, value


def parse_ldif_records(text: str) -> List[LdifRecord]:
    """Parse LDIF text into a list of :class:`LdifRecord`.

    Raises
    ------
    LdifError
        On malformed lines, records without a leading ``dn:`` line, or
        invalid base64 payloads.
    """
    records: List[LdifRecord] = []
    block: List[str] = []

    def flush() -> None:
        if not block:
            return
        lines = [l for l in block if l and not l.startswith("#")]
        block.clear()
        if not lines:
            return
        if lines and lines[0].lower().startswith("version:"):
            lines = lines[1:]
            if not lines:
                return
        first, *rest = lines
        name, value = _parse_attribute_line(first)
        if name.lower() != "dn":
            raise LdifError(f"record does not start with a dn: line ({first!r})")
        attributes = [_parse_attribute_line(line) for line in rest]
        records.append(LdifRecord(parse_dn(value), attributes))

    for line in _unfold(text.splitlines()):
        if not line.strip():
            flush()
        else:
            block.append(line)
    flush()
    return records


def parse_ldif(
    text: str,
    attributes: Optional[AttributeRegistry] = None,
) -> DirectoryInstance:
    """Parse LDIF text directly into a :class:`DirectoryInstance`.

    Records may appear in any order; they are topologically sorted by DN
    depth before insertion.

    Raises
    ------
    LdifError
        If a record's parent DN does not occur in the document (and is not
        empty), or two records share a DN.
    """
    records = parse_ldif_records(text)
    instance = DirectoryInstance(attributes=attributes)
    for record in sorted(records, key=lambda r: r.dn.depth()):
        parent_dn = record.dn.parent()
        if parent_dn.is_empty():
            parent: Optional[str] = None
        else:
            if instance.find(parent_dn) is None:
                raise LdifError(
                    f"record {record.dn!s} has no parent record {parent_dn!s}"
                )
            parent = str(parent_dn)
        classes = record.object_classes()
        if not classes:
            raise LdifError(f"record {record.dn!s} has no objectClass values")
        values: Dict[str, List[Any]] = record.other_attributes()
        try:
            instance.add_entry(parent, record.dn.rdn, classes, values)
        except Exception as exc:
            raise LdifError(f"cannot add record {record.dn!s}: {exc}") from exc
    return instance


def load_ldif(path: str, attributes: Optional[AttributeRegistry] = None) -> DirectoryInstance:
    """Read an LDIF file from ``path`` into a :class:`DirectoryInstance`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_ldif(handle.read(), attributes=attributes)
