"""LDIF interchange (RFC 2849) for directory instances and updates."""

from repro.ldif.changes import (
    dump_changes,
    load_changes,
    parse_changes,
    serialize_changes,
)
from repro.ldif.modify import (
    ModifyOp,
    ModifyRecord,
    apply_modification,
    parse_modifications,
)
from repro.ldif.reader import LdifRecord, load_ldif, parse_ldif, parse_ldif_records
from repro.ldif.writer import dump_ldif, serialize_entry, serialize_ldif

__all__ = [
    "LdifRecord",
    "parse_ldif_records",
    "parse_ldif",
    "load_ldif",
    "serialize_entry",
    "serialize_ldif",
    "dump_ldif",
    "parse_changes",
    "load_changes",
    "serialize_changes",
    "dump_changes",
    "ModifyOp",
    "ModifyRecord",
    "parse_modifications",
    "apply_modification",
]
