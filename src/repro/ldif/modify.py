"""RFC 2849 ``changetype: modify`` records.

The paper's update model (Section 4.1) consists of entry insertions and
deletions; in-place modification is this library's extension
(:meth:`~repro.updates.incremental.IncrementalChecker.try_modify`).
This module parses the standard LDIF modify syntax into
:class:`ModifyRecord` objects and applies them through the incremental
checker::

    dn: uid=laks,ou=databases,ou=attLabs,o=att
    changetype: modify
    add: objectClass
    objectClass: facultyMember
    -
    replace: mail
    mail: laks@example.edu
    -
    delete: telephoneNumber
    -

Modify records are applied one at a time (each checked, each rolled
back individually on violation) — they are not part of the Theorem 4.1
subtree decomposition, which is defined for insertions/deletions only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import LdifError
from repro.ldif.reader import parse_ldif_records
from repro.model.attributes import OBJECT_CLASS
from repro.model.dn import DN
from repro.updates.incremental import IncrementalChecker, UpdateOutcome

__all__ = [
    "ModifyOp",
    "ModifyRecord",
    "RenameRecord",
    "parse_modifications",
    "serialize_modification",
    "apply_modification",
    "apply_modify_blind",
    "inverse_modification",
    "resolve_modification",
]


@dataclass(frozen=True)
class ModifyOp:
    """One ``add``/``delete``/``replace`` clause of a modify record."""

    op: str
    attribute: str
    values: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ModifyRecord:
    """One ``changetype: modify`` record."""

    dn: DN
    ops: Tuple[ModifyOp, ...]


@dataclass(frozen=True)
class RenameRecord:
    """One ``changetype: modrdn``/``moddn`` record (rename and/or
    move; ``deleteoldrdn`` is implicit in this data model — the RDN is
    naming, not an attribute value)."""

    dn: DN
    new_rdn: Optional[str] = None
    new_superior: Optional[str] = None


def _parse_modrdn(record) -> RenameRecord:
    fields = {}
    for name, value in record.attributes[1:]:
        if name == "-":
            continue
        key = name.lower()
        if key not in ("newrdn", "newsuperior", "deleteoldrdn"):
            raise LdifError(
                f"unexpected line {name!r} in modrdn record {record.dn}"
            )
        fields[key] = value.strip()
    if "newrdn" not in fields and "newsuperior" not in fields:
        raise LdifError(
            f"modrdn record {record.dn} needs newrdn and/or newsuperior"
        )
    return RenameRecord(
        record.dn,
        new_rdn=fields.get("newrdn"),
        new_superior=fields.get("newsuperior"),
    )


def parse_modifications(text: str) -> List:
    """Parse an LDIF document of ``modify`` and ``modrdn``/``moddn``
    records into :class:`ModifyRecord`/:class:`RenameRecord` objects.

    Raises
    ------
    LdifError
        If any record is not a well-formed modify/modrdn record.
    """
    records: List = []
    for record in parse_ldif_records(text):
        lines = list(record.attributes)
        if lines and lines[0][0] == "changetype" and lines[0][1] in (
            "modrdn", "moddn",
        ):
            records.append(_parse_modrdn(record))
            continue
        if not lines or lines[0] != ("changetype", "modify"):
            raise LdifError(f"record {record.dn} is not a modify record")
        ops: List[ModifyOp] = []
        current: Optional[Tuple[str, str]] = None
        values: List[str] = []
        for name, value in lines[1:]:
            if name == "-" or (name, value) == ("-", ""):
                continue  # separators survive as '-' pseudo-lines rarely
            if name in ("add", "delete", "replace"):
                if current is not None:
                    ops.append(ModifyOp(current[0], current[1], tuple(values)))
                current = (name, value.strip())
                values = []
            else:
                if current is None:
                    raise LdifError(
                        f"attribute line before any add/delete/replace "
                        f"clause in modify record {record.dn}"
                    )
                if name != current[1]:
                    raise LdifError(
                        f"modify record {record.dn}: clause targets "
                        f"{current[1]!r} but line names {name!r}"
                    )
                values.append(value)
        if current is not None:
            ops.append(ModifyOp(current[0], current[1], tuple(values)))
        if not ops:
            raise LdifError(f"modify record {record.dn} has no clauses")
        records.append(ModifyRecord(record.dn, tuple(ops)))
    return records


def serialize_modification(record: ModifyRecord) -> str:
    """Render one modify record as RFC 2849 LDIF —
    :func:`parse_modifications` is its inverse.  This is the journal
    payload format for in-place modifications
    (:meth:`repro.store.journal.DirectoryStore.modify`)."""
    from repro.ldif.writer import _attribute_line, _fold

    lines: List[str] = []
    lines.extend(_fold(_attribute_line("dn", str(record.dn))))
    lines.append("changetype: modify")
    for op in record.ops:
        lines.extend(_fold(_attribute_line(op.op, op.attribute)))
        for value in op.values:
            lines.extend(_fold(_attribute_line(op.attribute, value)))
        lines.append("-")
    return "\n".join(lines) + "\n"


def resolve_modification(instance, record: ModifyRecord):
    """Resolve a modify record's clauses against the current entry into
    ``(add_classes, remove_classes, replace_attributes)``.

    RFC semantics: ``add`` merges values, ``delete`` removes the named
    values (or all values when the clause has none), ``replace``
    substitutes the value set; ``objectClass`` clauses become class
    additions/removals (``replace`` on ``objectClass`` is rejected).
    """
    entry = instance.entry(str(record.dn))
    add_classes: List[str] = []
    remove_classes: List[str] = []
    replace_attributes = {}

    for op in record.ops:
        if op.attribute == OBJECT_CLASS:
            if op.op == "add":
                add_classes.extend(op.values)
            elif op.op == "delete":
                remove_classes.extend(op.values)
            else:
                raise LdifError(
                    "replace on objectClass is not supported; use "
                    "add/delete clauses"
                )
            continue
        current = list(
            replace_attributes.get(op.attribute, entry.values(op.attribute))
        )
        if op.op == "add":
            merged = current + [v for v in op.values if v not in current]
            replace_attributes[op.attribute] = merged
        elif op.op == "delete":
            if op.values:
                remaining = [v for v in current if v not in op.values]
            else:
                remaining = []
            replace_attributes[op.attribute] = remaining
        else:  # replace
            replace_attributes[op.attribute] = list(op.values)

    return add_classes, remove_classes, replace_attributes


def apply_modification(
    guard: IncrementalChecker, record
) -> UpdateOutcome:
    """Apply one modify or modrdn record through the incremental checker.

    Modify clauses are resolved by :func:`resolve_modification` and run
    through
    :meth:`~repro.updates.incremental.IncrementalChecker.try_modify`
    (rolled back on violation); modrdn records become guarded
    :meth:`~repro.updates.incremental.IncrementalChecker.try_move`
    calls.
    """
    if isinstance(record, RenameRecord):
        return guard.try_move(
            record.dn,
            new_parent=record.new_superior,
            new_rdn=record.new_rdn,
        )
    add_classes, remove_classes, replace_attributes = resolve_modification(
        guard.instance, record
    )
    return guard.try_modify(
        record.dn,
        add_classes=add_classes,
        remove_classes=remove_classes,
        replace_attributes=replace_attributes,
    )


def apply_modify_blind(instance, record: ModifyRecord) -> None:
    """Re-apply a committed modify record onto ``instance`` with no
    legality guard — the journal-replay analogue of
    :func:`repro.updates.transactions.apply_subtree_update` for
    insert/delete frames.  Only :class:`ModifyRecord` is journaled;
    modrdn stays a memory-only extension.
    """
    if not isinstance(record, ModifyRecord):
        raise LdifError(
            "only changetype: modify records are journaled; "
            f"cannot blind-apply {type(record).__name__}"
        )
    add_classes, remove_classes, replace_attributes = resolve_modification(
        instance, record
    )
    entry = instance.entry(str(record.dn))
    for cls in add_classes:
        entry.add_class(cls)
    for cls in remove_classes:
        entry.remove_class(cls)
    for name, values in replace_attributes.items():
        entry.replace_values(name, values)


def inverse_modification(instance, record: ModifyRecord) -> ModifyRecord:
    """The modify record that undoes ``record`` — computed against the
    *pre*-state, so it must be built before the forward record is
    applied.  Blind-applying the result restores every touched
    attribute to its prior value set and reverts class changes.

    The returned record may have zero clauses (a no-op forward modify);
    it is for :func:`apply_modify_blind` only, not for re-parsing.
    """
    entry = instance.entry(str(record.dn))
    add_classes, remove_classes, replace_attributes = resolve_modification(
        instance, record
    )
    ops: List[ModifyOp] = []
    added = [c for c in add_classes if c not in entry.classes]
    removed = [c for c in remove_classes if c in entry.classes]
    if added:
        ops.append(ModifyOp("delete", OBJECT_CLASS, tuple(added)))
    if removed:
        ops.append(ModifyOp("add", OBJECT_CLASS, tuple(removed)))
    for name in replace_attributes:
        prior = tuple(entry.values(name))
        ops.append(ModifyOp("replace", name, prior))
    return ModifyRecord(record.dn, tuple(ops))
