"""LDIF change records (RFC 2849 ``changetype``) as update transactions.

Real LDAP deployments ship updates as LDIF change records::

    dn: uid=nina,ou=theory,o=att
    changetype: add
    objectClass: person
    objectClass: top
    uid: nina
    name: nina novak

    dn: uid=armstrong,o=att
    changetype: delete

This module parses such documents into
:class:`~repro.updates.operations.UpdateTransaction` objects — the
Section 4.1 abstraction — so a changes file can be applied through the
incremental checker, and serializes transactions back to LDIF.  Only the
``add`` and ``delete`` changetypes exist in the paper's update model
(``modify``/``modrdn`` are rejected with a clear error).  Records
without a ``changetype`` default to ``add``, matching ``ldapmodify -a``.
"""

from __future__ import annotations

from typing import List

from repro.errors import LdifError
from repro.ldif.reader import LdifRecord, parse_ldif_records
from repro.ldif.writer import _attribute_line, _fold  # reuse encoding rules
from repro.updates.operations import (
    DeleteEntry,
    InsertEntry,
    UpdateTransaction,
)

__all__ = ["parse_changes", "load_changes", "serialize_changes", "dump_changes"]


def _record_to_operation(record: LdifRecord):
    changetype = "add"
    attributes = []
    for name, value in record.attributes:
        if name.lower() == "changetype":
            changetype = value.strip().lower()
        else:
            attributes.append((name, value))

    if changetype == "delete":
        if attributes:
            raise LdifError(
                f"delete record {record.dn} must not carry attributes"
            )
        return DeleteEntry(record.dn)
    if changetype != "add":
        raise LdifError(
            f"changetype {changetype!r} at {record.dn} is not part of the "
            "paper's update model (only add/delete)"
        )
    classes = [v for (a, v) in attributes if a == "objectClass"]
    if not classes:
        raise LdifError(f"add record {record.dn} has no objectClass values")
    values = {}
    for name, value in attributes:
        if name != "objectClass":
            values.setdefault(name, []).append(value)
    return InsertEntry.make(record.dn, classes, values)


def parse_changes(text: str) -> UpdateTransaction:
    """Parse an LDIF changes document into a transaction.

    Raises
    ------
    LdifError
        On unsupported changetypes, malformed records, or duplicate
        target DNs (the Section 4.1 distinctness requirement).
    """
    transaction = UpdateTransaction(
        [_record_to_operation(r) for r in parse_ldif_records(text)]
    )
    try:
        return transaction.validate()
    except Exception as exc:
        raise LdifError(str(exc)) from exc


def load_changes(path: str) -> UpdateTransaction:
    """Read an LDIF changes file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_changes(handle.read())


def serialize_changes(transaction: UpdateTransaction) -> str:
    """Render a transaction as an LDIF changes document."""
    blocks: List[str] = []
    for op in transaction:
        lines: List[str] = []
        lines.extend(_fold(_attribute_line("dn", str(op.dn))))
        if isinstance(op, DeleteEntry):
            lines.append("changetype: delete")
        else:
            lines.append("changetype: add")
            for object_class in op.classes:
                lines.extend(_fold(_attribute_line("objectClass", object_class)))
            for name, values in op.attributes:
                for value in values:
                    lines.extend(_fold(_attribute_line(name, value)))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def dump_changes(transaction: UpdateTransaction, path: str) -> None:
    """Write a transaction to ``path`` as LDIF changes."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize_changes(transaction))
