"""LDIF serialization (RFC 2849 content records).

Entries are emitted in document order (parents before children) so the
output round-trips through :func:`repro.ldif.reader.parse_ldif`.  Values
that are not safe as plain LDIF strings (non-ASCII, leading space/colon,
embedded newlines) are base64-encoded with the ``::`` separator; long lines
are folded at 76 characters per the RFC.
"""

from __future__ import annotations

import base64
from typing import Iterator, List

from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance

__all__ = ["serialize_entry", "serialize_ldif", "dump_ldif"]

_MAX_LINE = 76


def _is_safe_string(value: str) -> bool:
    if not value:
        return True
    if value[0] in (" ", ":", "<"):
        return False
    if value != value.strip():
        return False
    return all(32 <= ord(ch) < 127 for ch in value)


def _fold(line: str) -> Iterator[str]:
    if len(line) <= _MAX_LINE:
        yield line
        return
    yield line[:_MAX_LINE]
    rest = line[_MAX_LINE:]
    width = _MAX_LINE - 1
    for i in range(0, len(rest), width):
        yield " " + rest[i:i + width]


def _attribute_line(name: str, value: object) -> str:
    text = value if isinstance(value, str) else str(value)
    if _is_safe_string(text):
        return f"{name}: {text}"
    encoded = base64.b64encode(text.encode("utf-8")).decode("ascii")
    return f"{name}:: {encoded}"


def serialize_entry(entry: Entry) -> str:
    """Serialize one entry as an LDIF content record (without trailing
    blank line)."""
    lines: List[str] = []
    lines.extend(_fold(_attribute_line("dn", str(entry.dn))))
    for attribute, value in entry.pairs():
        lines.extend(_fold(_attribute_line(attribute, value)))
    return "\n".join(lines)


def serialize_ldif(instance: DirectoryInstance, include_version: bool = True) -> str:
    """Serialize a whole instance as an LDIF document."""
    parts: List[str] = []
    if include_version:
        parts.append("version: 1")
    for entry in instance:
        parts.append(serialize_entry(entry))
    return "\n\n".join(parts) + "\n"


def dump_ldif(instance: DirectoryInstance, path: str) -> None:
    """Write an instance to ``path`` as LDIF."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize_ldif(instance))
