"""Bounding-schemas for LDAP directories.

A faithful, from-scratch reproduction of *"On Bounding-Schemas for LDAP
Directories"* (Amer-Yahia, Jagadish, Lakshmanan, Srivastava; EDBT 2000):

* a directory data model (forests of multi-class, multi-valued entries),
* bounding-schemas — lower/upper bounds on content and structure,
* linear-time legality testing via hierarchical query reduction,
* incremental legality testing under subtree updates, and
* a polynomial-time schema-consistency decision procedure with witness
  synthesis.

Quickstart::

    from repro import (
        AttributeSchema, ClassSchema, StructureSchema, DirectorySchema,
        DirectoryInstance, LegalityChecker,
    )

    classes = ClassSchema().add_core("person").add_core("orgUnit")
    structure = StructureSchema().forbid_child("person", "top")
    schema = DirectorySchema(
        AttributeSchema().declare("person", required=("name", "uid")),
        classes,
        structure,
    ).validate()

    directory = DirectoryInstance()
    unit = directory.add_entry(None, "ou=labs", ["orgUnit", "top"])
    directory.add_entry(unit, "uid=amy", ["person", "top"],
                        {"name": ["Amy"], "uid": ["amy"]})

    report = LegalityChecker(schema).check(directory)
    assert report.is_legal
"""

from repro.axes import Axis
from repro.errors import (
    BoundingSchemaError,
    ConsistencyError,
    DslError,
    FilterSyntaxError,
    IllegalUpdateError,
    InconsistentSchemaError,
    LdifError,
    ModelError,
    QueryError,
    SchemaError,
    UpdateError,
)
from repro.legality import (
    ContentChecker,
    Kind,
    LegalityChecker,
    LegalityReport,
    NaiveStructureChecker,
    QueryStructureChecker,
    Violation,
)
from repro.ldif import dump_ldif, load_ldif, parse_ldif, serialize_ldif
from repro.model import (
    DN,
    OBJECT_CLASS,
    RDN,
    AttributeRegistry,
    DirectoryInstance,
    Entry,
    TypeRegistry,
    parse_dn,
    parse_rdn,
)
from repro.consistency import (
    ConsistencyChecker,
    ConsistencyResult,
    check_consistency,
    suggest_repairs,
    synthesize_witness,
)
from repro.query import (
    HSelect,
    Minus,
    Query,
    QueryEvaluator,
    SchemaAwareOptimizer,
    SearchScope,
    Select,
    TranslatedCheck,
    evaluate,
    parse_filter,
    parse_query,
    search,
    translate_element,
)
from repro.stats import InstanceStats, collect_stats
from repro.store import DirectoryStore
from repro.updates import (
    IncrementalChecker,
    UpdateOutcome,
    UpdateTransaction,
    decompose,
)
from repro.schema import (
    BOTTOM,
    EMPTY_CLASS,
    TOP,
    AttributeSchema,
    ClassSchema,
    DirectorySchema,
    Disjoint,
    EvolutionAnalyzer,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
    SchemaExtras,
    StructureSchema,
    Subclass,
    discover_schema,
)
from repro.schema.dsl import dump_dsl, load_dsl, parse_dsl, serialize_dsl

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # axes
    "Axis",
    # errors
    "BoundingSchemaError",
    "ModelError",
    "SchemaError",
    "QueryError",
    "FilterSyntaxError",
    "UpdateError",
    "IllegalUpdateError",
    "ConsistencyError",
    "InconsistentSchemaError",
    "LdifError",
    "DslError",
    # model
    "DirectoryInstance",
    "Entry",
    "DN",
    "RDN",
    "parse_dn",
    "parse_rdn",
    "AttributeRegistry",
    "TypeRegistry",
    "OBJECT_CLASS",
    # ldif
    "parse_ldif",
    "serialize_ldif",
    "load_ldif",
    "dump_ldif",
    # query
    "Query",
    "Select",
    "HSelect",
    "Minus",
    "QueryEvaluator",
    "evaluate",
    "parse_filter",
    "translate_element",
    "TranslatedCheck",
    # schema
    "AttributeSchema",
    "ClassSchema",
    "StructureSchema",
    "DirectorySchema",
    "SchemaExtras",
    "TOP",
    "EMPTY_CLASS",
    "BOTTOM",
    "SchemaElement",
    "RequiredClass",
    "RequiredEdge",
    "ForbiddenEdge",
    "Subclass",
    "Disjoint",
    # legality
    "LegalityChecker",
    "ContentChecker",
    "QueryStructureChecker",
    "NaiveStructureChecker",
    "LegalityReport",
    "Violation",
    "Kind",
    # updates
    "IncrementalChecker",
    "UpdateOutcome",
    "UpdateTransaction",
    "decompose",
    # consistency
    "ConsistencyChecker",
    "ConsistencyResult",
    "check_consistency",
    "synthesize_witness",
    "suggest_repairs",
    # query extensions
    "search",
    "SearchScope",
    "parse_query",
    "SchemaAwareOptimizer",
    # schema extensions
    "EvolutionAnalyzer",
    "discover_schema",
    "parse_dsl",
    "serialize_dsl",
    "load_dsl",
    "dump_dsl",
    # stats and storage
    "InstanceStats",
    "collect_stats",
    "DirectoryStore",
]
