"""Schema-consistency checking (Theorem 5.2).

:class:`ConsistencyChecker` packages the Section 5 procedure:

1. collect the element set ``Γ`` of the schema (structure elements plus
   the class-hierarchy elements);
2. close ``Γ`` under the Figures 6-7 inference rules;
3. the schema is consistent iff ``∅ □`` is not derived.

The result carries the closure, so callers can ask *why* a schema is
inconsistent (:meth:`ConsistencyResult.proof`) or which classes the
schema forces to stay empty — a useful lint even for consistent schemas.

With ``synthesize=True`` the checker additionally runs the constructive
backstop: for a ⊬-consistent schema it attempts to build a legal witness
instance (:mod:`repro.consistency.witness`), turning Theorem 5.2's
"there exists a legal instance" into an actual instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.consistency.engine import Closure, close
from repro.consistency.witness import WitnessSynthesisError, synthesize_witness
from repro.errors import InconsistentSchemaError
from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema

__all__ = ["ConsistencyResult", "ConsistencyChecker", "check_consistency"]


@dataclass
class ConsistencyResult:
    """Outcome of a consistency check.

    Attributes
    ----------
    consistent:
        The Theorem 5.2 verdict of the inference system.
    closure:
        The full deductive closure (for proofs and diagnostics).
    witness:
        A legal instance, when synthesis was requested and succeeded.
    witness_error:
        Why synthesis failed, when it was requested and did not succeed
        (the documented completeness backstop: a consistent-per-rules
        schema for which no witness could be constructed).
    """

    consistent: bool
    closure: Closure
    witness: Optional[DirectoryInstance] = None
    witness_error: Optional[str] = None

    def proof(self) -> Optional[str]:
        """The derivation of ``∅ □`` when inconsistent, else ``None``."""
        return self.closure.proof_of_inconsistency()

    def empty_classes(self) -> Set[str]:
        """Classes no legal instance can populate.  Non-empty sets on a
        *consistent* schema usually indicate a modelling bug worth
        surfacing to the schema author."""
        return self.closure.empty_classes()

    def __bool__(self) -> bool:
        return self.consistent


class ConsistencyChecker:
    """Decides consistency of bounding-schemas (Section 5)."""

    def __init__(self, schema: DirectorySchema) -> None:
        self.schema = schema

    def check(self, synthesize: bool = False) -> ConsistencyResult:
        """Run the inference procedure; optionally build a witness."""
        closure = close(
            self.schema.all_elements(),
            universe=self.schema.class_schema.core_classes(),
        )
        result = ConsistencyResult(consistent=closure.consistent, closure=closure)
        if synthesize and result.consistent:
            try:
                result.witness = synthesize_witness(self.schema, closure)
            except WitnessSynthesisError as exc:
                result.witness_error = str(exc)
        return result

    def require_consistent(self) -> Closure:
        """Raise :class:`InconsistentSchemaError` (with the proof) if the
        schema is inconsistent; otherwise return the closure."""
        result = self.check()
        if not result.consistent:
            raise InconsistentSchemaError(
                "schema is inconsistent:\n" + (result.proof() or "")
            )
        return result.closure


def check_consistency(
    schema: DirectorySchema, synthesize: bool = False
) -> ConsistencyResult:
    """Convenience wrapper around :class:`ConsistencyChecker`."""
    return ConsistencyChecker(schema).check(synthesize=synthesize)
