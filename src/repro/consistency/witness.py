"""Witness synthesis: building a legal instance for a consistent schema.

Theorem 5.2 asserts that a ⊬-consistent schema admits at least one legal
instance; this module makes that constructive.  Given the closure of the
schema's elements, :func:`synthesize_witness` builds a concrete
:class:`~repro.model.instance.DirectoryInstance` that the full
:class:`~repro.legality.checker.LegalityChecker` accepts — the result is
**verified before being returned**.

Construction strategy (demand-driven, with class deepening):

1. Every class in ``Cr`` gets a node.  A node is characterized by its
   most-specific core class; its entry will belong to that class's whole
   superclass chain (satisfying single inheritance by construction).
2. A worklist processes each node's *demands*, read off the closed
   required-edge facts of its most-specific class (closure already
   folded in inherited demands via the Source rules):

   * required parents: the node's parent is created or *deepened* to the
     most specific required parent class;
   * required ancestors: satisfied by an existing ancestor, by deepening
     one, or by stacking a new root above the tree;
   * required children/descendants: satisfied by existing children or
     subtree nodes, else a new child is created — inserting a plain
     ``top`` entry in between when a forbidden-child element blocks the
     direct edge but the descendant requirement stands.

   Deepening a node re-queues it, since a more specific class can carry
   more demands; depth of the class tree bounds the re-queues.
3. Entries receive synthesized values for every required attribute of
   every class on their chain (typed via the schema's registry, unique
   per entry so directory-wide keys hold).

The synthesizer is deliberately *best-effort*: schemas whose only
witnesses need constraint interactions beyond the closure's pairwise
reasoning raise :class:`WitnessSynthesisError` instead of looping — the
documented completeness backstop for the inference system.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.axes import Axis
from repro.consistency.engine import Closure
from repro.errors import BoundingSchemaError
from repro.model.instance import DirectoryInstance
from repro.schema.class_schema import TOP, ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import EMPTY_CLASS, ForbiddenEdge, RequiredEdge

__all__ = ["WitnessSynthesisError", "synthesize_witness"]


class WitnessSynthesisError(BoundingSchemaError):
    """Witness construction failed (schema may be unsatisfiable in a way
    the pairwise inference rules cannot derive, or needs backtracking
    search the synthesizer does not attempt)."""


class _Node:
    __slots__ = ("deepest", "parent", "children", "uid")
    _ids = itertools.count()

    def __init__(self, deepest: str, parent: Optional["_Node"] = None) -> None:
        self.deepest = deepest
        self.parent = parent
        self.children: List[_Node] = []
        self.uid = next(_Node._ids)
        if parent is not None:
            parent.children.append(self)

    def root(self) -> "_Node":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def subtree(self):
        yield self
        for child in self.children:
            yield from child.subtree()


class _Synthesizer:
    def __init__(self, schema: DirectorySchema, closure: Closure) -> None:
        self.schema = schema
        self.classes: ClassSchema = schema.class_schema
        self.closure = closure
        self.empties = closure.empty_classes()
        # Closed required/forbidden facts, indexed.
        self.req: Dict[Tuple[Axis, str], Set[str]] = {}
        self.forb: Set[Tuple[Axis, str, str]] = set()
        for fact in closure.facts:
            if isinstance(fact, RequiredEdge) and fact.target != EMPTY_CLASS:
                self.req.setdefault((fact.axis, fact.source), set()).add(fact.target)
            elif isinstance(fact, ForbiddenEdge):
                self.forb.add((fact.axis, fact.source, fact.target))
        self.roots: List[_Node] = []
        self.queue: List[_Node] = []
        self.node_budget = 10 * max(1, len(self.classes.core_classes())) + 50
        self.node_count = 0

    # ------------------------------------------------------------------
    # chain helpers
    # ------------------------------------------------------------------
    def chain(self, name: str) -> Tuple[str, ...]:
        return self.classes.superclasses(name)

    def chain_has(self, node: _Node, name: str) -> bool:
        return name in self.chain(node.deepest)

    def _pair_forbidden(self, axis: Axis, upper_chain, lower_chain) -> bool:
        for a in upper_chain:
            for b in lower_chain:
                if (axis, a, b) in self.forb:
                    return True
        return False

    def forbidden_between(self, axis: Axis, upper: "_Node | _Virtual", lower_class: str) -> bool:
        return self._pair_forbidden(
            axis, self.chain(upper.deepest), self.chain(lower_class)
        )

    def deepening_allowed(self, node: _Node, target: str) -> bool:
        """Whether retyping ``node`` to ``target`` keeps every existing
        edge of the construction free of forbidden elements."""
        new_chain = self.chain(target)
        for child in node.children:
            if self._pair_forbidden(Axis.CHILD, new_chain, self.chain(child.deepest)):
                return False
        for below in node.subtree():
            if below is not node and self._pair_forbidden(
                Axis.DESCENDANT, new_chain, self.chain(below.deepest)
            ):
                return False
        if node.parent is not None and self._pair_forbidden(
            Axis.CHILD, self.chain(node.parent.deepest), new_chain
        ):
            return False
        for upper in node.ancestors():
            if self._pair_forbidden(
                Axis.DESCENDANT, self.chain(upper.deepest), new_chain
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def new_node(self, deepest: str, parent: Optional[_Node] = None) -> _Node:
        if deepest in self.empties:
            raise WitnessSynthesisError(
                f"needed an entry of class {deepest!r}, which the closure "
                "proves must stay empty"
            )
        self.node_count += 1
        if self.node_count > self.node_budget:
            raise WitnessSynthesisError(
                "node budget exhausted — the schema's required edges do "
                "not converge under demand-driven construction"
            )
        node = _Node(deepest, parent)
        if parent is None:
            self.roots.append(node)
        self.queue.append(node)
        return node

    def deepen(self, node: _Node, name: str) -> None:
        if not self.try_deepen(node, name):
            if node.deepest not in self.chain(name):
                raise WitnessSynthesisError(
                    f"a single entry would need incomparable core classes "
                    f"{node.deepest!r} and {name!r}"
                )
            raise WitnessSynthesisError(
                f"retyping a {node.deepest!r} entry to {name!r} would "
                "violate a forbidden element on an existing edge"
            )

    def try_deepen(self, node: _Node, name: str) -> bool:
        """Retype ``node`` to class ``name`` when possible; returns
        whether the node now belongs to ``name``."""
        if self.chain_has(node, name):
            return True
        if node.deepest not in self.chain(name):
            return False
        if not self.deepening_allowed(node, name):
            return False
        if name in self.empties:
            raise WitnessSynthesisError(
                f"deepening forced class {name!r}, which must stay empty"
            )
        node.deepest = name
        self.queue.append(node)
        return True

    # ------------------------------------------------------------------
    # demand processing
    # ------------------------------------------------------------------
    def process(self, node: _Node) -> None:
        deepest = node.deepest
        self._satisfy_parent(node, sorted(self.req.get((Axis.PARENT, deepest), ())))
        self._satisfy_ancestors(node, sorted(self.req.get((Axis.ANCESTOR, deepest), ())))
        # Descendant demands run before child demands: a child created for
        # a specific descendant target usually also discharges the derived
        # ``→ch top`` demand (top-desc-child rule), keeping witnesses tidy.
        for target in sorted(self.req.get((Axis.DESCENDANT, deepest), ())):
            self._satisfy_descendant(node, target)
        for target in sorted(self.req.get((Axis.CHILD, deepest), ())):
            self._satisfy_child(node, target)

    def _satisfy_parent(self, node: _Node, targets: List[str]) -> None:
        if not targets:
            return
        deepest_parent = max(targets, key=lambda c: len(self.chain(c)))
        for other in targets:
            if other not in self.chain(deepest_parent):
                raise WitnessSynthesisError(
                    f"entry of {node.deepest!r} needs parents of incomparable "
                    f"classes {deepest_parent!r} and {other!r}"
                )
        if node.parent is None:
            if node in self.roots:
                self.roots.remove(node)
            parent = self.new_node(deepest_parent)
            parent.children.append(node)
            node.parent = parent
        else:
            self.deepen(node.parent, deepest_parent)

    def _satisfy_ancestors(self, node: _Node, targets: List[str]) -> None:
        for target in targets:
            if any(self.chain_has(a, target) for a in node.ancestors()):
                continue
            # Try deepening an existing ancestor (nearest first); a
            # deepening blocked by a forbidden element simply falls
            # through to stacking or splicing.
            placed = False
            for ancestor in node.ancestors():
                if self.try_deepen(ancestor, target):
                    placed = True
                    break
            if placed:
                continue
            # Preferred: stack a new root above the whole tree (changes
            # no existing parent/child relation).  Fallback: splice the
            # target between the node and its parent — needed when the
            # target may not dominate a sibling branch (a
            # forbidden-descendant element against the current root).
            if self._try_stack_root(node, target):
                continue
            if self._try_splice_above(node, target):
                continue
            raise WitnessSynthesisError(
                f"required ancestor {target!r} of {node.deepest!r} cannot "
                "be placed: forbidden elements block both stacking above "
                "the tree and splicing above the entry"
            )

    def _try_stack_root(self, node: _Node, target: str) -> bool:
        """Stack a new ``target`` root above the node's tree; returns
        whether the stacking happened."""
        old_root = node.root()
        virtual = _Virtual(target, self)
        for below in old_root.subtree():
            if self.forbidden_between(Axis.DESCENDANT, virtual, below.deepest):
                return False
        direct_blocked = self.forbidden_between(
            Axis.CHILD, virtual, old_root.deepest
        )
        if direct_blocked and (
            self.forbidden_between(Axis.CHILD, virtual, TOP)
            or self.forbidden_between(
                Axis.CHILD, _Virtual(TOP, self), old_root.deepest
            )
        ):
            return False
        if old_root in self.roots:
            self.roots.remove(old_root)
        new_root = self.new_node(target)
        if direct_blocked:
            # Link through a plain ``top`` spacer (as for descendants).
            middle = self.new_node(TOP, new_root)
            middle.children.append(old_root)
            old_root.parent = middle
        else:
            new_root.children.append(old_root)
            old_root.parent = new_root
        return True

    def _try_splice_above(self, node: _Node, target: str) -> bool:
        """Insert a new ``target`` entry between ``node`` and its parent
        when no forbidden element blocks any affected edge; returns
        whether the splice happened."""
        chain_t = self.chain(target)
        parent = node.parent
        if self._pair_forbidden(Axis.CHILD, chain_t, self.chain(node.deepest)):
            return False
        for below in node.subtree():
            if self._pair_forbidden(
                Axis.DESCENDANT, chain_t, self.chain(below.deepest)
            ):
                return False
        # The node's required-parent classes must survive: the spliced
        # entry becomes the new parent.
        for p in self.req.get((Axis.PARENT, node.deepest), ()):
            if p != EMPTY_CLASS and p not in chain_t:
                return False
        if parent is not None:
            if self._pair_forbidden(
                Axis.CHILD, self.chain(parent.deepest), chain_t
            ):
                return False
            for upper in [parent, *parent.ancestors()]:
                if self._pair_forbidden(
                    Axis.DESCENDANT, self.chain(upper.deepest), chain_t
                ):
                    return False
            # The parent's required-child witnesses must survive: if the
            # node was the only child providing some required class, the
            # spliced entry must provide it instead.
            node_chain = set(self.chain(node.deepest))
            for t in self.req.get((Axis.CHILD, parent.deepest), ()):
                if t == EMPTY_CLASS or t in chain_t:
                    continue
                if t in node_chain and not any(
                    sibling is not node and self.chain_has(sibling, t)
                    for sibling in parent.children
                ):
                    return False
        middle = self.new_node(target, parent)
        if parent is None:
            if node in self.roots:
                self.roots.remove(node)
        else:
            parent.children.remove(node)
        middle.children.append(node)
        node.parent = middle
        return True

    def _satisfy_child(self, node: _Node, target: str) -> None:
        if any(self.chain_has(c, target) for c in node.children):
            return
        if self.forbidden_between(Axis.CHILD, node, target):
            raise WitnessSynthesisError(
                f"{node.deepest!r} requires a {target!r} child that a "
                "forbidden-child element blocks (undetected inconsistency)"
            )
        self._check_desc_forbidden(node, target)
        self.new_node(target, node)

    def _satisfy_descendant(self, node: _Node, target: str) -> None:
        for below in node.subtree():
            if below is not node and self.chain_has(below, target):
                return
        self._check_desc_forbidden(node, target)

        # The target may demand a parent of a specific class; pick the
        # host for the new entry accordingly.
        parent_targets = sorted(
            t for t in self.req.get((Axis.PARENT, target), ()) if t != EMPTY_CLASS
        )
        host_class: Optional[str] = None
        if parent_targets:
            host_class = max(parent_targets, key=lambda c: len(self.chain(c)))
            for other in parent_targets:
                if other not in self.chain(host_class):
                    raise WitnessSynthesisError(
                        f"{target!r} needs parents of incomparable classes "
                        f"{host_class!r} and {other!r}"
                    )

        direct_ok = not self.forbidden_between(Axis.CHILD, node, target)
        if host_class is None or self.chain_has(node, host_class):
            if direct_ok:
                self.new_node(target, node)
                return
        elif direct_ok and self.try_deepen(node, host_class):
            self.new_node(target, node)
            return

        # Detour through an intermediate entry: the target's required
        # parent class when it has one, else a plain ``top`` entry.
        middle_class = host_class if host_class is not None else TOP
        self._check_desc_forbidden(node, middle_class)
        attach = node
        if self.forbidden_between(Axis.CHILD, node, middle_class):
            # A forbidden-child element blocks the direct edge; add a
            # plain ``top`` spacer (node → top → host → target).
            if self.forbidden_between(Axis.CHILD, node, TOP) or self._pair_forbidden(
                Axis.CHILD, self.chain(TOP), self.chain(middle_class)
            ):
                raise WitnessSynthesisError(
                    f"{node.deepest!r} requires a {target!r} descendant but a "
                    f"{middle_class!r} host cannot be placed below it "
                    "(forbidden-child elements block it at every spacing)"
                )
            attach = self.new_node(TOP, node)
        middle = self.new_node(middle_class, attach)
        if self.forbidden_between(Axis.CHILD, middle, target):
            raise WitnessSynthesisError(
                f"{target!r} cannot be placed under its required parent "
                f"class {middle_class!r} (forbidden-child element — "
                "undetected inconsistency)"
            )
        self.new_node(target, middle)

    def _check_desc_forbidden(self, node: _Node, target: str) -> None:
        for upper in [node, *node.ancestors()]:
            if self.forbidden_between(Axis.DESCENDANT, upper, target):
                raise WitnessSynthesisError(
                    f"placing a {target!r} entry below {node.deepest!r} would "
                    f"violate a forbidden-descendant element via "
                    f"{upper.deepest!r}"
                )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> List[_Node]:
        for name in sorted(self.schema.structure_schema.required_classes):
            if name in self.empties:
                raise WitnessSynthesisError(
                    f"required class {name!r} is provably empty — the schema "
                    "is inconsistent (the closure should have caught this)"
                )
            # Drain demands before seeding the next required class, so a
            # class already realized by an earlier tree is reused.
            self._drain()
            if not any(
                self.chain_has(n, name)
                for root in self.roots
                for n in root.subtree()
            ):
                self.new_node(name)
        self._drain()
        return self.roots

    def _drain(self) -> None:
        guard = 0
        while self.queue:
            guard += 1
            if guard > 50 * self.node_budget:
                raise WitnessSynthesisError("demand processing did not converge")
            self.process(self.queue.pop())


class _Virtual:
    """A chain-only stand-in used for forbidden checks before a node for
    ``deepest`` exists."""

    __slots__ = ("deepest",)

    def __init__(self, deepest: str, _syn: _Synthesizer) -> None:
        self.deepest = deepest


def _synthesize_value(schema: DirectorySchema, attribute: str, counter: int):
    """Invent a value for a required attribute, typed when possible and
    unique per entry (so key extras hold)."""
    registry = schema.registry
    if registry is not None and attribute in registry:
        type_name = registry.tau(attribute).name
        if type_name == "integer":
            return counter
        if type_name == "boolean":
            return True
        if type_name == "telephone":
            return f"+1 555 {counter % 10000:04d}"
        if type_name == "uri":
            return f"http://example.com/{attribute}/{counter}"
        if type_name == "dn":
            return f"cn=ref{counter}"
    return f"{attribute}-{counter}"


def synthesize_witness(
    schema: DirectorySchema, closure: Closure
) -> DirectoryInstance:
    """Build and verify a legal instance for a ⊬-consistent schema.

    Raises
    ------
    WitnessSynthesisError
        When construction fails or the constructed instance does not
        pass the full legality check (both cases indicate either an
        inconsistency beyond the rule system or a synthesis limitation;
        the message says which construction step failed).
    """
    synthesizer = _Synthesizer(schema, closure)
    roots = synthesizer.run()

    instance = DirectoryInstance(attributes=schema.registry)
    counter = itertools.count(1)

    def materialize(node: _Node, parent_entry) -> None:
        index = next(counter)
        chain = schema.class_schema.superclasses(node.deepest)
        attributes = {}
        for object_class in chain:
            for attr in sorted(schema.attribute_schema.required(object_class)):
                if attr not in attributes:
                    attributes[attr] = [_synthesize_value(schema, attr, index)]
        entry = instance.add_entry(
            parent_entry, f"cn=w{index}", list(chain), attributes
        )
        for child in node.children:
            materialize(child, entry)

    for root in roots:
        materialize(root, None)

    # Verified-before-returned: the witness must actually be legal.
    from repro.legality.checker import LegalityChecker

    report = LegalityChecker(schema).check(instance)
    if not report.is_legal:
        raise WitnessSynthesisError(
            "constructed witness failed the legality check:\n" + str(report)
        )
    return instance
