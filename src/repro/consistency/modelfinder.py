"""Bounded model finding — the semantic ground truth for small schemas.

The inference system of Section 5 is validated differentially: for small
class universes, :func:`find_model` *exhaustively* searches for a legal
instance of bounded size, deciding consistency semantically (up to the
bound).  The test suite runs it against :func:`repro.consistency.engine.close`
over exhaustive/random families of small schemas:

* ``find_model`` finds an instance but the closure derives ``∅ □``
  → an inference rule is **unsound** (must never happen);
* the closure is ⊥-free but no model exists up to a generous bound
  → a (documented) completeness gap worth inspecting.

Search space: forests of at most ``max_entries`` nodes.  Node class-sets
are restricted to root-to-node chains of the core hierarchy — without
loss of generality, because content legality forces core classes to form
a chain, auxiliary classes never appear in structure elements, and any
legal instance remains legal after dropping auxiliary classes and
attribute values (structure satisfaction only reads core membership).

Consistency per Section 5 concerns the class and structure schemas;
attribute values never matter (required attributes can always be
populated), so the finder checks structure elements plus chain-validity
only.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.axes import Axis
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import (
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
)

__all__ = ["find_model", "Model"]


class Model:
    """A tiny forest: parent vector plus per-node class chains."""

    def __init__(self, parents: Sequence[Optional[int]], chains: Sequence[Tuple[str, ...]]):
        self.parents = tuple(parents)
        self.chains = tuple(frozenset(chain) for chain in chains)

    def __len__(self) -> int:
        return len(self.parents)

    def ancestors(self, i: int) -> Iterator[int]:
        """Proper ancestors of node ``i``, nearest first."""
        cursor = self.parents[i]
        while cursor is not None:
            yield cursor
            cursor = self.parents[cursor]

    def members(self, object_class: str) -> List[int]:
        """Nodes whose class chain contains ``object_class``."""
        return [i for i, chain in enumerate(self.chains) if object_class in chain]

    def satisfies(self, element: SchemaElement) -> bool:
        """Definition 2.6 satisfaction, specialized to this tiny model."""
        if isinstance(element, RequiredClass):
            return bool(self.members(element.object_class))
        if isinstance(element, RequiredEdge):
            for i in self.members(element.source):
                if not self._has_related(i, element.axis, element.target):
                    return False
            return True
        if isinstance(element, ForbiddenEdge):
            for i in self.members(element.source):
                if self._has_related(i, element.axis, element.target):
                    return False
            return True
        return True  # Subclass/Disjoint hold by chain construction

    def _has_related(self, i: int, axis: Axis, target: str) -> bool:
        if axis is Axis.PARENT:
            p = self.parents[i]
            return p is not None and target in self.chains[p]
        if axis is Axis.ANCESTOR:
            return any(target in self.chains[a] for a in self.ancestors(i))
        if axis is Axis.CHILD:
            return any(
                self.parents[j] == i and target in self.chains[j]
                for j in range(len(self.parents))
            )
        return any(
            target in self.chains[j]
            for j in range(len(self.parents))
            if j != i and i in set(self.ancestors(j))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{i}<-{p if p is not None else 'root'}:{sorted(c)}"
            for i, (p, c) in enumerate(zip(self.parents, self.chains))
        ]
        return "Model(" + "; ".join(parts) + ")"


def _forest_shapes(n: int) -> Iterator[Tuple[Optional[int], ...]]:
    """All canonical parent vectors on ``n`` nodes: node ``i`` is a root
    or a child of an earlier node (every forest has such a numbering)."""
    options: List[List[Optional[int]]] = [
        [None] + list(range(i)) for i in range(n)
    ]
    yield from product(*options)  # type: ignore[misc]


def find_model(
    schema: DirectorySchema,
    max_entries: int = 4,
) -> Optional[Model]:
    """Search for a legal model of up to ``max_entries`` entries.

    Returns the first (smallest) model found or ``None`` when no model
    of bounded size exists.  Exponential in ``max_entries`` — intended
    for class universes of up to ~5 classes and bounds of up to ~5
    entries, as used by the differential tests.
    """
    elements = [
        e
        for e in schema.structure_schema.elements()
    ]
    chains = _chains(schema.class_schema)

    for n in range(0, max_entries + 1):
        if n == 0:
            model = Model((), ())
            if all(model.satisfies(e) for e in elements):
                return model
            continue
        for parents in _forest_shapes(n):
            for assignment in product(chains, repeat=n):
                model = Model(parents, assignment)
                if all(model.satisfies(e) for e in elements):
                    return model
    return None


def _chains(class_schema: ClassSchema) -> List[Tuple[str, ...]]:
    """Every root-to-node chain of the core hierarchy — the possible
    core class-sets of a content-legal entry."""
    return [
        class_schema.superclasses(c) for c in sorted(class_schema.core_classes())
    ]
