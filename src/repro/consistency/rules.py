"""The inference-rule catalog (Figures 6 and 7).

Each :class:`Rule` records a rule's name, its group in the paper's
figures, its premise/conclusion shape in the paper's notation, and
whether it comes verbatim from the figures or is a *reconstruction*.

**A note on reconstruction.**  The available text of the paper renders
the rule figures with heavy glyph loss; the groups and most rules are
unambiguous (Nodes-and-Edges, Paths, Transitivity, Loops, Reflexivity,
Sub-Transitivity, Source, Target, the top-interaction Paths of Figure 7,
and the two Direct-Conflict rules), while the exact premise lists of the
*Parenthood* and *Ancestorhood* rules are not recoverable glyph-for-glyph.
For those, and for a handful of glue rules the Consistency Theorem
(Theorem 5.2) requires (child-level direct conflict, forbidden-edge
downward propagation, membership-through-subclassing), we implement
reconstructions that are

* **sound** — each is proved in its docstring from the Definition 2.6
  semantics, and property-tested against random legal instances; and
* **inconsistency-complete in practice** — differentially tested against
  a bounded model finder (:mod:`repro.consistency.modelfinder`) on
  exhaustive small schema families.

Known theoretical gap (documented, not hidden): conflicts that only
materialize through *three or more* pairwise-compatible required
ancestors whose forbidden-descendant constraints form a directed cycle
are not derivable by any pairwise rule system; the witness synthesizer
(:mod:`repro.consistency.witness`) acts as a constructive backstop —
``ConsistencyChecker.check(synthesize=True)`` reports when the inference
system says "consistent" but no witness could be built.

The paper's notation in the ``shape`` strings: ``c□`` (required class),
``ci →ch cj`` / ``→de`` / ``→pa`` / ``→an`` (required edges, read
"every ci-entry has a ch/de/pa/an-related cj-entry"), ``ci ↛ch cj`` /
``↛de`` (forbidden edges), ``⊑`` (subclass), ``⊥`` (disjoint),
``∅`` (the empty pseudo-class), ``⊢`` (derives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "RULES", "rule", "FIGURE6_GROUPS", "FIGURE7_GROUPS"]


@dataclass(frozen=True)
class Rule:
    """Metadata for one inference rule."""

    name: str
    group: str
    figure: int
    shape: str
    reconstructed: bool = False


FIGURE6_GROUPS = (
    "nodes-and-edges",
    "paths",
    "transitivity",
    "loops",
    "reflexivity",
    "sub-transitivity",
    "source",
    "target",
    "membership",
)

FIGURE7_GROUPS = (
    "top-paths",
    "forb-paths",
    "direct-conflict",
    "forb-source",
    "forb-target",
    "parenthood",
    "ancestorhood",
    "handshake",
    "sub-conflict",
)

_RULES: Tuple[Rule, ...] = (
    # ------------------------------------------------------------------
    # Figure 6: inconsistencies due to cycles
    # ------------------------------------------------------------------
    Rule("ne-child", "nodes-and-edges", 6, "ci□, ci →ch cj ⊢ cj□"),
    Rule("ne-desc", "nodes-and-edges", 6, "ci□, ci →de cj ⊢ cj□"),
    Rule("ne-parent", "nodes-and-edges", 6, "ci□, ci →pa cj ⊢ cj□"),
    Rule("ne-anc", "nodes-and-edges", 6, "ci□, ci →an cj ⊢ cj□"),
    Rule("path-child-desc", "paths", 6, "ci →ch cj ⊢ ci →de cj"),
    Rule("path-parent-anc", "paths", 6, "ci →pa cj ⊢ ci →an cj"),
    Rule("trans-desc", "transitivity", 6, "ci →de cj, cj →de ck ⊢ ci →de ck"),
    Rule("trans-anc", "transitivity", 6, "ci →an cj, cj →an ck ⊢ ci →an ck"),
    Rule("loop-desc", "loops", 6, "ci →de ci ⊢ ci →de ∅"),
    Rule("loop-anc", "loops", 6, "ci →an ci ⊢ ci →an ∅"),
    Rule("sub-reflexive", "reflexivity", 6, "⊢ c ⊑ c"),
    Rule("sub-trans", "sub-transitivity", 6, "ci ⊑ cj, cj ⊑ ck ⊢ ci ⊑ ck"),
    Rule("source-child", "source", 6, "ci →ch cj, ci' ⊑ ci ⊢ ci' →ch cj"),
    Rule("source-desc", "source", 6, "ci →de cj, ci' ⊑ ci ⊢ ci' →de cj"),
    Rule("source-parent", "source", 6, "ci →pa cj, ci' ⊑ ci ⊢ ci' →pa cj"),
    Rule("source-anc", "source", 6, "ci →an cj, ci' ⊑ ci ⊢ ci' →an cj"),
    Rule("target-child", "target", 6, "ci →ch cj, cj ⊑ cj' ⊢ ci →ch cj'"),
    Rule("target-desc", "target", 6, "ci →de cj, cj ⊑ cj' ⊢ ci →de cj'"),
    Rule("target-parent", "target", 6, "ci →pa cj, cj ⊑ cj' ⊢ ci →pa cj'"),
    Rule("target-anc", "target", 6, "ci →an cj, cj ⊑ cj' ⊢ ci →an cj'"),
    Rule(
        "ne-sub", "membership", 6, "ci□, ci ⊑ cj ⊢ cj□", reconstructed=True
    ),
    # ------------------------------------------------------------------
    # Figure 7: inconsistencies due to contradictions
    # ------------------------------------------------------------------
    Rule("top-desc-child", "top-paths", 7, "ci →de top ⊢ ci →ch top"),
    Rule("top-anc-parent", "top-paths", 7, "ci →an top ⊢ ci →pa top"),
    Rule("top-forb-child-desc", "top-paths", 7, "ci ↛ch top ⊢ ci ↛de top"),
    Rule("top-forb-root", "top-paths", 7, "top ↛ch ci ⊢ top ↛de ci"),
    Rule(
        "forb-desc-child",
        "forb-paths",
        7,
        "ci ↛de cj ⊢ ci ↛ch cj",
        reconstructed=True,
    ),
    Rule(
        "conflict-desc",
        "direct-conflict",
        7,
        "ci →de cj, ci ↛de cj ⊢ ci →de ∅",
    ),
    Rule(
        "conflict-anc",
        "direct-conflict",
        7,
        "ci →an cj, cj ↛de ci ⊢ ci →an ∅",
    ),
    Rule(
        "conflict-child",
        "direct-conflict",
        7,
        "ci →ch cj, ci ↛ch cj ⊢ ci →de ∅",
        reconstructed=True,
    ),
    Rule(
        "conflict-parent",
        "direct-conflict",
        7,
        "ci →pa cj, cj ↛ch ci ⊢ ci →an ∅",
        reconstructed=True,
    ),
    Rule(
        "forb-source-child", "forb-source", 7, "ci ↛ch cj, ci' ⊑ ci ⊢ ci' ↛ch cj"
    ),
    Rule(
        "forb-source-desc", "forb-source", 7, "ci ↛de cj, ci' ⊑ ci ⊢ ci' ↛de cj"
    ),
    Rule(
        "forb-target-child", "forb-target", 7, "ci ↛ch cj, cj' ⊑ cj ⊢ ci ↛ch cj'"
    ),
    Rule(
        "forb-target-desc", "forb-target", 7, "ci ↛de cj, cj' ⊑ cj ⊢ ci ↛de cj'"
    ),
    Rule(
        "parenthood",
        "parenthood",
        7,
        "ci →pa cj, ck ↛de cj, cj ⊥ ck ⊢ ck ↛de ci",
        reconstructed=True,
    ),
    Rule(
        "ancestorhood",
        "ancestorhood",
        7,
        "ci →an cj, ck ↛de cj, cj ↛de ck, cj ⊥ ck ⊢ ck ↛de ci",
        reconstructed=True,
    ),
    Rule(
        "unique-parent",
        "parenthood",
        7,
        "ci →pa cj, ci →pa ck, cj ⊥ ck ⊢ ci →an ∅",
        reconstructed=True,
    ),
    Rule(
        "anc-exclusion",
        "ancestorhood",
        7,
        "ci →an cj, ci →an ck, cj ⊥ ck, cj ↛de ck, ck ↛de cj ⊢ ci →an ∅",
        reconstructed=True,
    ),
    Rule(
        "sandwich",
        "ancestorhood",
        7,
        "ci →an cp, ci →de cc, cp ↛de cc ⊢ ci →de ∅",
        reconstructed=True,
    ),
    Rule(
        "child-parent-handshake",
        "handshake",
        7,
        "ci →ch cj, cj →pa ck, ci ⊥ ck ⊢ ci →de ∅",
        reconstructed=True,
    ),
    Rule(
        "child-parent-subsumption",
        "handshake",
        7,
        "ci →ch cj, cj →pa ck ⊢ ci ⊑ ck",
        reconstructed=True,
    ),
    Rule(
        "child-anc-lift",
        "handshake",
        7,
        "ci →ch cj, cj →an ck, ci ⊥ ck ⊢ ci →an ck",
        reconstructed=True,
    ),
    Rule(
        "desc-parent-lift",
        "handshake",
        7,
        "ci →de cj, cj →pa ck, ci ⊥ ck ⊢ ci →de ck",
        reconstructed=True,
    ),
    Rule(
        "sub-conflict",
        "sub-conflict",
        7,
        "c ⊑ a, c ⊑ b, a ⊥ b ⊢ c →de ∅",
        reconstructed=True,
    ),
)

#: All rules, indexed by name.
RULES: Dict[str, Rule] = {r.name: r for r in _RULES}


def rule(name: str) -> Rule:
    """Look up a rule by name (raises ``KeyError`` for unknown names)."""
    return RULES[name]
