"""Repair suggestions for inconsistent schemas.

When the inference system derives ``∅ □``, the schema author needs to
know *what to change*.  The proof tree already names the axioms involved
(:meth:`Closure.proof_of_inconsistency`), but several independent
conflicts can hide behind one proof.  :func:`suggest_repairs` searches
for **minimal repair sets**: smallest sets of *structure-schema* axioms
whose removal makes the schema consistent.

Class-hierarchy elements (``⊑``/``⊥``) are treated as fixed — they
mirror the core-class tree, which schema authors evolve separately —
so repairs only ever drop required classes, required edges, or
forbidden edges.

The search is a bounded hitting-set enumeration guided by proofs:
the axioms appearing in the current ⊥-proof form the branch points, so
only elements actually implicated in *some* conflict are ever
considered.  Complete for repairs up to ``max_size`` (default 3);
larger schemas are better fixed one proof at a time.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.consistency.engine import Closure, Derivation, close
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import (
    BOTTOM,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
)

__all__ = ["RepairSuggestion", "suggest_repairs", "proof_axioms"]


class RepairSuggestion:
    """One minimal set of structure elements to drop."""

    def __init__(self, remove: FrozenSet[SchemaElement]) -> None:
        self.remove = remove

    def __len__(self) -> int:
        return len(self.remove)

    def __eq__(self, other) -> bool:
        return isinstance(other, RepairSuggestion) and self.remove == other.remove

    def __hash__(self) -> int:
        return hash(self.remove)

    def __str__(self) -> str:
        items = ", ".join(sorted(str(e) for e in self.remove))
        return f"drop {{{items}}}"


def proof_axioms(closure: Closure) -> Set[SchemaElement]:
    """The *axiom* elements appearing in the ⊥-proof (empty when the
    closure is consistent)."""
    if closure.consistent:
        return set()
    axioms: Set[SchemaElement] = set()
    stack: List[SchemaElement] = [BOTTOM]
    seen: Set[SchemaElement] = set()
    while stack:
        fact = stack.pop()
        if fact in seen:
            continue
        seen.add(fact)
        derivation: Optional[Derivation] = closure.derivation(fact)
        if derivation is None:
            continue
        if derivation.rule == "axiom":
            axioms.add(fact)
        else:
            stack.extend(derivation.premises)
    return axioms


def _mutable(elements: Sequence[SchemaElement]) -> List[SchemaElement]:
    return [
        e
        for e in elements
        if isinstance(e, (RequiredClass, RequiredEdge, ForbiddenEdge))
    ]


def suggest_repairs(
    schema: DirectorySchema,
    max_size: int = 3,
    max_suggestions: int = 5,
) -> List[RepairSuggestion]:
    """Minimal structure-element removals restoring consistency.

    Returns suggestions ordered by size (smallest repairs first), empty
    when the schema is already consistent, and also empty when no repair
    of up to ``max_size`` removals exists (then the class hierarchy
    itself participates in every conflict).
    """
    all_elements = list(schema.all_elements())
    universe = schema.class_schema.core_classes()

    def consistent_without(removed: FrozenSet[SchemaElement]) -> Tuple[bool, Closure]:
        remaining = [e for e in all_elements if e not in removed]
        closure = close(remaining, universe=universe)
        return closure.consistent, closure

    base_consistent, base_closure = consistent_without(frozenset())
    if base_consistent:
        return []

    # Candidate pool: structure axioms implicated in the first proof,
    # expanded as new proofs appear after partial removals.
    candidates = _mutable(sorted(proof_axioms(base_closure), key=str))
    suggestions: List[RepairSuggestion] = []
    seen: Set[FrozenSet[SchemaElement]] = set()

    for size in range(1, max_size + 1):
        pool = list(candidates)
        for combo in combinations(pool, size):
            removed = frozenset(combo)
            if removed in seen:
                continue
            # Skip non-minimal supersets of accepted repairs.
            if any(s.remove <= removed for s in suggestions):
                continue
            seen.add(removed)
            ok, closure = consistent_without(removed)
            if ok:
                suggestions.append(RepairSuggestion(removed))
                if len(suggestions) >= max_suggestions:
                    return suggestions
            else:
                # A different conflict surfaced: widen the pool so the
                # next size can hit it too.
                for axiom in _mutable(sorted(proof_axioms(closure), key=str)):
                    if axiom not in candidates:
                        candidates.append(axiom)
    return suggestions
