"""Schema consistency (Section 5): inference rules, closure, witnesses."""

from repro.consistency.checker import (
    ConsistencyChecker,
    ConsistencyResult,
    check_consistency,
)
from repro.consistency.engine import Closure, Derivation, close
from repro.consistency.modelfinder import Model, find_model
from repro.consistency.repair import RepairSuggestion, proof_axioms, suggest_repairs
from repro.consistency.rules import RULES, Rule, rule
from repro.consistency.witness import WitnessSynthesisError, synthesize_witness

__all__ = [
    "ConsistencyChecker",
    "ConsistencyResult",
    "check_consistency",
    "Closure",
    "Derivation",
    "close",
    "Model",
    "find_model",
    "Rule",
    "RULES",
    "rule",
    "WitnessSynthesisError",
    "synthesize_witness",
    "RepairSuggestion",
    "suggest_repairs",
    "proof_axioms",
]
