"""The inference engine: fixpoint closure and consistency (Section 5).

:func:`close` computes the deductive closure of a set of schema elements
under the Figures 6-7 rules (as catalogued in
:mod:`repro.consistency.rules`), recording for every derived fact the
rule and premises of its first derivation so that proofs can be
reconstructed (:meth:`Closure.explain`).

The closure runs as a semi-naive worklist fixpoint: every fact is joined
against index structures exactly when it is first derived, so total work
is polynomial in the number of classes — the complexity claim of
Theorem 5.2, measured by the THM52 benchmark.

By Theorem 5.2 the schema is consistent iff the closure does not contain
the falsum element ``∅ □`` (:data:`repro.schema.elements.BOTTOM`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.axes import Axis
from repro.schema.class_schema import TOP
from repro.schema.elements import (
    BOTTOM,
    EMPTY_CLASS,
    Disjoint,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
    Subclass,
)

__all__ = ["Derivation", "Closure", "close"]


@dataclass(frozen=True)
class Derivation:
    """How a fact entered the closure: by which rule, from which
    premises.  Axiom facts use rule ``"axiom"`` and no premises."""

    fact: SchemaElement
    rule: str
    premises: Tuple[SchemaElement, ...] = ()


@dataclass
class Closure:
    """The result of :func:`close`.

    Attributes
    ----------
    facts:
        Every element in the closure, mapped to its first derivation.
    universe:
        All class names the closure ranges over (including ``top`` and
        ``∅``).
    """

    facts: Dict[SchemaElement, Derivation] = field(default_factory=dict)
    universe: Set[str] = field(default_factory=set)

    def __contains__(self, fact: SchemaElement) -> bool:
        if isinstance(fact, Disjoint):
            fact = fact.normalized()
        return fact in self.facts

    def __len__(self) -> int:
        return len(self.facts)

    @property
    def consistent(self) -> bool:
        """Theorem 5.2: consistent iff ``∅ □`` was not derived."""
        return BOTTOM not in self.facts

    def empty_classes(self) -> Set[str]:
        """Classes proved unpopulatable: those with a derived
        ``c →de ∅`` or ``c →an ∅`` element (Section 5's encoding of
        "no legal instance contains a ``c`` entry")."""
        empties = set()
        for fact in self.facts:
            if (
                isinstance(fact, RequiredEdge)
                and fact.target == EMPTY_CLASS
                and fact.source != EMPTY_CLASS
            ):
                empties.add(fact.source)
        return empties

    def derivation(self, fact: SchemaElement) -> Optional[Derivation]:
        """The first derivation of ``fact`` (``None`` if underived)."""
        if isinstance(fact, Disjoint):
            fact = fact.normalized()
        return self.facts.get(fact)

    def explain(self, fact: SchemaElement, _depth: int = 0) -> str:
        """A human-readable proof tree for ``fact``."""
        derivation = self.derivation(fact)
        pad = "  " * _depth
        if derivation is None:
            return f"{pad}{fact}  (not derived)"
        if derivation.rule == "axiom":
            return f"{pad}{fact}  [axiom]"
        lines = [f"{pad}{fact}  [{derivation.rule}]"]
        for premise in derivation.premises:
            lines.append(self.explain(premise, _depth + 1))
        return "\n".join(lines)

    def proof_of_inconsistency(self) -> Optional[str]:
        """The proof tree of ``∅ □`` when inconsistent, else ``None``."""
        if self.consistent:
            return None
        return self.explain(BOTTOM)


class _Engine:
    """Worklist fixpoint over the rule catalog."""

    def __init__(self, universe: Set[str]) -> None:
        self.universe = universe
        self.facts: Dict[SchemaElement, Derivation] = {}
        self.work: List[SchemaElement] = []
        # Indexes
        self.ne: Set[str] = set()
        self.req_src: Dict[Tuple[Axis, str], Set[str]] = {}
        self.req_tgt: Dict[Tuple[Axis, str], Set[str]] = {}
        self.forb_src: Dict[Tuple[Axis, str], Set[str]] = {}
        self.forb_tgt: Dict[Tuple[Axis, str], Set[str]] = {}
        self.sub_up: Dict[str, Set[str]] = {}
        self.sub_down: Dict[str, Set[str]] = {}
        self.disj_of: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def add(
        self,
        fact: SchemaElement,
        rule: str = "axiom",
        premises: Tuple[SchemaElement, ...] = (),
    ) -> None:
        if isinstance(fact, Disjoint):
            fact = fact.normalized()
        if fact in self.facts:
            return
        self.facts[fact] = Derivation(fact, rule, premises)
        self.work.append(fact)
        if isinstance(fact, RequiredClass):
            self.ne.add(fact.object_class)
        elif isinstance(fact, RequiredEdge):
            self.req_src.setdefault((fact.axis, fact.source), set()).add(fact.target)
            self.req_tgt.setdefault((fact.axis, fact.target), set()).add(fact.source)
        elif isinstance(fact, ForbiddenEdge):
            self.forb_src.setdefault((fact.axis, fact.source), set()).add(fact.target)
            self.forb_tgt.setdefault((fact.axis, fact.target), set()).add(fact.source)
        elif isinstance(fact, Subclass):
            self.sub_up.setdefault(fact.sub, set()).add(fact.sup)
            self.sub_down.setdefault(fact.sup, set()).add(fact.sub)
        elif isinstance(fact, Disjoint):
            self.disj_of.setdefault(fact.a, set()).add(fact.b)
            self.disj_of.setdefault(fact.b, set()).add(fact.a)

    # Index lookups -----------------------------------------------------
    def req(self, axis: Axis, source: str) -> Set[str]:
        return self.req_src.get((axis, source), set())

    def req_sources(self, axis: Axis, target: str) -> Set[str]:
        return self.req_tgt.get((axis, target), set())

    def has_req(self, axis: Axis, source: str, target: str) -> bool:
        return target in self.req_src.get((axis, source), ())

    def forb(self, axis: Axis, source: str) -> Set[str]:
        return self.forb_src.get((axis, source), set())

    def forb_sources(self, axis: Axis, target: str) -> Set[str]:
        return self.forb_tgt.get((axis, target), set())

    def has_forb(self, axis: Axis, source: str, target: str) -> bool:
        return target in self.forb_src.get((axis, source), ())

    def subs_of(self, sup: str) -> Set[str]:
        return self.sub_down.get(sup, set())

    def sups_of(self, sub: str) -> Set[str]:
        return self.sub_up.get(sub, set())

    def disjoint_with(self, name: str) -> Set[str]:
        return self.disj_of.get(name, set())

    def is_disjoint(self, a: str, b: str) -> bool:
        return b in self.disj_of.get(a, ())

    # ------------------------------------------------------------------
    def run(self) -> None:
        while self.work:
            fact = self.work.pop()
            if isinstance(fact, RequiredClass):
                self._on_nonempty(fact)
            elif isinstance(fact, RequiredEdge):
                self._on_required(fact)
            elif isinstance(fact, ForbiddenEdge):
                self._on_forbidden(fact)
            elif isinstance(fact, Subclass):
                self._on_subclass(fact)
            elif isinstance(fact, Disjoint):
                self._on_disjoint(fact)

    # ------------------------------------------------------------------
    # triggers per fact kind
    # ------------------------------------------------------------------
    def _on_nonempty(self, fact: RequiredClass) -> None:
        c = fact.object_class
        # nodes-and-edges: ci□, ci →ax cj ⊢ cj□
        for axis in Axis:
            for target in list(self.req(axis, c)):
                self.add(
                    RequiredClass(target),
                    f"ne-{_axis_word(axis)}",
                    (fact, RequiredEdge(axis, c, target)),
                )
        # membership: ci□, ci ⊑ cj ⊢ cj□
        for sup in list(self.sups_of(c)):
            if sup != c:
                self.add(RequiredClass(sup), "ne-sub", (fact, Subclass(c, sup)))

    def _on_required(self, fact: RequiredEdge) -> None:
        axis, ci, cj = fact.axis, fact.source, fact.target
        # nodes-and-edges (triggered from the edge side)
        if ci in self.ne:
            self.add(
                RequiredClass(cj),
                f"ne-{_axis_word(axis)}",
                (RequiredClass(ci), fact),
            )
        # paths: →ch ⊢ →de, →pa ⊢ →an
        if axis in (Axis.CHILD, Axis.PARENT):
            self.add(
                RequiredEdge(axis.transitive, ci, cj),
                "path-child-desc" if axis is Axis.CHILD else "path-parent-anc",
                (fact,),
            )
        # transitivity on →de / →an
        if axis in (Axis.DESCENDANT, Axis.ANCESTOR):
            word = _axis_word(axis)
            for ck in list(self.req(axis, cj)):
                self.add(
                    RequiredEdge(axis, ci, ck),
                    f"trans-{word}",
                    (fact, RequiredEdge(axis, cj, ck)),
                )
            for ch in list(self.req_sources(axis, ci)):
                self.add(
                    RequiredEdge(axis, ch, cj),
                    f"trans-{word}",
                    (RequiredEdge(axis, ch, ci), fact),
                )
            # loops: ci →de ci ⊢ ci →de ∅
            if ci == cj and ci != EMPTY_CLASS:
                self.add(
                    RequiredEdge(axis, ci, EMPTY_CLASS), f"loop-{word}", (fact,)
                )
        # source specialization: ci' ⊑ ci
        for sub in list(self.subs_of(ci)):
            if sub != ci:
                self.add(
                    RequiredEdge(axis, sub, cj),
                    f"source-{_axis_word(axis)}",
                    (fact, Subclass(sub, ci)),
                )
        # target generalization: cj ⊑ cj'
        for sup in list(self.sups_of(cj)):
            if sup != cj:
                self.add(
                    RequiredEdge(axis, ci, sup),
                    f"target-{_axis_word(axis)}",
                    (fact, Subclass(cj, sup)),
                )
        # Figure 7 top-paths: →de top ⊢ →ch top; →an top ⊢ →pa top
        if cj == TOP:
            if axis is Axis.DESCENDANT:
                self.add(RequiredEdge(Axis.CHILD, ci, TOP), "top-desc-child", (fact,))
            elif axis is Axis.ANCESTOR:
                self.add(RequiredEdge(Axis.PARENT, ci, TOP), "top-anc-parent", (fact,))
        # direct conflicts
        if axis is Axis.DESCENDANT and self.has_forb(Axis.DESCENDANT, ci, cj):
            self.add(
                RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                "conflict-desc",
                (fact, ForbiddenEdge(Axis.DESCENDANT, ci, cj)),
            )
        if axis is Axis.CHILD and self.has_forb(Axis.CHILD, ci, cj):
            self.add(
                RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                "conflict-child",
                (fact, ForbiddenEdge(Axis.CHILD, ci, cj)),
            )
        if axis is Axis.ANCESTOR and self.has_forb(Axis.DESCENDANT, cj, ci):
            self.add(
                RequiredEdge(Axis.ANCESTOR, ci, EMPTY_CLASS),
                "conflict-anc",
                (fact, ForbiddenEdge(Axis.DESCENDANT, cj, ci)),
            )
        if axis is Axis.PARENT and self.has_forb(Axis.CHILD, cj, ci):
            self.add(
                RequiredEdge(Axis.ANCESTOR, ci, EMPTY_CLASS),
                "conflict-parent",
                (fact, ForbiddenEdge(Axis.CHILD, cj, ci)),
            )
        # parenthood / ancestorhood (derive forbidden facts)
        if axis is Axis.PARENT:
            for ck in list(self.forb_sources(Axis.DESCENDANT, cj)):
                if self.is_disjoint(cj, ck):
                    self.add(
                        ForbiddenEdge(Axis.DESCENDANT, ck, ci),
                        "parenthood",
                        (
                            fact,
                            ForbiddenEdge(Axis.DESCENDANT, ck, cj),
                            Disjoint(cj, ck).normalized(),
                        ),
                    )
            # unique-parent: two disjoint required parents
            for ck in list(self.req(Axis.PARENT, ci)):
                if ck != cj and self.is_disjoint(cj, ck):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, ci, EMPTY_CLASS),
                        "unique-parent",
                        (
                            fact,
                            RequiredEdge(Axis.PARENT, ci, ck),
                            Disjoint(cj, ck).normalized(),
                        ),
                    )
        if axis is Axis.ANCESTOR:
            for ck in list(self.forb_sources(Axis.DESCENDANT, cj)):
                if self.is_disjoint(cj, ck) and self.has_forb(Axis.DESCENDANT, cj, ck):
                    self.add(
                        ForbiddenEdge(Axis.DESCENDANT, ck, ci),
                        "ancestorhood",
                        (
                            fact,
                            ForbiddenEdge(Axis.DESCENDANT, ck, cj),
                            ForbiddenEdge(Axis.DESCENDANT, cj, ck),
                            Disjoint(cj, ck).normalized(),
                        ),
                    )
            # anc-exclusion: two required ancestors that cannot share a path
            for ck in list(self.req(Axis.ANCESTOR, ci)):
                if (
                    ck != cj
                    and self.is_disjoint(cj, ck)
                    and self.has_forb(Axis.DESCENDANT, cj, ck)
                    and self.has_forb(Axis.DESCENDANT, ck, cj)
                ):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, ci, EMPTY_CLASS),
                        "anc-exclusion",
                        (
                            fact,
                            RequiredEdge(Axis.ANCESTOR, ci, ck),
                            Disjoint(cj, ck).normalized(),
                            ForbiddenEdge(Axis.DESCENDANT, cj, ck),
                            ForbiddenEdge(Axis.DESCENDANT, ck, cj),
                        ),
                    )
        # sandwich: ci →an cp, ci →de cc, cp ↛de cc ⊢ ci →de ∅
        # (a required descendant of ci is also a descendant of every
        # required ancestor of ci — forbidden there means ci is empty)
        if axis is Axis.ANCESTOR and cj != EMPTY_CLASS:
            for cc in list(self.req(Axis.DESCENDANT, ci)):
                if cc != EMPTY_CLASS and self.has_forb(Axis.DESCENDANT, cj, cc):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                        "sandwich",
                        (
                            fact,
                            RequiredEdge(Axis.DESCENDANT, ci, cc),
                            ForbiddenEdge(Axis.DESCENDANT, cj, cc),
                        ),
                    )
        if axis is Axis.DESCENDANT and cj != EMPTY_CLASS:
            for cp in list(self.req(Axis.ANCESTOR, ci)):
                if cp != EMPTY_CLASS and self.has_forb(Axis.DESCENDANT, cp, cj):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                        "sandwich",
                        (
                            RequiredEdge(Axis.ANCESTOR, ci, cp),
                            fact,
                            ForbiddenEdge(Axis.DESCENDANT, cp, cj),
                        ),
                    )
        # child-parent handshake and subsumption: the required cj-child of
        # a ci-entry has that very entry as its parent, so every ci-entry
        # must belong to every required-parent class of cj.
        if axis is Axis.CHILD:
            for ck in list(self.req(Axis.PARENT, cj)):
                premises = (fact, RequiredEdge(Axis.PARENT, cj, ck))
                if ck != EMPTY_CLASS and ci != ck:
                    self.add(
                        Subclass(ci, ck), "child-parent-subsumption", premises
                    )
                if self.is_disjoint(ci, ck):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                        "child-parent-handshake",
                        premises + (Disjoint(ci, ck).normalized(),),
                    )
        if axis is Axis.PARENT:
            for ch in list(self.req_sources(Axis.CHILD, ci)):
                premises = (RequiredEdge(Axis.CHILD, ch, ci), fact)
                if cj != EMPTY_CLASS and ch != cj:
                    self.add(
                        Subclass(ch, cj), "child-parent-subsumption", premises
                    )
                if self.is_disjoint(ch, cj):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, ch, EMPTY_CLASS),
                        "child-parent-handshake",
                        premises + (Disjoint(ch, cj).normalized(),),
                    )
        # child-anc-lift: the required cj-child of a ci-entry has exactly
        # ci-entry and its ancestors as ancestors; with ci ⊥ ck the
        # child's required ck-ancestor must lie strictly above ci.
        if axis is Axis.CHILD:
            for ck in list(self.req(Axis.ANCESTOR, cj)):
                if ck != EMPTY_CLASS and self.is_disjoint(ci, ck):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, ci, ck),
                        "child-anc-lift",
                        (
                            fact,
                            RequiredEdge(Axis.ANCESTOR, cj, ck),
                            Disjoint(ci, ck).normalized(),
                        ),
                    )
        if axis is Axis.ANCESTOR and cj != EMPTY_CLASS:
            for ch in list(self.req_sources(Axis.CHILD, ci)):
                if self.is_disjoint(ch, cj):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, ch, cj),
                        "child-anc-lift",
                        (
                            RequiredEdge(Axis.CHILD, ch, ci),
                            fact,
                            Disjoint(ch, cj).normalized(),
                        ),
                    )
        # desc-parent-lift (mirror of child-anc-lift): the required
        # cj-descendant of a ci-entry has a ck parent on the path at or
        # below ci; with ci ⊥ ck that parent is a strict descendant.
        if axis is Axis.DESCENDANT and cj != EMPTY_CLASS:
            for ck in list(self.req(Axis.PARENT, cj)):
                if ck != EMPTY_CLASS and self.is_disjoint(ci, ck):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, ci, ck),
                        "desc-parent-lift",
                        (
                            fact,
                            RequiredEdge(Axis.PARENT, cj, ck),
                            Disjoint(ci, ck).normalized(),
                        ),
                    )
        if axis is Axis.PARENT and cj != EMPTY_CLASS:
            for ch in list(self.req_sources(Axis.DESCENDANT, ci)):
                if self.is_disjoint(ch, cj):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, ch, cj),
                        "desc-parent-lift",
                        (
                            RequiredEdge(Axis.DESCENDANT, ch, ci),
                            fact,
                            Disjoint(ch, cj).normalized(),
                        ),
                    )

    def _on_forbidden(self, fact: ForbiddenEdge) -> None:
        axis, ci, cj = fact.axis, fact.source, fact.target
        # forb-paths: ↛de ⊢ ↛ch
        if axis is Axis.DESCENDANT:
            self.add(ForbiddenEdge(Axis.CHILD, ci, cj), "forb-desc-child", (fact,))
        # top-paths
        if axis is Axis.CHILD and cj == TOP:
            self.add(
                ForbiddenEdge(Axis.DESCENDANT, ci, TOP), "top-forb-child-desc", (fact,)
            )
        if axis is Axis.CHILD and ci == TOP:
            self.add(ForbiddenEdge(Axis.DESCENDANT, TOP, cj), "top-forb-root", (fact,))
        # propagation to subclasses (both arguments)
        for sub in list(self.subs_of(ci)):
            if sub != ci:
                self.add(
                    ForbiddenEdge(axis, sub, cj),
                    f"forb-source-{_axis_word(axis)}",
                    (fact, Subclass(sub, ci)),
                )
        for sub in list(self.subs_of(cj)):
            if sub != cj:
                self.add(
                    ForbiddenEdge(axis, ci, sub),
                    f"forb-target-{_axis_word(axis)}",
                    (fact, Subclass(sub, cj)),
                )
        # direct conflicts (triggered from the forbidden side)
        if axis is Axis.DESCENDANT and self.has_req(Axis.DESCENDANT, ci, cj):
            self.add(
                RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                "conflict-desc",
                (RequiredEdge(Axis.DESCENDANT, ci, cj), fact),
            )
        if axis is Axis.CHILD and self.has_req(Axis.CHILD, ci, cj):
            self.add(
                RequiredEdge(Axis.DESCENDANT, ci, EMPTY_CLASS),
                "conflict-child",
                (RequiredEdge(Axis.CHILD, ci, cj), fact),
            )
        if axis is Axis.DESCENDANT and self.has_req(Axis.ANCESTOR, cj, ci):
            self.add(
                RequiredEdge(Axis.ANCESTOR, cj, EMPTY_CLASS),
                "conflict-anc",
                (RequiredEdge(Axis.ANCESTOR, cj, ci), fact),
            )
        if axis is Axis.CHILD and self.has_req(Axis.PARENT, cj, ci):
            self.add(
                RequiredEdge(Axis.ANCESTOR, cj, EMPTY_CLASS),
                "conflict-parent",
                (RequiredEdge(Axis.PARENT, cj, ci), fact),
            )
        # sandwich (triggered from the forbidden side)
        if axis is Axis.DESCENDANT and ci != EMPTY_CLASS and cj != EMPTY_CLASS:
            for middle in list(self.req_sources(Axis.ANCESTOR, ci)):
                if cj in self.req(Axis.DESCENDANT, middle):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, middle, EMPTY_CLASS),
                        "sandwich",
                        (
                            RequiredEdge(Axis.ANCESTOR, middle, ci),
                            RequiredEdge(Axis.DESCENDANT, middle, cj),
                            fact,
                        ),
                    )
        # parenthood / ancestorhood (triggered from the forbidden side)
        if axis is Axis.DESCENDANT:
            for target in list(self.req_sources(Axis.PARENT, cj)):
                if self.is_disjoint(cj, ci):
                    self.add(
                        ForbiddenEdge(Axis.DESCENDANT, ci, target),
                        "parenthood",
                        (
                            RequiredEdge(Axis.PARENT, target, cj),
                            fact,
                            Disjoint(cj, ci).normalized(),
                        ),
                    )
            for target in list(self.req_sources(Axis.ANCESTOR, cj)):
                if self.is_disjoint(cj, ci) and self.has_forb(
                    Axis.DESCENDANT, cj, ci
                ):
                    self.add(
                        ForbiddenEdge(Axis.DESCENDANT, ci, target),
                        "ancestorhood",
                        (
                            RequiredEdge(Axis.ANCESTOR, target, cj),
                            fact,
                            ForbiddenEdge(Axis.DESCENDANT, cj, ci),
                            Disjoint(cj, ci).normalized(),
                        ),
                    )

    def _on_subclass(self, fact: Subclass) -> None:
        sub, sup = fact.sub, fact.sup
        if sub == sup:
            return
        # sub-transitivity (both directions of the join)
        for higher in list(self.sups_of(sup)):
            if higher != sup:
                self.add(
                    Subclass(sub, higher), "sub-trans", (fact, Subclass(sup, higher))
                )
        for lower in list(self.subs_of(sub)):
            if lower != sub:
                self.add(
                    Subclass(lower, sup), "sub-trans", (Subclass(lower, sub), fact)
                )
        # membership
        if sub in self.ne:
            self.add(RequiredClass(sup), "ne-sub", (RequiredClass(sub), fact))
        # re-fire source/target/forb propagation for edges touching sup/sub
        for axis in Axis:
            for target in list(self.req(axis, sup)):
                self.add(
                    RequiredEdge(axis, sub, target),
                    f"source-{_axis_word(axis)}",
                    (RequiredEdge(axis, sup, target), fact),
                )
            for source in list(self.req_sources(axis, sub)):
                self.add(
                    RequiredEdge(axis, source, sup),
                    f"target-{_axis_word(axis)}",
                    (RequiredEdge(axis, source, sub), fact),
                )
        for axis in (Axis.CHILD, Axis.DESCENDANT):
            for target in list(self.forb(axis, sup)):
                self.add(
                    ForbiddenEdge(axis, sub, target),
                    f"forb-source-{_axis_word(axis)}",
                    (ForbiddenEdge(axis, sup, target), fact),
                )
            for source in list(self.forb_sources(axis, sup)):
                self.add(
                    ForbiddenEdge(axis, source, sub),
                    f"forb-target-{_axis_word(axis)}",
                    (ForbiddenEdge(axis, source, sup), fact),
                )
        # sub-conflict: c ⊑ a, c ⊑ b, a ⊥ b
        for other in list(self.sups_of(sub)):
            if other != sup and self.is_disjoint(sup, other):
                self.add(
                    RequiredEdge(Axis.DESCENDANT, sub, EMPTY_CLASS),
                    "sub-conflict",
                    (fact, Subclass(sub, other), Disjoint(sup, other).normalized()),
                )

    def _on_disjoint(self, fact: Disjoint) -> None:
        for a, b in ((fact.a, fact.b), (fact.b, fact.a)):
            # unique-parent
            for ci in list(self.req_sources(Axis.PARENT, a)):
                if b in self.req(Axis.PARENT, ci):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, ci, EMPTY_CLASS),
                        "unique-parent",
                        (
                            RequiredEdge(Axis.PARENT, ci, a),
                            RequiredEdge(Axis.PARENT, ci, b),
                            fact,
                        ),
                    )
            # anc-exclusion
            for ci in list(self.req_sources(Axis.ANCESTOR, a)):
                if (
                    b in self.req(Axis.ANCESTOR, ci)
                    and self.has_forb(Axis.DESCENDANT, a, b)
                    and self.has_forb(Axis.DESCENDANT, b, a)
                ):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, ci, EMPTY_CLASS),
                        "anc-exclusion",
                        (
                            RequiredEdge(Axis.ANCESTOR, ci, a),
                            RequiredEdge(Axis.ANCESTOR, ci, b),
                            fact,
                            ForbiddenEdge(Axis.DESCENDANT, a, b),
                            ForbiddenEdge(Axis.DESCENDANT, b, a),
                        ),
                    )
            # parenthood / ancestorhood
            for ci in list(self.req_sources(Axis.PARENT, a)):
                for ck in list(self.forb_sources(Axis.DESCENDANT, a)):
                    if ck == b:
                        self.add(
                            ForbiddenEdge(Axis.DESCENDANT, b, ci),
                            "parenthood",
                            (
                                RequiredEdge(Axis.PARENT, ci, a),
                                ForbiddenEdge(Axis.DESCENDANT, b, a),
                                fact,
                            ),
                        )
            for ci in list(self.req_sources(Axis.ANCESTOR, a)):
                if self.has_forb(Axis.DESCENDANT, b, a) and self.has_forb(
                    Axis.DESCENDANT, a, b
                ):
                    self.add(
                        ForbiddenEdge(Axis.DESCENDANT, b, ci),
                        "ancestorhood",
                        (
                            RequiredEdge(Axis.ANCESTOR, ci, a),
                            ForbiddenEdge(Axis.DESCENDANT, b, a),
                            ForbiddenEdge(Axis.DESCENDANT, a, b),
                            fact,
                        ),
                    )
            # handshake
            for cj in list(self.req(Axis.CHILD, a)):
                # a →ch cj; need cj →pa b
                if b in self.req(Axis.PARENT, cj):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, a, EMPTY_CLASS),
                        "child-parent-handshake",
                        (
                            RequiredEdge(Axis.CHILD, a, cj),
                            RequiredEdge(Axis.PARENT, cj, b),
                            fact,
                        ),
                    )
                # child-anc-lift: a →ch cj, cj →an b, a ⊥ b
                if b in self.req(Axis.ANCESTOR, cj):
                    self.add(
                        RequiredEdge(Axis.ANCESTOR, a, b),
                        "child-anc-lift",
                        (
                            RequiredEdge(Axis.CHILD, a, cj),
                            RequiredEdge(Axis.ANCESTOR, cj, b),
                            fact,
                        ),
                    )
            # desc-parent-lift: a →de cj, cj →pa b, a ⊥ b
            for cj in list(self.req(Axis.DESCENDANT, a)):
                if cj != EMPTY_CLASS and b in self.req(Axis.PARENT, cj):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, a, b),
                        "desc-parent-lift",
                        (
                            RequiredEdge(Axis.DESCENDANT, a, cj),
                            RequiredEdge(Axis.PARENT, cj, b),
                            fact,
                        ),
                    )
            # sub-conflict
            for c in list(self.subs_of(a)):
                if c != a and b in self.sups_of(c):
                    self.add(
                        RequiredEdge(Axis.DESCENDANT, c, EMPTY_CLASS),
                        "sub-conflict",
                        (Subclass(c, a), Subclass(c, b), fact),
                    )


def _axis_word(axis: Axis) -> str:
    return {
        Axis.CHILD: "child",
        Axis.PARENT: "parent",
        Axis.DESCENDANT: "desc",
        Axis.ANCESTOR: "anc",
    }[axis]


def close(
    elements: Iterable[SchemaElement],
    universe: Optional[Iterable[str]] = None,
    assume_top: bool = True,
) -> Closure:
    """Compute the deductive closure of ``elements``.

    Parameters
    ----------
    elements:
        The axiom set ``Γ`` — structure elements plus the
        subclass/disjointness elements induced by the class schema
        (:meth:`DirectorySchema.all_elements
        <repro.schema.directory_schema.DirectorySchema.all_elements>`).
    universe:
        Additional class names to include (the closure always covers all
        classes mentioned by ``elements`` plus ``top`` and ``∅``).
    assume_top:
        Seed ``c ⊑ top`` for every class — sound in the LDAP model,
        where every legal entry belongs to ``top``.  Disable only when
        experimenting with the bare rule system.
    """
    element_list = list(elements)
    names: Set[str] = {TOP, EMPTY_CLASS}
    if universe is not None:
        names.update(universe)
    for element in element_list:
        if isinstance(element, RequiredClass):
            names.add(element.object_class)
        elif isinstance(element, (RequiredEdge, ForbiddenEdge)):
            names.add(element.source)
            names.add(element.target)
        elif isinstance(element, Subclass):
            names.add(element.sub)
            names.add(element.sup)
        elif isinstance(element, Disjoint):
            names.add(element.a)
            names.add(element.b)

    engine = _Engine(names)
    for name in sorted(names):
        if name == EMPTY_CLASS:
            continue
        engine.add(Subclass(name, name), "sub-reflexive")
        if assume_top and name != TOP:
            engine.add(Subclass(name, TOP), "sub-reflexive")
    for element in element_list:
        engine.add(element)
    engine.run()
    return Closure(facts=engine.facts, universe=names)
