"""Directory entries.

An entry (Definition 2.1) is a node of the directory forest holding

* a finite, non-empty set of object classes ``class(r)``, and
* a finite set of (attribute, value) pairs ``val(r)``,

subject to the invariant that the values of the reserved attribute
``objectClass`` are exactly ``class(r)`` (condition 3b).  :class:`Entry`
keeps the class set as the single source of truth and synthesizes the
``objectClass`` attribute on read, so the invariant holds by construction.

Entries are owned by a :class:`~repro.model.instance.DirectoryInstance`,
which assigns them an integer id and maintains the forest relation and the
per-class index.  Mutating an entry's classes notifies the owner so indexes
stay correct.

Each entry also exposes a *content fingerprint*
(:meth:`Entry.content_fingerprint`): a stable digest of
``(class(r), val(r))`` — exactly the inputs of the Section 3.1 per-entry
content check.  The legality engine (:mod:`repro.legality.engine`)
memoizes content verdicts under this key; the cached digest is
invalidated here, at the mutation sites, so staleness is impossible.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ModelError
from repro.model.attributes import OBJECT_CLASS
from repro.model.dn import DN, RDN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.instance import DirectoryInstance

__all__ = ["Entry"]


class Entry:
    """One directory entry: classes, attribute values, and a position.

    Instances are created through
    :meth:`DirectoryInstance.add_entry <repro.model.instance.DirectoryInstance.add_entry>`;
    constructing one directly leaves it detached (no id, no DN) which is
    only useful in tests.
    """

    __slots__ = ("_owner", "eid", "rdn", "_classes", "_attributes", "_fingerprint")

    def __init__(
        self,
        rdn: RDN,
        classes: Iterable[str],
        attributes: Optional[Dict[str, Iterable[Any]]] = None,
        owner: Optional["DirectoryInstance"] = None,
        eid: int = -1,
    ) -> None:
        class_set = set(classes)
        if not class_set:
            raise ModelError("class(r) must be a non-empty set (Definition 2.1)")
        self._owner = owner
        self.eid = eid
        self.rdn = rdn
        self._classes: set = class_set
        self._attributes: Dict[str, List[Any]] = {}
        self._fingerprint: Optional[str] = None
        if attributes:
            for name, values in attributes.items():
                for value in values:
                    self.add_value(name, value)

    # ------------------------------------------------------------------
    # classes
    # ------------------------------------------------------------------
    @property
    def classes(self) -> FrozenSet[str]:
        """The set ``class(r)`` of object classes the entry belongs to."""
        return frozenset(self._classes)

    def belongs_to(self, object_class: str) -> bool:
        """Whether ``object_class in class(r)``."""
        return object_class in self._classes

    def add_class(self, object_class: str) -> None:
        """Add an object class to ``class(r)`` (idempotent)."""
        if object_class in self._classes:
            return
        self._classes.add(object_class)
        self._fingerprint = None
        if self._owner is not None:
            self._owner._on_class_added(self.eid, object_class)

    def remove_class(self, object_class: str) -> None:
        """Remove an object class from ``class(r)``.

        Raises
        ------
        ModelError
            If the class is absent or removal would leave the entry with an
            empty class set (forbidden by Definition 2.1).
        """
        if object_class not in self._classes:
            raise ModelError(f"entry does not belong to {object_class!r}")
        if len(self._classes) == 1:
            raise ModelError("class(r) must stay non-empty (Definition 2.1)")
        self._classes.remove(object_class)
        self._fingerprint = None
        if self._owner is not None:
            self._owner._on_class_removed(self.eid, object_class)

    # ------------------------------------------------------------------
    # attribute values
    # ------------------------------------------------------------------
    def values(self, attribute: str) -> Tuple[Any, ...]:
        """All values of ``attribute`` at this entry (possibly empty).

        For ``objectClass`` this is the (sorted) class set, per condition
        3(b) of Definition 2.1.
        """
        if attribute == OBJECT_CLASS:
            return tuple(sorted(self._classes))
        return tuple(self._attributes.get(attribute, ()))

    def first_value(self, attribute: str) -> Optional[Any]:
        """The first value of ``attribute`` or ``None`` when absent."""
        values = self.values(attribute)
        return values[0] if values else None

    def has_attribute(self, attribute: str) -> bool:
        """Whether the entry has at least one value for ``attribute``."""
        if attribute == OBJECT_CLASS:
            return True
        return bool(self._attributes.get(attribute))

    def has_value(self, attribute: str, value: Any) -> bool:
        """Whether ``(attribute, value)`` is in ``val(r)``."""
        if attribute == OBJECT_CLASS:
            return value in self._classes
        return value in self._attributes.get(attribute, ())

    def add_value(self, attribute: str, value: Any) -> None:
        """Add a pair to ``val(r)``.

        ``val(r)`` is a *set* of pairs, so adding an existing pair is a
        no-op.  Adding to ``objectClass`` is equivalent to
        :meth:`add_class`.  When the owning instance has an attribute
        registry, the value is normalized and type-checked first
        (condition 3a of Definition 2.1).
        """
        if attribute == OBJECT_CLASS:
            self.add_class(value)
            return
        if self._owner is not None and self._owner.attributes is not None:
            value = self._owner.attributes.coerce(attribute, value)
        bucket = self._attributes.setdefault(attribute, [])
        if value not in bucket:
            bucket.append(value)
            self._fingerprint = None
            if self._owner is not None:
                self._owner._notify_entry_changed(self.eid)

    def remove_value(self, attribute: str, value: Any) -> None:
        """Remove a pair from ``val(r)``.

        Raises
        ------
        ModelError
            If the pair is absent.
        """
        if attribute == OBJECT_CLASS:
            self.remove_class(value)
            return
        bucket = self._attributes.get(attribute)
        if not bucket or value not in bucket:
            raise ModelError(f"entry has no pair ({attribute!r}, {value!r})")
        bucket.remove(value)
        self._fingerprint = None
        if not bucket:
            del self._attributes[attribute]
        if self._owner is not None:
            self._owner._notify_entry_changed(self.eid)

    def replace_values(self, attribute: str, values: Iterable[Any]) -> None:
        """Replace all values of ``attribute`` with ``values``."""
        if attribute == OBJECT_CLASS:
            raise ModelError("objectClass is managed through add_class/remove_class")
        current = list(self._attributes.get(attribute, ()))
        for value in current:
            self.remove_value(attribute, value)
        for value in values:
            self.add_value(attribute, value)

    def attribute_names(self) -> Tuple[str, ...]:
        """Names of attributes with at least one value, including
        ``objectClass``."""
        return (OBJECT_CLASS,) + tuple(self._attributes.keys())

    def pairs(self) -> Iterator[Tuple[str, Any]]:
        """Iterate over ``val(r)`` as (attribute, value) pairs, including
        the synthesized ``objectClass`` pairs."""
        for object_class in sorted(self._classes):
            yield (OBJECT_CLASS, object_class)
        for name, values in self._attributes.items():
            for value in values:
                yield (name, value)

    def value_count(self) -> int:
        """``|val(r)|`` — the number of (attribute, value) pairs."""
        return len(self._classes) + sum(len(v) for v in self._attributes.values())

    # ------------------------------------------------------------------
    # content fingerprint
    # ------------------------------------------------------------------
    def content_fingerprint(self) -> str:
        """A stable digest of ``(class(r), val(r))``.

        Two entries have equal fingerprints exactly when the Section 3.1
        content check cannot distinguish them, so a content verdict may
        be reused across any entries (or re-checks) sharing a
        fingerprint.  The digest is position-independent (the DN does not
        participate) and process-independent (``blake2b``, not the
        per-process-salted builtin ``hash``), so verdicts computed by
        pool workers stay valid in the parent process.

        The digest is cached on the entry and invalidated by every
        class/value mutation, so recomputing it for an unchanged entry
        is O(1).
        """
        fingerprint = self._fingerprint
        if fingerprint is None:
            digest = blake2b(digest_size=12)
            for name in sorted(self._classes):
                digest.update(b"\x00c")
                digest.update(name.encode("utf-8"))
            for name in sorted(self._attributes):
                digest.update(b"\x00a")
                digest.update(name.encode("utf-8"))
                for value in sorted(repr(v) for v in self._attributes[name]):
                    digest.update(b"\x00v")
                    digest.update(value.encode("utf-8"))
            fingerprint = digest.hexdigest()
            self._fingerprint = fingerprint
        return fingerprint

    # ------------------------------------------------------------------
    # position
    # ------------------------------------------------------------------
    @property
    def dn(self) -> DN:
        """The entry's distinguished name (requires an owner)."""
        if self._owner is None:
            return DN((self.rdn,))
        return self._owner.dn_of(self.eid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Entry({self.rdn!s}, classes={sorted(self._classes)})"
