"""Attribute definitions and the ``tau`` typing function.

The paper assumes an infinite set ``A`` of attributes in a *single
namespace* (Section 2.4: "the definition of an attribute is independent of
the object classes in which the attribute is present"), and a total function
``tau : A -> T`` assigning each attribute a type.

:class:`AttributeRegistry` realizes the finite, known portion of ``A``
together with ``tau``.  Each attribute may additionally be declared
*single-valued* — the numeric restriction discussed in Section 6.1 of the
paper ("Numeric Restrictions") — which is enforced by the extras checker in
:mod:`repro.legality.extras`.

The special attribute ``objectClass`` (Definition 2.1, condition 3b) is
always present in a registry and always has type ``string``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Optional

from repro.errors import UnknownAttributeError
from repro.model.types import AttributeType, STRING, TypeRegistry

__all__ = ["OBJECT_CLASS", "AttributeDefinition", "AttributeRegistry"]

#: The reserved attribute whose values are exactly the entry's object
#: classes (Definition 2.1, condition 3b).
OBJECT_CLASS = "objectClass"


@dataclass(frozen=True)
class AttributeDefinition:
    """One attribute ``a`` in ``A`` together with ``tau(a)``.

    Parameters
    ----------
    name:
        Attribute name, unique within a registry (single namespace).
    type:
        The attribute's type ``tau(a)``.
    single_valued:
        If true, legal entries may hold at most one value for this
        attribute (Section 6.1, "Numeric Restrictions").
    description:
        Optional human-readable documentation.
    """

    name: str
    type: AttributeType
    single_valued: bool = False
    description: str = ""


class AttributeRegistry:
    """The known attributes ``A`` and the typing function ``tau``.

    The registry is case-sensitive, matching the abstract model of the
    paper.  ``objectClass`` is pre-registered with type ``string``.
    """

    def __init__(self, types: Optional[TypeRegistry] = None) -> None:
        self.types = types if types is not None else TypeRegistry()
        self._attributes: Dict[str, AttributeDefinition] = {}
        self.declare(OBJECT_CLASS, STRING, description="entry object classes")

    def declare(
        self,
        name: str,
        attribute_type: AttributeType | str = STRING,
        single_valued: bool = False,
        description: str = "",
    ) -> AttributeDefinition:
        """Register attribute ``name`` with type ``tau(name)`` and return it.

        ``attribute_type`` may be an :class:`AttributeType` or the name of a
        type registered in :attr:`types`.  Redeclaring an attribute with an
        identical definition is a no-op; redeclaring with a different type
        raises :class:`ValueError`.
        """
        if isinstance(attribute_type, str):
            resolved = self.types.get(attribute_type)
            if resolved is None:
                raise KeyError(f"unknown type {attribute_type!r}")
            attribute_type = resolved
        definition = AttributeDefinition(name, attribute_type, single_valued, description)
        existing = self._attributes.get(name)
        if existing is not None:
            if existing.type.name != definition.type.name or (
                existing.single_valued != definition.single_valued
            ):
                raise ValueError(
                    f"attribute {name!r} already declared with type "
                    f"{existing.type.name!r} (single_valued={existing.single_valued})"
                )
            return existing
        self._attributes[name] = definition
        return definition

    def declare_all(self, names: Iterable[str], attribute_type: AttributeType | str = STRING) -> None:
        """Register several attributes sharing one type."""
        for name in names:
            self.declare(name, attribute_type)

    def tau(self, name: str) -> AttributeType:
        """Return ``tau(name)``, the type of the attribute.

        Raises
        ------
        UnknownAttributeError
            If the attribute is not registered (``tau`` is only realized on
            known attributes).
        """
        try:
            return self._attributes[name].type
        except KeyError:
            raise UnknownAttributeError(f"attribute {name!r} has no registered type") from None

    def get(self, name: str) -> Optional[AttributeDefinition]:
        """Return the definition of ``name`` or ``None``."""
        return self._attributes.get(name)

    def coerce(self, name: str, value: Any) -> Any:
        """Normalize and type-check ``value`` for attribute ``name``.

        This realizes condition 3(a) of Definition 2.1: a pair ``(a, v)``
        may be stored only when ``v in dom(tau(a))``.
        """
        return self.tau(name).coerce(value)

    def is_single_valued(self, name: str) -> bool:
        """Whether ``name`` was declared single-valued (Section 6.1)."""
        definition = self._attributes.get(name)
        return bool(definition and definition.single_valued)

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __iter__(self) -> Iterator[AttributeDefinition]:
        return iter(self._attributes.values())

    def __len__(self) -> int:
        return len(self._attributes)

    def names(self) -> Iterator[str]:
        """Iterate over registered attribute names."""
        return iter(self._attributes.keys())
