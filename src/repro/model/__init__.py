"""The directory data model (Section 2 of the paper).

This subpackage realizes Definitions 2.1-2.5's substrate: attribute types
and the ``tau`` typing function, distinguished names, entries, and the
forest-shaped :class:`DirectoryInstance`.
"""

from repro.model.attributes import OBJECT_CLASS, AttributeDefinition, AttributeRegistry
from repro.model.dn import DN, RDN, parse_dn, parse_rdn
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.model.types import (
    BOOLEAN,
    DN_TYPE,
    INTEGER,
    STRING,
    TELEPHONE,
    URI,
    AttributeType,
    TypeRegistry,
    builtin_types,
)

__all__ = [
    "OBJECT_CLASS",
    "AttributeDefinition",
    "AttributeRegistry",
    "AttributeType",
    "TypeRegistry",
    "builtin_types",
    "STRING",
    "INTEGER",
    "BOOLEAN",
    "DN_TYPE",
    "TELEPHONE",
    "URI",
    "DN",
    "RDN",
    "parse_dn",
    "parse_rdn",
    "Entry",
    "DirectoryInstance",
]
