"""Attribute types and their domains.

The paper assumes a set ``T`` of types, each with a domain ``dom(t)``, and a
function ``tau : A -> T`` mapping every attribute to its type
(Section 2, preliminaries).  This module provides the type side:
:class:`AttributeType` pairs a name with a domain-membership predicate and a
value normalizer, and :class:`TypeRegistry` holds the set ``T``.

The built-in types mirror the syntaxes commonly used by LDAP servers
(RFC 2252 attribute syntaxes): directory strings, integers, booleans,
distinguished names, telephone numbers, and URIs.  User-defined types can be
registered freely.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from repro.errors import TypeViolationError

__all__ = [
    "AttributeType",
    "TypeRegistry",
    "builtin_types",
    "STRING",
    "INTEGER",
    "BOOLEAN",
    "DN_TYPE",
    "TELEPHONE",
    "URI",
]


@dataclass(frozen=True)
class AttributeType:
    """A named type ``t`` in ``T`` with a domain ``dom(t)``.

    Parameters
    ----------
    name:
        The type's identifier, e.g. ``"string"``.
    contains:
        Predicate deciding membership in ``dom(t)``.
    normalize:
        Canonicalizes a raw value before storage (e.g. parses ``"42"`` into
        ``42`` for the integer type).  Normalization happens before the
        domain check; it must be idempotent.
    """

    name: str
    contains: Callable[[Any], bool] = field(repr=False)
    # Module-level default (not a lambda) so types — and hence schemas —
    # stay picklable for the process-pool legality engine.
    normalize: Callable[[Any], Any] = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.normalize is None:
            object.__setattr__(self, "normalize", _identity)

    def coerce(self, value: Any) -> Any:
        """Normalize ``value`` and verify it belongs to ``dom(t)``.

        Raises
        ------
        TypeViolationError
            If the normalized value is outside the type's domain.
        """
        try:
            normalized = self.normalize(value)
        except (TypeError, ValueError) as exc:
            raise TypeViolationError(
                f"value {value!r} cannot be normalized to type {self.name!r}: {exc}"
            ) from exc
        if not self.contains(normalized):
            raise TypeViolationError(
                f"value {normalized!r} is not in dom({self.name})"
            )
        return normalized


def _identity(value: Any) -> Any:
    return value


def _is_string(value: Any) -> bool:
    return isinstance(value, str)


def _normalize_string(value: Any) -> Any:
    return value if isinstance(value, str) else str(value)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _normalize_int(value: Any) -> Any:
    if isinstance(value, str):
        return int(value.strip())
    return value


def _is_bool(value: Any) -> bool:
    return isinstance(value, bool)


def _normalize_bool(value: Any) -> Any:
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
    return value

_TELEPHONE_RE = re.compile(r"^\+?[0-9() .\-]{3,32}$")


def _is_telephone(value: Any) -> bool:
    return isinstance(value, str) and bool(_TELEPHONE_RE.match(value))

_URI_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.\-]*:\S+$")


def _is_uri(value: Any) -> bool:
    return isinstance(value, str) and bool(_URI_RE.match(value))

_DN_RE = re.compile(r"^[^,=]+=[^,]*(,[^,=]+=[^,]*)*$")


def _is_dn(value: Any) -> bool:
    return isinstance(value, str) and bool(_DN_RE.match(value))


STRING = AttributeType("string", _is_string, _normalize_string)
INTEGER = AttributeType("integer", _is_int, _normalize_int)
BOOLEAN = AttributeType("boolean", _is_bool, _normalize_bool)
DN_TYPE = AttributeType("dn", _is_dn)
TELEPHONE = AttributeType("telephone", _is_telephone)
URI = AttributeType("uri", _is_uri)

_BUILTINS = (STRING, INTEGER, BOOLEAN, DN_TYPE, TELEPHONE, URI)


class TypeRegistry:
    """The finite, extensible set ``T`` of types known to a deployment.

    A fresh registry starts with the built-in types; additional types can be
    registered with :meth:`register`.  Lookups are by name.
    """

    def __init__(self, include_builtins: bool = True) -> None:
        self._types: Dict[str, AttributeType] = {}
        if include_builtins:
            for t in _BUILTINS:
                self._types[t.name] = t

    def register(self, attribute_type: AttributeType, replace: bool = False) -> AttributeType:
        """Add a type to the registry and return it.

        Raises
        ------
        ValueError
            If a different type with the same name exists and ``replace``
            is false.
        """
        existing = self._types.get(attribute_type.name)
        if existing is not None and existing is not attribute_type and not replace:
            raise ValueError(f"type {attribute_type.name!r} is already registered")
        self._types[attribute_type.name] = attribute_type
        return attribute_type

    def get(self, name: str) -> Optional[AttributeType]:
        """Return the type named ``name`` or ``None``."""
        return self._types.get(name)

    def __getitem__(self, name: str) -> AttributeType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError(f"unknown type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[AttributeType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)


def builtin_types() -> TypeRegistry:
    """Return a fresh registry containing only the built-in types."""
    return TypeRegistry(include_builtins=True)
