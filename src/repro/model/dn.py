"""Distinguished names.

Every entry in an LDAP directory is identified by a *distinguished name*
(DN): the sequence of *relative distinguished names* (RDNs) from the entry up
to its root, written leaf-first and comma-separated, e.g.
``uid=laks,ou=databases,ou=attLabs,o=att``.

The paper abstracts DNs away ("for the purposes of this paper, distinguished
names are not important, and the abstraction of a forest simplifies the
presentation", Definition 2.3 footnote), but a usable library needs them: the
forest structure of :class:`~repro.model.instance.DirectoryInstance` is
induced by DNs exactly as in a real LDAP server, and LDIF interchange
(:mod:`repro.ldif`) addresses entries by DN.

This module implements RFC 4514-style escaping for the characters that are
meaningful inside RDNs (``, + " \\ < > ; =`` and leading/trailing spaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["RDN", "DN", "parse_dn", "parse_rdn"]

_ESCAPED_CHARS = ',+"\\<>;='


def _escape_value(value: str) -> str:
    out = []
    for i, ch in enumerate(value):
        if ch in _ESCAPED_CHARS:
            out.append("\\" + ch)
        elif ch == " " and (i == 0 or i == len(value) - 1):
            out.append("\\ ")
        else:
            out.append(ch)
    return "".join(out)


@dataclass(frozen=True, order=True)
class RDN:
    """A relative distinguished name: one ``attribute=value`` component."""

    attribute: str
    value: str

    def normalized(self) -> "RDN":
        """The case-normalized form used for DN matching.

        LDAP compares attribute names and (directory-string) RDN values
        case-insensitively, so DN index keys and equality tests fold
        case.  Display forms keep their original spelling.  Note the
        fold applies to DN *matching* only: stored attribute values are
        case-preserved (:mod:`repro.model.types` normalizes their
        representation, not their case).
        """
        return RDN(self.attribute.casefold(), self.value.casefold())

    def __str__(self) -> str:
        return f"{self.attribute}={_escape_value(self.value)}"


@dataclass(frozen=True)
class DN:
    """A distinguished name: a leaf-first sequence of RDNs.

    The empty DN (zero RDNs) denotes the conceptual root above all entries
    and never names an actual entry.
    """

    rdns: Tuple[RDN, ...] = ()

    @property
    def rdn(self) -> RDN:
        """The leaf-most RDN (the entry's own name)."""
        if not self.rdns:
            raise ModelError("the empty DN has no RDN")
        return self.rdns[0]

    def parent(self) -> "DN":
        """The DN of the parent entry (empty DN for roots)."""
        if not self.rdns:
            raise ModelError("the empty DN has no parent")
        return DN(self.rdns[1:])

    def child(self, rdn: RDN | str) -> "DN":
        """Return the DN obtained by prepending ``rdn`` below this DN."""
        if isinstance(rdn, str):
            rdn = parse_rdn(rdn)
        return DN((rdn,) + self.rdns)

    def is_root(self) -> bool:
        """Whether this DN names a root entry (exactly one RDN)."""
        return len(self.rdns) == 1

    def is_empty(self) -> bool:
        """Whether this is the empty DN."""
        return not self.rdns

    def depth(self) -> int:
        """Number of RDNs; roots have depth 1."""
        return len(self.rdns)

    def normalized(self) -> "DN":
        """The case-normalized form used for DN-index keys and
        ancestor tests (see :meth:`RDN.normalized`)."""
        return DN(tuple(r.normalized() for r in self.rdns))

    def is_ancestor_of(self, other: "DN") -> bool:
        """Proper-ancestor test via suffix comparison (case-normalized,
        matching the DN index's resolution rules)."""
        if not self.rdns:
            return bool(other.rdns)
        if len(self.rdns) >= len(other.rdns):
            return False
        mine = tuple(r.normalized() for r in self.rdns)
        theirs = tuple(r.normalized() for r in other.rdns[-len(self.rdns):])
        return theirs == mine

    def __str__(self) -> str:
        return ",".join(str(r) for r in self.rdns)

    def __iter__(self) -> Iterator[RDN]:
        return iter(self.rdns)

    def __len__(self) -> int:
        return len(self.rdns)


def parse_rdn(text: str) -> RDN:
    """Parse one ``attribute=value`` component, honouring escapes.

    Raises
    ------
    ModelError
        If the component has no unescaped ``=`` separator or an empty
        attribute name.
    """
    attribute, value, seen_eq = [], [], False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            (value if seen_eq else attribute).append(text[i + 1])
            i += 2
            continue
        if ch == "=" and not seen_eq:
            seen_eq = True
            i += 1
            continue
        (value if seen_eq else attribute).append(ch)
        i += 1
    if not seen_eq:
        raise ModelError(f"RDN {text!r} has no '=' separator")
    name = "".join(attribute).strip()
    if not name:
        raise ModelError(f"RDN {text!r} has an empty attribute name")
    return RDN(name, "".join(value).strip())


def _split_unescaped(text: str, sep: str) -> Sequence[str]:
    parts, current, i = [], [], 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            current.append(ch)
            current.append(text[i + 1])
            i += 2
            continue
        if ch == sep:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


def parse_dn(text: str) -> DN:
    """Parse a comma-separated DN string into a :class:`DN`.

    An empty or all-whitespace string parses to the empty DN.
    """
    text = text.strip()
    if not text:
        return DN(())
    return DN(tuple(parse_rdn(part) for part in _split_unescaped(text, ",")))
