"""Directory instances: the forest ``D = (R, class, val, N)``.

:class:`DirectoryInstance` is the library's central data structure — the
single uniform structure the directory model uses, just as the relational
model uses relations (Section 2.1).  It owns a set of
:class:`~repro.model.entry.Entry` nodes arranged in a forest and maintains:

* a DN index (entries addressable by distinguished name),
* a per-class index ``c -> {entries with c in class(r)}``, updated
  incrementally as classes change, and
* a lazy *preorder/postorder interval numbering*, rebuilt after structural
  mutations, which makes ancestor/descendant tests O(1) and lets the
  hierarchical query evaluator (:mod:`repro.query.evaluator`) meet the
  ``O(|Q| * |D|)`` bound of Jagadish et al. [9] that Theorem 3.1 relies on.

Mutations follow LDAP rules (Section 4.1): new entries are roots or children
of existing entries; only leaves can be deleted one at a time.  Subtree
grafting/pruning (the update granularity of Theorem 4.1) is provided on top
of these primitives by :meth:`insert_subtree` and :meth:`delete_subtree`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    DuplicateEntryError,
    ForestInvariantError,
    UnknownEntryError,
)
from repro.model.attributes import AttributeRegistry
from repro.model.dn import DN, RDN, parse_dn, parse_rdn
from repro.model.entry import Entry

__all__ = ["DirectoryInstance"]

#: Process-wide instance identities.  Entry ids are only unique within
#: one instance, so caches keyed by per-class fingerprints additionally
#: carry the owning instance's token to stay sound across instances
#: (two fresh instances both start their class versions at zero).
_INSTANCE_TOKENS = itertools.count(1)


class DirectoryInstance:
    """A directory instance ``D = (R, class, val, N)`` (Definition 2.1).

    Parameters
    ----------
    attributes:
        Optional attribute registry realizing ``tau``.  When provided,
        attribute values are normalized and type-checked on insertion
        (condition 3a); when ``None`` the instance is untyped and stores
        values verbatim.
    """

    def __init__(self, attributes: Optional[AttributeRegistry] = None) -> None:
        self.attributes = attributes
        self._entries: Dict[int, Entry] = {}
        self._parent: Dict[int, Optional[int]] = {}
        self._children: Dict[int, List[int]] = {}
        self._roots: List[int] = []
        # DN index, keyed by the *case-normalized* DN string: LDAP
        # compares attribute names and directory-string RDN values
        # case-insensitively, so without folding `find("CN=Alice,...")`
        # and `find("cn=alice,...")` would name different entries.
        # (Stored attribute *values* keep their case — repro.model.types
        # normalizes representation, not case.)
        self._by_dn: Dict[str, int] = {}
        # eid -> display DN string (original spelling), composed in O(1)
        # from the parent's key at insertion time; keeps add_entry O(1)
        # in depth (no root walk).
        self._dn_key: Dict[int, str] = {}
        # eid -> normalized DN string: the entry's _by_dn key.
        self._norm_key: Dict[int, str] = {}
        self._class_index: Dict[str, Set[int]] = {}
        self._next_eid = 0
        # Per-class mutation counters: bumped on every membership change
        # of the class's bucket.  Together with the instance token they
        # make :meth:`class_fingerprint` a sound cache key for anything
        # that depends only on a class's member set (entry ids are never
        # reused and entries never re-parent while keeping their id, so
        # structure verdicts are pure functions of the mentioned
        # classes' member sets).
        self._class_version: Dict[str, int] = {}
        self.instance_token = next(_INSTANCE_TOKENS)
        # Optional secondary indexes (repro.store.index.AttributeIndexes).
        # When attached, every mutation notifies them so their postings
        # can be patched lazily in O(|Δ|); the model layer only knows
        # the two-method observer protocol, not the index structure.
        self.indexes: Optional[Any] = None
        # Structural-mutation counter (any shape change bumps it).
        self._shape_generation = 0
        # Lazy interval numbering; None means stale.
        self._pre: Optional[Dict[int, int]] = None
        self._post: Optional[Dict[int, int]] = None
        self._depth: Optional[Dict[int, int]] = None
        self._order: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_entry(
        self,
        parent: Optional[Entry | int | DN | str],
        rdn: RDN | str,
        classes: Iterable[str],
        attributes: Optional[Dict[str, Iterable[Any]]] = None,
    ) -> Entry:
        """Create an entry under ``parent`` (``None`` for a new root).

        This is the LDAP insertion primitive: the parent must already exist
        (Section 4.1).  Returns the created :class:`Entry`.

        Raises
        ------
        DuplicateEntryError
            If an entry with the resulting DN already exists.
        UnknownEntryError
            If ``parent`` does not resolve to an entry.
        """
        if isinstance(rdn, str):
            rdn = parse_rdn(rdn)
        parent_eid = None if parent is None else self._resolve(parent)
        if parent_eid is None:
            key = str(rdn)
            norm = str(rdn.normalized())
        else:
            key = f"{rdn},{self._dn_key[parent_eid]}"
            norm = f"{rdn.normalized()},{self._norm_key[parent_eid]}"
        if norm in self._by_dn:
            existing = self._dn_key[self._by_dn[norm]]
            if existing == key:
                raise DuplicateEntryError(
                    f"an entry with DN {key!r} already exists"
                )
            # Name both spellings: DN matching is case-insensitive, so
            # data written under the old exact-string resolution can
            # collide only here — the message is the migration hint.
            raise DuplicateEntryError(
                f"an entry with DN {key!r} already exists as {existing!r} "
                "(DNs match case-insensitively; rename one of the two "
                "spellings)"
            )

        eid = self._next_eid
        self._next_eid += 1
        entry = Entry(rdn, classes, owner=self, eid=eid)
        self._entries[eid] = entry
        self._parent[eid] = parent_eid
        self._children[eid] = []
        if parent_eid is None:
            self._roots.append(eid)
        else:
            self._children[parent_eid].append(eid)
        self._by_dn[norm] = eid
        self._dn_key[eid] = key
        self._norm_key[eid] = norm
        for object_class in entry.classes:
            self._class_index.setdefault(object_class, set()).add(eid)
            self._bump_class(object_class)
        if attributes:
            for name, values in attributes.items():
                for value in values:
                    entry.add_value(name, value)
        self._notify_entry_changed(eid)
        self._invalidate_order()
        return entry

    def delete_entry(self, entry: Entry | int | DN | str) -> None:
        """Delete a leaf entry (LDAP deletion primitive, Section 4.1).

        Raises
        ------
        ForestInvariantError
            If the entry has children.
        """
        eid = self._resolve(entry)
        if self._children[eid]:
            raise ForestInvariantError(
                "only leaf entries can be deleted; delete descendants first"
            )
        node = self._entries[eid]
        # Notify before the DN index entry disappears: the observer
        # captures the normalized DN for reverse-reference probes.
        self._notify_entry_removed(eid)
        parent_eid = self._parent[eid]
        if parent_eid is None:
            self._roots.remove(eid)
        else:
            self._children[parent_eid].remove(eid)
        del self._by_dn[self._norm_key.pop(eid)]
        del self._dn_key[eid]
        for object_class in node.classes:
            bucket = self._class_index.get(object_class)
            if bucket is not None:
                bucket.discard(eid)
                if not bucket:
                    del self._class_index[object_class]
                self._bump_class(object_class)
        del self._entries[eid]
        del self._parent[eid]
        del self._children[eid]
        node._owner = None
        self._invalidate_order()

    # ------------------------------------------------------------------
    # subtree operations (update granularity of Theorem 4.1)
    # ------------------------------------------------------------------
    def insert_subtree(
        self,
        parent: Optional[Entry | int | DN | str],
        subtree: "DirectoryInstance",
    ) -> List[Entry]:
        """Graft a copy of ``subtree`` (a directory instance) under
        ``parent``.

        Roots of ``subtree`` become children of ``parent`` (or new roots
        when ``parent`` is ``None``).  Returns the created entries in
        document order.  ``subtree`` itself is not modified.

        Traversal uses an explicit stack, not recursion, so arbitrarily
        deep subtrees (beyond the interpreter recursion limit) graft
        fine.
        """
        created: List[Entry] = []
        parent_entry = None if parent is None else self.entry(self._resolve(parent))
        stack: List[Tuple[int, Optional[Entry]]] = [
            (root_eid, parent_entry) for root_eid in reversed(subtree.root_ids())
        ]
        while stack:
            src_eid, dest_parent = stack.pop()
            src = subtree.entry(src_eid)
            attributes = {
                name: list(src.values(name))
                for name in src.attribute_names()
                if name != "objectClass"
            }
            node = self.add_entry(dest_parent, src.rdn, src.classes, attributes)
            created.append(node)
            for child_eid in reversed(subtree.children_ids(src_eid)):
                stack.append((child_eid, node))
        return created

    def delete_subtree(self, entry: Entry | int | DN | str) -> "DirectoryInstance":
        """Prune the subtree rooted at ``entry``.

        Returns the removed subtree as a standalone instance (so callers
        can inspect, re-insert, or legality-check what was deleted).

        Pruning a subtree of size ``k`` costs O(k): the root is unlinked
        from its parent once, DN index keys are derived top-down from
        the parent's key (no per-node root walk), and the document-order
        numbering is invalidated once rather than per deleted entry.
        """
        eid = self._resolve(entry)
        removed = self.extract_subtree(eid)

        # Unlink the subtree root — the only sibling-list surgery needed.
        parent_eid = self._parent[eid]
        if parent_eid is None:
            self._roots.remove(eid)
        else:
            self._children[parent_eid].remove(eid)

        # Discard all k nodes in one pass; DN-index keys come from the
        # O(1) per-entry key cache, so no node pays a root walk.
        stack: List[int] = [eid]
        while stack:
            node_eid = stack.pop()
            self._notify_entry_removed(node_eid)
            node = self._entries.pop(node_eid)
            del self._by_dn[self._norm_key.pop(node_eid)]
            del self._dn_key[node_eid]
            for object_class in node.classes:
                bucket = self._class_index.get(object_class)
                if bucket is not None:
                    bucket.discard(node_eid)
                    if not bucket:
                        del self._class_index[object_class]
                    self._bump_class(object_class)
            stack.extend(self._children[node_eid])
            del self._parent[node_eid]
            del self._children[node_eid]
            node._owner = None
        self._invalidate_order()
        return removed

    def extract_subtree(self, entry: Entry | int | DN | str) -> "DirectoryInstance":
        """Copy the subtree rooted at ``entry`` into a fresh instance
        without modifying this one.  Iterative, so depth is unbounded."""
        eid = self._resolve(entry)
        subtree = DirectoryInstance(attributes=self.attributes)
        self._copy_subtrees_into(subtree, [eid])
        return subtree

    def copy(self) -> "DirectoryInstance":
        """Deep-copy the whole instance (entry ids are not preserved)."""
        clone = DirectoryInstance(attributes=self.attributes)
        self._copy_subtrees_into(clone, list(self._roots))
        return clone

    def _copy_subtrees_into(
        self, target: "DirectoryInstance", root_eids: List[int]
    ) -> None:
        """Re-create the subtrees at ``root_eids`` inside ``target`` (as
        new roots), using an explicit stack instead of recursion."""
        stack: List[Tuple[int, Optional[Entry]]] = [
            (root_eid, None) for root_eid in reversed(root_eids)
        ]
        while stack:
            node_eid, dest_parent = stack.pop()
            src = self._entries[node_eid]
            attributes = {
                name: list(src.values(name))
                for name in src.attribute_names()
                if name != "objectClass"
            }
            node = target.add_entry(dest_parent, src.rdn, src.classes, attributes)
            for child_eid in reversed(self._children[node_eid]):
                stack.append((child_eid, node))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def entry(self, entry: Entry | int | DN | str) -> Entry:
        """Resolve an entry by object, id, DN, or DN string."""
        return self._entries[self._resolve(entry)]

    def find(self, dn: DN | str) -> Optional[Entry]:
        """Return the entry with distinguished name ``dn`` or ``None``.

        Matching is case-insensitive, as LDAP defines for attribute
        names and directory-string RDN values: ``find("CN=Alice,...")``
        and ``find("cn=alice,...")`` resolve to the same entry.
        (Stored attribute *values* are case-preserved; only DN
        resolution folds case.)
        """
        parsed = parse_dn(dn) if isinstance(dn, str) else dn
        eid = self._by_dn.get(str(parsed.normalized()))
        return None if eid is None else self._entries[eid]

    def dn_of(self, entry: Entry | int) -> DN:
        """The distinguished name of ``entry``."""
        eid = entry.eid if isinstance(entry, Entry) else entry
        rdns: List[RDN] = []
        cursor: Optional[int] = eid
        while cursor is not None:
            node = self._entries.get(cursor)
            if node is None:
                raise UnknownEntryError(f"unknown entry id {cursor}")
            rdns.append(node.rdn)
            cursor = self._parent[cursor]
        return DN(tuple(rdns))

    def dn_string_of(self, entry: Entry | int) -> str:
        """The DN string of ``entry`` in O(1).

        Equal to ``str(self.dn_of(entry))`` but read from the insertion-
        time key cache instead of walking to the root — the form hot
        per-entry paths (content checking every entry of a deep
        directory) should use.
        """
        return self._dn_key[self._resolve(entry)]

    def entries_with_class(self, object_class: str) -> Set[int]:
        """Ids of entries ``r`` with ``object_class in class(r)`` — the
        per-class index used by query evaluation."""
        return set(self._class_index.get(object_class, ()))

    def class_count(self, object_class: str) -> int:
        """``|{r : object_class in class(r)}|`` — supports the counted
        variant of incremental ``c-box`` testing (end of Section 4)."""
        return len(self._class_index.get(object_class, ()))

    def class_fingerprint(self, object_class: str) -> Tuple[int, int]:
        """A ``(version, count)`` pair that changes whenever the member
        set of ``object_class`` changes.

        The version counter is bumped on every bucket mutation (entry
        added/deleted, class added/removed on a live entry) and never
        reused, so equal fingerprints *within one instance* imply the
        member set is unchanged since the fingerprint was taken.  The
        structure-check engine keys its per-element verdict memo on the
        fingerprints of the element's mentioned classes (plus
        :attr:`instance_token` to separate instances).
        """
        return (
            self._class_version.get(object_class, 0),
            len(self._class_index.get(object_class, ())),
        )

    @property
    def shape_generation(self) -> int:
        """Counts structural mutations (inserts/deletes anywhere) — an
        observability hook: a re-check that hits only memoized structure
        verdicts despite a bumped generation demonstrates the dirty-set
        gate is the per-class fingerprints, not whole-tree staleness."""
        return self._shape_generation

    # ------------------------------------------------------------------
    # structure navigation
    # ------------------------------------------------------------------
    def parent_of(self, entry: Entry | int) -> Optional[Entry]:
        """The parent entry, or ``None`` for roots."""
        eid = self._resolve(entry)
        parent_eid = self._parent[eid]
        return None if parent_eid is None else self._entries[parent_eid]

    def children_of(self, entry: Entry | int) -> List[Entry]:
        """The child entries, in insertion order."""
        return [self._entries[c] for c in self._children[self._resolve(entry)]]

    def children_ids(self, entry: Entry | int) -> Tuple[int, ...]:
        """Ids of the children of ``entry``."""
        return tuple(self._children[self._resolve(entry)])

    def parent_id(self, entry: Entry | int) -> Optional[int]:
        """Id of the parent of ``entry`` (``None`` for roots)."""
        return self._parent[self._resolve(entry)]

    def root_ids(self) -> Tuple[int, ...]:
        """Ids of the root entries."""
        return tuple(self._roots)

    def roots(self) -> List[Entry]:
        """The root entries."""
        return [self._entries[r] for r in self._roots]

    def ancestors_of(self, entry: Entry | int) -> Iterator[Entry]:
        """Proper ancestors, nearest first."""
        cursor = self._parent[self._resolve(entry)]
        while cursor is not None:
            yield self._entries[cursor]
            cursor = self._parent[cursor]

    def descendants_of(self, entry: Entry | int) -> Iterator[Entry]:
        """Proper descendants, in document order."""
        eid = self._resolve(entry)
        for node_eid in self._iter_subtree_ids(eid):
            if node_eid != eid:
                yield self._entries[node_eid]

    def is_ancestor(self, ancestor: Entry | int, descendant: Entry | int) -> bool:
        """O(1) proper ancestor test via interval numbering."""
        self._ensure_order()
        assert self._pre is not None and self._post is not None
        a = self._resolve(ancestor)
        d = self._resolve(descendant)
        return self._pre[a] < self._pre[d] and self._post[d] < self._post[a]

    def depth_of(self, entry: Entry | int) -> int:
        """Depth of ``entry`` (roots have depth 1)."""
        self._ensure_order()
        assert self._depth is not None
        return self._depth[self._resolve(entry)]

    def max_depth(self) -> int:
        """The depth of the deepest entry (0 for an empty instance)."""
        self._ensure_order()
        assert self._depth is not None
        return max(self._depth.values(), default=0)

    def interval_of(self, entry: Entry | int) -> Tuple[int, int]:
        """The ``(pre, post)`` interval of ``entry``."""
        self._ensure_order()
        assert self._pre is not None and self._post is not None
        eid = self._resolve(entry)
        return (self._pre[eid], self._post[eid])

    # ------------------------------------------------------------------
    # iteration and size
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Entry]:
        """Iterate entries in document (preorder) order — the sorted order
        assumed by the structural-join evaluation of [9]."""
        self._ensure_order()
        assert self._order is not None
        return (self._entries[eid] for eid in self._order)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry: Entry | int | DN | str) -> bool:
        try:
            self._resolve(entry)
        except UnknownEntryError:
            return False
        return True

    def entry_ids(self) -> Tuple[int, ...]:
        """All entry ids in document order."""
        self._ensure_order()
        assert self._order is not None
        return tuple(self._order)

    def all_entry_id_set(self) -> Set[int]:
        """All entry ids as a set (evaluation scope ``D``)."""
        return set(self._entries.keys())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(self, entry: Entry | int | DN | str) -> int:
        if isinstance(entry, Entry):
            eid = entry.eid
        elif isinstance(entry, int):
            eid = entry
        else:
            dn = parse_dn(entry) if isinstance(entry, str) else entry
            found = self._by_dn.get(str(dn.normalized()))
            if found is None:
                raise UnknownEntryError(f"no entry with DN {str(dn)!r}")
            eid = found
        if eid not in self._entries:
            raise UnknownEntryError(f"unknown entry id {eid}")
        return eid

    def _iter_subtree_ids(self, eid: int) -> Iterator[int]:
        stack = [eid]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def _on_class_added(self, eid: int, object_class: str) -> None:
        self._class_index.setdefault(object_class, set()).add(eid)
        self._bump_class(object_class)
        self._notify_entry_changed(eid)

    def _on_class_removed(self, eid: int, object_class: str) -> None:
        bucket = self._class_index.get(object_class)
        if bucket is not None:
            bucket.discard(eid)
            if not bucket:
                del self._class_index[object_class]
            self._bump_class(object_class)
        self._notify_entry_changed(eid)

    def _notify_entry_changed(self, eid: int) -> None:
        indexes = self.indexes
        if indexes is not None:
            indexes.entry_changed(eid)

    def _notify_entry_removed(self, eid: int) -> None:
        indexes = self.indexes
        if indexes is not None:
            indexes.entry_removed(eid)

    def _bump_class(self, object_class: str) -> None:
        self._class_version[object_class] = (
            self._class_version.get(object_class, 0) + 1
        )

    def _invalidate_order(self) -> None:
        self._shape_generation += 1
        self._pre = None
        self._post = None
        self._depth = None
        self._order = None

    def _ensure_order(self) -> None:
        if self._order is not None:
            return
        pre: Dict[int, int] = {}
        post: Dict[int, int] = {}
        depth: Dict[int, int] = {}
        order: List[int] = []
        clock = 0
        for root in self._roots:
            # Iterative DFS assigning pre on entry and post on exit.
            stack: List[Tuple[int, int, bool]] = [(root, 1, False)]
            while stack:
                node, d, exiting = stack.pop()
                if exiting:
                    post[node] = clock
                    clock += 1
                    continue
                pre[node] = clock
                clock += 1
                depth[node] = d
                order.append(node)
                stack.append((node, d, True))
                for child in reversed(self._children[node]):
                    stack.append((child, d + 1, False))
        self._pre = pre
        self._post = post
        self._depth = depth
        self._order = order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectoryInstance(|D|={len(self._entries)}, roots={len(self._roots)})"
