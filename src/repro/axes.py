"""Hierarchical axes shared by the query language and the structure schema.

The structure schema (Definition 2.4) relates object classes along four
axes — child, descendant, parent, ancestor — and the hierarchical selection
queries of [9] select along the same four axes.  Both subsystems use this
enum so that the Figure 4 translation is a one-to-one mapping.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Axis"]


class Axis(str, Enum):
    """One of the four hierarchical axes.

    The value is the single-letter code used in the paper's query syntax
    (``c``, ``p``, ``d``, ``a``).
    """

    CHILD = "c"
    PARENT = "p"
    DESCENDANT = "d"
    ANCESTOR = "a"

    @property
    def downward(self) -> bool:
        """Whether the axis points from an entry towards its subtree."""
        return self in (Axis.CHILD, Axis.DESCENDANT)

    @property
    def transitive(self) -> "Axis":
        """The transitive closure of the axis (child -> descendant,
        parent -> ancestor); descendant/ancestor map to themselves."""
        if self is Axis.CHILD:
            return Axis.DESCENDANT
        if self is Axis.PARENT:
            return Axis.ANCESTOR
        return self

    @property
    def inverse(self) -> "Axis":
        """The axis seen from the other endpoint."""
        return _INVERSE[self]

    @property
    def arrow(self) -> str:
        """Unicode arrow used in element notation (matching the paper)."""
        return _ARROWS[self]


_INVERSE = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
}

_ARROWS = {
    Axis.CHILD: "→",        # ->
    Axis.DESCENDANT: "→→",  # ->>
    Axis.PARENT: "←",       # <-
    Axis.ANCESTOR: "←←",    # <<-
}
