"""Exception hierarchy for the bounding-schemas library.

Every error raised by this package derives from :class:`BoundingSchemaError`,
so callers can catch one type to handle any library failure.  The hierarchy
mirrors the subsystems of the paper: the data model (Definitions 2.1-2.5),
query evaluation (Section 3), updates (Section 4), and consistency
(Section 5).
"""

from __future__ import annotations


class BoundingSchemaError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(BoundingSchemaError):
    """A directory-instance invariant was violated (Definition 2.1)."""


class UnknownEntryError(ModelError):
    """An entry id or distinguished name does not exist in the instance."""


class DuplicateEntryError(ModelError):
    """An entry with the same distinguished name already exists."""


class ForestInvariantError(ModelError):
    """An operation would break the forest structure of the instance."""


class TypeViolationError(ModelError):
    """An attribute value does not belong to the domain of its type."""


class UnknownAttributeError(ModelError):
    """An attribute name has no registered type (the ``tau`` function is
    partial on it)."""


class SchemaError(BoundingSchemaError):
    """A schema definition is malformed (Definitions 2.2-2.5)."""


class ClassHierarchyError(SchemaError):
    """The core-class graph is not a tree rooted at ``top``."""


class QueryError(BoundingSchemaError):
    """A hierarchical selection query is malformed or cannot be evaluated."""


class FilterSyntaxError(QueryError):
    """An LDAP-style filter string could not be parsed."""


class UpdateError(BoundingSchemaError):
    """An update operation or transaction is invalid (Section 4.1)."""


class IllegalUpdateError(UpdateError):
    """An update was rejected because it would make the instance illegal."""


class ConsistencyError(BoundingSchemaError):
    """The consistency engine was given malformed input (Section 5)."""


class InconsistentSchemaError(ConsistencyError):
    """Raised when an operation requires a consistent schema but the
    inference system derives the empty-class element (``⊢ □∅``)."""


class LdifError(BoundingSchemaError):
    """An LDIF document could not be parsed or serialized."""


class DslError(BoundingSchemaError):
    """A bounding-schema DSL document could not be parsed."""
