"""Exception hierarchy for the bounding-schemas library.

Every error raised by this package derives from :class:`BoundingSchemaError`,
so callers can catch one type to handle any library failure.  The hierarchy
mirrors the subsystems of the paper: the data model (Definitions 2.1-2.5),
query evaluation (Section 3), updates (Section 4), and consistency
(Section 5).
"""

from __future__ import annotations


class BoundingSchemaError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(BoundingSchemaError):
    """A directory-instance invariant was violated (Definition 2.1)."""


class UnknownEntryError(ModelError):
    """An entry id or distinguished name does not exist in the instance."""


class DuplicateEntryError(ModelError):
    """An entry with the same distinguished name already exists."""


class ForestInvariantError(ModelError):
    """An operation would break the forest structure of the instance."""


class TypeViolationError(ModelError):
    """An attribute value does not belong to the domain of its type."""


class UnknownAttributeError(ModelError):
    """An attribute name has no registered type (the ``tau`` function is
    partial on it)."""


class SchemaError(BoundingSchemaError):
    """A schema definition is malformed (Definitions 2.2-2.5)."""


class ClassHierarchyError(SchemaError):
    """The core-class graph is not a tree rooted at ``top``."""


class QueryError(BoundingSchemaError):
    """A hierarchical selection query is malformed or cannot be evaluated."""


class FilterSyntaxError(QueryError):
    """An LDAP-style filter string could not be parsed."""


class UpdateError(BoundingSchemaError):
    """An update operation or transaction is invalid (Section 4.1)."""


class IllegalUpdateError(UpdateError):
    """An update was rejected because it would make the instance illegal."""


class ConsistencyError(BoundingSchemaError):
    """The consistency engine was given malformed input (Section 5)."""


class InconsistentSchemaError(ConsistencyError):
    """Raised when an operation requires a consistent schema but the
    inference system derives the empty-class element (``⊢ □∅``)."""


class StoreError(BoundingSchemaError):
    """A durable-store operation failed (the snapshot+WAL engine)."""


class CorruptJournalError(StoreError):
    """A journal record is damaged beyond the normal torn-tail case.

    Carries ``record_index`` (0-based index of the offending record, or
    ``None`` when the damage precedes any decodable record) and
    ``offset`` (byte offset of the damage in the journal file, when
    known).
    """

    def __init__(
        self,
        message: str,
        record_index: "int | None" = None,
        offset: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.record_index = record_index
        self.offset = offset


class StoreLockedError(StoreError):
    """Another process (or live handle) holds the store's advisory lock.

    Carries ``holder_pid``: the pid recorded in the lock file by the
    current holder, or ``None`` when it could not be determined (legacy
    lock files, or the holder died between ``flock`` and the pid write).
    """

    def __init__(self, message: str, holder_pid: "int | None" = None) -> None:
        super().__init__(message)
        self.holder_pid = holder_pid


class StaleJournalError(StoreError):
    """The journal's generation id predates the snapshot's: it was
    already folded into the snapshot by a compaction that crashed before
    resetting the journal.  Replaying it would double-apply every
    transaction."""


class StoreReadOnlyError(StoreError):
    """A mutation was attempted on a store opened in degraded read-only
    mode (recovery found damage) or poisoned by a failed journal write."""


class ShardMapError(StoreError):
    """A sharded store's shard map is malformed, damaged, or missing."""


class ShardRoutingError(StoreError):
    """A DN (or a whole transaction) does not route to the expected
    shard: either no shard base is an ancestor-or-self of the DN, or a
    transaction's operations span more than one shard.  Raised instead
    of silently mis-committing into the wrong shard."""


class StaleReadError(StoreError):
    """A ``refresh(strict=True)`` could not bring a read-only view up to
    the committed state currently on disk (the writer compacted or
    repaired the store underneath the reader faster than the reader
    could re-bootstrap).  The reader's view is still *consistent* — it
    is a committed state the writer really passed through — just not
    the newest one."""


class ReplicationError(StoreError):
    """The replication stream contract was violated: a frames batch that
    is not a clean committed slice, data frames for a generation no
    schema frame announced, a schema fingerprint mismatch between
    primary and replica, or a follower position the primary can no
    longer serve incrementally."""


class ReplicaDivergedError(ReplicationError):
    """The follower's durable position cannot be aligned with the
    stream (the primary compacted past it, or the local copy belongs to
    a different history).  Recoverable: resync from a fresh snapshot."""


class LdifError(BoundingSchemaError):
    """An LDIF document could not be parsed or serialized."""


class DslError(BoundingSchemaError):
    """A bounding-schema DSL document could not be parsed."""
