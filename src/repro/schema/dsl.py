"""A concrete syntax for bounding-schemas.

The paper defines bounding-schemas abstractly; a usable tool needs a way
to author them in files.  This module defines a small line-oriented DSL
and its parser/serializer (round-trip: ``parse_dsl(serialize_dsl(s))``
is equivalent to ``s``).

Directives (one per line; ``#`` starts a comment; blank lines ignored)::

    class NAME [extends PARENT]        # core class (parent defaults to top)
    auxiliary NAME                     # auxiliary class
    allow CORE: AUX[, AUX...]          # Aux(CORE) entries
    attributes CLASS: required A[, B]; allowed C[, D]
    require class C[, C...]            # C □ elements
    require A -> B                     # every A entry has a B child
    require A ->> B                    # ... a B descendant
    require A <- B                     # ... a B parent
    require A <<- B                    # ... a B ancestor
    forbid A -> B                      # no B child of an A entry
    forbid A ->> B                     # no B descendant of an A entry
    key ATTR[, ATTR...]                # Section 6.1: directory-wide keys
    single-valued ATTR[, ATTR...]      # Section 6.1: numeric restriction
    extensible CLASS[, CLASS...]       # Section 6.1: extensible object
    referential ATTR[, ATTR...]        # values must be DNs of existing entries

Example::

    class person
    class orgUnit extends orgGroup
    auxiliary online
    allow person: online
    attributes person: required name, uid
    require class person
    require orgGroup ->> person
    forbid person -> top
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.axes import Axis
from repro.errors import DslError
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import TOP, ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.extras import SchemaExtras
from repro.schema.structure_schema import StructureSchema

__all__ = ["parse_dsl", "serialize_dsl", "load_dsl", "dump_dsl"]

_ARROWS: Tuple[Tuple[str, Axis], ...] = (
    ("<<-", Axis.ANCESTOR),
    ("->>", Axis.DESCENDANT),
    ("<-", Axis.PARENT),
    ("->", Axis.CHILD),
)


def _split_names(text: str, where: str) -> List[str]:
    names = [n.strip() for n in text.split(",")]
    if any(not n for n in names):
        raise DslError(f"empty name in {where}: {text!r}")
    return names


class _Parser:
    def __init__(self) -> None:
        # Class declarations are collected first and applied in an order
        # that satisfies parent-before-child, so authors may write
        # subclasses before superclasses.
        self.core_decls: List[Tuple[str, str]] = []
        self.aux_decls: List[str] = []
        self.allow_decls: List[Tuple[str, List[str]]] = []
        self.attribute_decls: Dict[str, Tuple[List[str], List[str]]] = {}
        self.structure = StructureSchema()
        self.extras = SchemaExtras()
        self.uses_extras = False

    def feed(self, line: str, lineno: int) -> None:
        text = line.split("#", 1)[0].strip()
        if not text:
            return
        try:
            self._dispatch(text)
        except DslError:
            raise
        except Exception as exc:
            raise DslError(f"line {lineno}: {exc}") from exc

    def _dispatch(self, text: str) -> None:
        head, _, rest = text.partition(" ")
        rest = rest.strip()
        if head == "class":
            name, _, parent_part = rest.partition(" extends ")
            name = name.strip()
            parent = parent_part.strip() if parent_part else TOP
            if not name:
                raise DslError("class directive needs a name")
            self.core_decls.append((name, parent))
        elif head == "auxiliary":
            if not rest:
                raise DslError("auxiliary directive needs a name")
            self.aux_decls.append(rest)
        elif head == "allow":
            core, _, auxes = rest.partition(":")
            if not auxes:
                raise DslError("allow directive needs 'CORE: AUX[, ...]'")
            self.allow_decls.append((core.strip(), _split_names(auxes, "allow")))
        elif head == "attributes":
            self._parse_attributes(rest)
        elif head == "require":
            self._parse_require(rest)
        elif head == "forbid":
            self._parse_edge(rest, forbidden=True)
        elif head == "key":
            self.extras.declare_key(*_split_names(rest, "key"))
            self.uses_extras = True
        elif head == "single-valued":
            self.extras.declare_single_valued(*_split_names(rest, "single-valued"))
            self.uses_extras = True
        elif head == "extensible":
            self.extras.declare_extensible(*_split_names(rest, "extensible"))
            self.uses_extras = True
        elif head == "referential":
            self.extras.declare_referential(*_split_names(rest, "referential"))
            self.uses_extras = True
        else:
            raise DslError(f"unknown directive {head!r}")

    def _parse_attributes(self, rest: str) -> None:
        object_class, _, spec = rest.partition(":")
        object_class = object_class.strip()
        if not object_class:
            raise DslError("attributes directive needs a class name")
        required: List[str] = []
        allowed: List[str] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            keyword, _, names = part.partition(" ")
            if keyword == "required":
                required.extend(_split_names(names, "attributes/required"))
            elif keyword == "allowed":
                allowed.extend(_split_names(names, "attributes/allowed"))
            else:
                raise DslError(
                    f"attributes parts are 'required ...' or 'allowed ...', "
                    f"got {keyword!r}"
                )
        if object_class in self.attribute_decls:
            raise DslError(f"attributes for {object_class!r} declared twice")
        self.attribute_decls[object_class] = (required, allowed)

    def _parse_require(self, rest: str) -> None:
        if rest.startswith("class "):
            for name in _split_names(rest[len("class "):], "require class"):
                self.structure.require_class(name)
            return
        self._parse_edge(rest, forbidden=False)

    def _parse_edge(self, rest: str, forbidden: bool) -> None:
        for symbol, axis in _ARROWS:
            if f" {symbol} " in rest:
                left, right = rest.split(f" {symbol} ", 1)
                source, target = left.strip(), right.strip()
                if not source or not target:
                    raise DslError(f"malformed edge {rest!r}")
                if forbidden:
                    if not axis.downward:
                        raise DslError(
                            "forbid supports only -> and ->> (Definition 2.4)"
                        )
                    self.structure.forbid(source, axis, target)
                else:
                    self.structure.require(source, axis, target)
                return
        raise DslError(f"no arrow (->, ->>, <-, <<-) in edge {rest!r}")

    def build(self) -> DirectorySchema:
        classes = ClassSchema()
        pending = list(self.core_decls)
        known = {TOP}
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for name, parent in pending:
                if parent in known:
                    classes.add_core(name, parent=parent)
                    known.add(name)
                    progress = True
                else:
                    remaining.append((name, parent))
            pending = remaining
        if pending:
            missing = ", ".join(f"{n} extends {p}" for n, p in pending)
            raise DslError(f"unresolvable class parents: {missing}")
        for name in self.aux_decls:
            classes.add_auxiliary(name)
        for core, auxes in self.allow_decls:
            classes.allow_auxiliary(core, *auxes)

        attributes = AttributeSchema()
        for object_class, (required, allowed) in self.attribute_decls.items():
            attributes.declare(object_class, required=required, allowed=allowed)

        schema = DirectorySchema(attributes, classes, self.structure)
        if self.uses_extras:
            schema.extras = self.extras
        try:
            return schema.validate()
        except Exception as exc:
            raise DslError(f"schema fails validation: {exc}") from exc


def parse_dsl(text: str) -> DirectorySchema:
    """Parse DSL ``text`` into a validated :class:`DirectorySchema`.

    Raises
    ------
    DslError
        On unknown directives, malformed lines, or schema
        well-formedness failures (with line context where possible).
    """
    parser = _Parser()
    for lineno, line in enumerate(text.splitlines(), start=1):
        parser.feed(line, lineno)
    return parser.build()


def serialize_dsl(schema: DirectorySchema) -> str:
    """Render a schema back into DSL text (stable, diff-friendly order)."""
    lines: List[str] = ["# bounding-schema"]
    classes = schema.class_schema

    def emit_core(name: str) -> None:
        for child in sorted(classes.children(name)):
            parent_clause = "" if name == TOP else f" extends {name}"
            lines.append(f"class {child}{parent_clause}")
            emit_core(child)

    emit_core(TOP)
    for aux in sorted(classes.auxiliary_classes()):
        lines.append(f"auxiliary {aux}")
    for core in sorted(classes.core_classes()):
        auxes = sorted(classes.aux(core))
        if auxes:
            lines.append(f"allow {core}: {', '.join(auxes)}")

    for object_class, required, allowed in sorted(schema.attribute_schema.items()):
        parts = []
        if required:
            parts.append("required " + ", ".join(sorted(required)))
        extra_allowed = sorted(allowed - required)
        if extra_allowed:
            parts.append("allowed " + ", ".join(extra_allowed))
        lines.append(f"attributes {object_class}: {'; '.join(parts)}".rstrip(": "))

    structure = schema.structure_schema
    if structure.required_classes:
        lines.append("require class " + ", ".join(sorted(structure.required_classes)))
    symbol_of = {axis: symbol for symbol, axis in _ARROWS}
    for edge in sorted(structure.required_edges, key=str):
        lines.append(f"require {edge.source} {symbol_of[edge.axis]} {edge.target}")
    for edge in sorted(structure.forbidden_edges, key=str):
        lines.append(f"forbid {edge.source} {symbol_of[edge.axis]} {edge.target}")

    extras = schema.extras
    if extras is not None:
        if extras.key_attributes:
            lines.append("key " + ", ".join(sorted(extras.key_attributes)))
        plain_single = sorted(extras.single_valued_attributes - extras.key_attributes)
        if plain_single:
            lines.append("single-valued " + ", ".join(plain_single))
        if extras.extensible_classes:
            lines.append("extensible " + ", ".join(sorted(extras.extensible_classes)))
        if extras.referential_attributes:
            lines.append(
                "referential " + ", ".join(sorted(extras.referential_attributes))
            )
    return "\n".join(lines) + "\n"


def load_dsl(path: str) -> DirectorySchema:
    """Parse a DSL file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dsl(handle.read())


def dump_dsl(schema: DirectorySchema, path: str) -> None:
    """Write ``schema`` to ``path`` in DSL form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize_dsl(schema))
