"""Schema evolution analysis (Section 6.2 made executable).

The paper contrasts bounding-schemas with rigid traditional schemas:
"many kinds of schema evolution, such as adding a new allowed attribute
to an object class, or adding a new auxiliary object class ... is
extremely lightweight, involving no modifications to existing directory
entries".  This module turns that observation into a tool: given an old
and a new bounding-schema, :class:`EvolutionAnalyzer` diffs them into
individual :class:`SchemaChange` records and classifies each as

``relaxing``
    every instance legal under the old schema remains legal under the
    new one — deploy without touching data (the paper's "lightweight"
    case: new allowed attributes, new classes, widened ``Aux``, dropped
    requirements, dropped forbidden elements);
``narrowing``
    legality may be lost — existing data must be re-validated (new
    required attributes, new required/forbidden structure elements, new
    required classes, removed classes, narrowed ``Aux``, reparented
    cores, removed allowed attributes).

The classification is *conservative*: anything not provably relaxing is
reported as narrowing.  ``tests/test_evolution.py`` property-tests the
contract: a diff with only relaxing changes never invalidates a legal
instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from typing import TYPE_CHECKING

from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.legality.report import LegalityReport

__all__ = ["SchemaChange", "EvolutionReport", "EvolutionAnalyzer"]

RELAXING = "relaxing"
NARROWING = "narrowing"


@dataclass(frozen=True)
class SchemaChange:
    """One atomic difference between two schemas."""

    kind: str
    detail: str
    classification: str

    def __str__(self) -> str:
        return f"[{self.classification}] {self.kind}: {self.detail}"


@dataclass
class EvolutionReport:
    """All differences, with the overall deployment verdict."""

    changes: List[SchemaChange] = field(default_factory=list)

    @property
    def lightweight(self) -> bool:
        """Whether the evolution is deployable without re-validation
        (every change is relaxing)."""
        return all(c.classification == RELAXING for c in self.changes)

    def narrowing_changes(self) -> List[SchemaChange]:
        """The changes that force re-validation."""
        return [c for c in self.changes if c.classification == NARROWING]

    def __iter__(self):
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __str__(self) -> str:
        if not self.changes:
            return "no schema changes"
        verdict = "LIGHTWEIGHT" if self.lightweight else "NEEDS RE-VALIDATION"
        lines = [f"{verdict}: {len(self.changes)} change(s)"]
        lines.extend(f"  {c}" for c in self.changes)
        return "\n".join(lines)


class EvolutionAnalyzer:
    """Diffs two bounding-schemas and classifies every change."""

    def __init__(self, old: DirectorySchema, new: DirectorySchema) -> None:
        self.old = old
        self.new = new

    # ------------------------------------------------------------------
    def analyze(self) -> EvolutionReport:
        """The full classified diff."""
        report = EvolutionReport()
        self._diff_classes(report)
        self._diff_attributes(report)
        self._diff_structure(report)
        return report

    def revalidate(self, instance: DirectoryInstance) -> "LegalityReport":
        """Check an (old-legal) instance against the new schema — the
        step narrowing evolutions require."""
        from repro.legality.checker import LegalityChecker

        return LegalityChecker(self.new).check(instance)

    # ------------------------------------------------------------------
    def _add(self, report: EvolutionReport, kind: str, detail: str,
             classification: str) -> None:
        report.changes.append(SchemaChange(kind, detail, classification))

    def _diff_classes(self, report: EvolutionReport) -> None:
        old_c, new_c = self.old.class_schema, self.new.class_schema

        for name in sorted(new_c.core_classes() - old_c.core_classes()):
            self._add(report, "core-class-added", name, RELAXING)
        for name in sorted(old_c.core_classes() - new_c.core_classes()):
            self._add(report, "core-class-removed", name, NARROWING)
        for name in sorted(new_c.auxiliary_classes() - old_c.auxiliary_classes()):
            self._add(report, "auxiliary-class-added", name, RELAXING)
        for name in sorted(old_c.auxiliary_classes() - new_c.auxiliary_classes()):
            self._add(report, "auxiliary-class-removed", name, NARROWING)

        for name in sorted(old_c.core_classes() & new_c.core_classes()):
            if old_c.parent(name) != new_c.parent(name):
                self._add(
                    report, "core-class-reparented",
                    f"{name}: {old_c.parent(name)} → {new_c.parent(name)}",
                    NARROWING,
                )
            old_aux = old_c.aux(name)
            new_aux = new_c.aux(name)
            for aux in sorted(new_aux - old_aux):
                self._add(report, "aux-allowed", f"{name} may now carry {aux}",
                          RELAXING)
            for aux in sorted(old_aux - new_aux):
                self._add(report, "aux-withdrawn",
                          f"{name} may no longer carry {aux}", NARROWING)

    def _diff_attributes(self, report: EvolutionReport) -> None:
        old_a, new_a = self.old.attribute_schema, self.new.attribute_schema
        for name in sorted(old_a.classes() | new_a.classes()):
            old_required, old_allowed = old_a.required(name), old_a.allowed(name)
            new_required, new_allowed = new_a.required(name), new_a.allowed(name)
            for attr in sorted(new_required - old_required):
                self._add(report, "attribute-now-required",
                          f"{name}.{attr}", NARROWING)
            for attr in sorted(old_required - new_required):
                self._add(report, "attribute-no-longer-required",
                          f"{name}.{attr}", RELAXING)
            for attr in sorted((new_allowed - new_required) - old_allowed):
                self._add(report, "attribute-now-allowed",
                          f"{name}.{attr}", RELAXING)
            for attr in sorted(old_allowed - new_allowed):
                self._add(report, "attribute-no-longer-allowed",
                          f"{name}.{attr}", NARROWING)

    def _diff_structure(self, report: EvolutionReport) -> None:
        old_s, new_s = self.old.structure_schema, self.new.structure_schema
        for name in sorted(new_s.required_classes - old_s.required_classes):
            self._add(report, "class-now-required", f"{name} □", NARROWING)
        for name in sorted(old_s.required_classes - new_s.required_classes):
            self._add(report, "class-no-longer-required", f"{name} □", RELAXING)
        for edge in sorted(new_s.required_edges - old_s.required_edges, key=str):
            self._add(report, "relationship-now-required", str(edge), NARROWING)
        for edge in sorted(old_s.required_edges - new_s.required_edges, key=str):
            self._add(report, "relationship-no-longer-required", str(edge),
                      RELAXING)
        for edge in sorted(new_s.forbidden_edges - old_s.forbidden_edges, key=str):
            self._add(report, "relationship-now-forbidden", str(edge), NARROWING)
        for edge in sorted(old_s.forbidden_edges - new_s.forbidden_edges, key=str):
            self._add(report, "relationship-no-longer-forbidden", str(edge),
                      RELAXING)
