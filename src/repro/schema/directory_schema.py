"""Directory schemas (Definition 2.5): the full bounding-schema.

``S = (A, H, S)`` packages an attribute schema, a class schema, and a
structure schema.  :meth:`DirectorySchema.validate` enforces the
cross-component well-formedness conditions the paper states in passing:

* every class mentioned by the attribute schema exists in the class
  schema (core or auxiliary);
* every class mentioned by the structure schema is a **core** class
  (``Cr ⊆ Cc`` and ``Er, Ef ⊆ Cc × ... × Cc``, Definition 2.4).

:meth:`DirectorySchema.all_elements` exposes the schema as the element set
``Γ`` consumed by the consistency engine (Section 5): structure elements
plus the subclass/disjointness elements induced by the class hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import SchemaError
from repro.model.attributes import AttributeRegistry
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.elements import SchemaElement
from repro.schema.extras import SchemaExtras
from repro.schema.structure_schema import StructureSchema

__all__ = ["DirectorySchema"]


@dataclass
class DirectorySchema:
    """A bounding-schema ``S = (A, H, S)`` (Definition 2.5).

    Parameters
    ----------
    attribute_schema:
        The content bound on attributes (Definition 2.2).
    class_schema:
        The content bound on object classes (Definition 2.3).
    structure_schema:
        The bound on forest shape (Definition 2.4).
    registry:
        Optional attribute registry realizing ``tau``; used by checkers
        that type-check values and by the witness synthesizer to invent
        values for required attributes.
    extras:
        Optional Section 6.1 extensions (single-valued attributes, keys,
        extensible object classes).
    """

    attribute_schema: AttributeSchema = field(default_factory=AttributeSchema)
    class_schema: ClassSchema = field(default_factory=ClassSchema)
    structure_schema: StructureSchema = field(default_factory=StructureSchema)
    registry: Optional[AttributeRegistry] = None
    extras: Optional["SchemaExtras"] = None

    def validate(self) -> "DirectorySchema":
        """Check cross-component well-formedness; returns ``self``.

        Raises
        ------
        SchemaError
            With a message naming every offending class.
        """
        problems: List[str] = []
        for object_class in sorted(self.attribute_schema.classes()):
            if object_class not in self.class_schema:
                problems.append(
                    f"attribute schema mentions unknown class {object_class!r}"
                )
        for object_class in sorted(self.structure_schema.mentioned_classes()):
            if not self.class_schema.is_core(object_class):
                problems.append(
                    f"structure schema mentions non-core class {object_class!r} "
                    "(Definition 2.4 ranges over Cc)"
                )
        if self.extras is not None:
            problems.extend(self.extras.validate_against(self))
        if problems:
            raise SchemaError("; ".join(problems))
        return self

    def content_components(self) -> tuple:
        """The content schema ``(A, H)`` as a pair (Section 3.1)."""
        return (self.attribute_schema, self.class_schema)

    def all_elements(self) -> Iterator[SchemaElement]:
        """The element set ``Γ`` of Theorem 5.2: the elements of ``H``
        (subclass edges and disjointness of incomparable cores) and of
        ``S`` (required classes, required and forbidden relationships)."""
        yield from self.class_schema.subclass_elements()
        yield from self.class_schema.disjoint_elements()
        yield from self.structure_schema.elements()

    def size(self) -> int:
        """``|S|`` — a rough element count for complexity accounting."""
        return (
            len(self.attribute_schema)
            + len(self.class_schema.all_classes())
            + self.structure_schema.size()
        )
