"""Attribute schemas (Definition 2.2).

An attribute schema ``A = (C, A, r, a)`` names the object classes and
attributes in play and gives, per class, the *required* attributes ``r(c)``
(each entry of the class must hold one or more values) and the *allowed*
attributes ``a(c)`` (each entry may hold zero or more values), with the
well-formedness condition ``r(c) ⊆ a(c)``.

Attribute schemas are part of the standard LDAP schema machinery; the
bounding-schema proposal keeps them as the lower/upper bound on entry
*content* at the attribute level.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, Tuple

from repro.errors import SchemaError
from repro.model.attributes import OBJECT_CLASS

__all__ = ["AttributeSchema"]


class AttributeSchema:
    """The attribute schema ``(C, A, r, a)``.

    Classes are registered with :meth:`declare`; ``allowed`` always
    includes ``required`` so ``r(c) ⊆ a(c)`` holds by construction.  The
    reserved ``objectClass`` attribute is implicitly allowed for every
    class (every entry necessarily carries it, Definition 2.1).
    """

    def __init__(self) -> None:
        self._required: Dict[str, FrozenSet[str]] = {}
        self._allowed: Dict[str, FrozenSet[str]] = {}

    def declare(
        self,
        object_class: str,
        required: Iterable[str] = (),
        allowed: Iterable[str] = (),
    ) -> "AttributeSchema":
        """Register ``object_class`` with its required and allowed
        attributes; returns ``self`` for chaining.

        Raises
        ------
        SchemaError
            If the class was already declared.
        """
        if object_class in self._required:
            raise SchemaError(f"class {object_class!r} already declared")
        required_set = frozenset(required)
        self._required[object_class] = required_set
        self._allowed[object_class] = required_set | frozenset(allowed)
        return self

    def required(self, object_class: str) -> FrozenSet[str]:
        """``r(c)`` — required attributes (empty for unknown classes)."""
        return self._required.get(object_class, frozenset())

    def allowed(self, object_class: str) -> FrozenSet[str]:
        """``a(c)`` — allowed attributes, always a superset of ``r(c)``."""
        return self._allowed.get(object_class, frozenset())

    def classes(self) -> FrozenSet[str]:
        """The classes ``C`` mentioned by this attribute schema."""
        return frozenset(self._required)

    def attributes(self) -> FrozenSet[str]:
        """The attributes ``A`` mentioned by this attribute schema."""
        names = {OBJECT_CLASS}
        for allowed in self._allowed.values():
            names |= allowed
        return frozenset(names)

    def allowed_by_any(self, classes: AbstractSet[str], attribute: str) -> bool:
        """Whether some class in ``classes`` allows ``attribute`` — the
        per-pair condition of Definition 2.7 (Attribute Schema, second
        bullet)."""
        if attribute == OBJECT_CLASS:
            return True
        return any(attribute in self._allowed.get(c, ()) for c in classes)

    def items(self) -> Iterator[Tuple[str, FrozenSet[str], FrozenSet[str]]]:
        """Iterate ``(class, required, allowed)`` triples."""
        for object_class in self._required:
            yield object_class, self._required[object_class], self._allowed[object_class]

    def max_allowed_size(self) -> int:
        """``max_c |a(c)|`` — a factor of the Theorem 3.1 bound."""
        return max((len(a) for a in self._allowed.values()), default=0)

    def __contains__(self, object_class: str) -> bool:
        return object_class in self._required

    def __len__(self) -> int:
        return len(self._required)
