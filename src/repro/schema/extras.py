"""Section 6.1 schema extensions.

The paper's design-rationale section describes three orthogonal schema
features that "can easily be incorporated" into bounding-schemas; this
module incorporates them:

* **Numeric restrictions** — particular attributes declared
  *single-valued* (e.g. ``socialSecurityNumber``); legal entries hold at
  most one value for them.
* **Keys** — given LDAP's loose object classes, a key attribute must be
  unique across *all* entries in the directory instance, not just within
  one class.
* **Extensible object** — an LDAPv3 object class whose entries "allow all
  possible attributes"; membership in an extensible class exempts an
  entry from the allowed-attribute upper bound.

These checks are enforced by :class:`repro.legality.extras.ExtrasChecker`
on top of the core legality test; they are deliberately orthogonal to the
bounding-schema elements, as argued in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, Iterable, List, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schema.directory_schema import DirectorySchema

__all__ = ["SchemaExtras"]


@dataclass
class SchemaExtras:
    """Optional Section 6.1 features attached to a directory schema."""

    single_valued_attributes: Set[str] = field(default_factory=set)
    key_attributes: Set[str] = field(default_factory=set)
    extensible_classes: Set[str] = field(default_factory=set)
    #: Attributes whose values are DNs that must name existing entries
    #: (referential integrity — the paper's "keys ... as values of
    #: attributes" remark, §6.1, taken to its practical conclusion).
    referential_attributes: Set[str] = field(default_factory=set)

    def declare_single_valued(self, *attributes: str) -> "SchemaExtras":
        """Mark attributes as single-valued (numeric restriction)."""
        self.single_valued_attributes.update(attributes)
        return self

    def declare_key(self, *attributes: str) -> "SchemaExtras":
        """Mark attributes as directory-wide keys (implies
        single-valued)."""
        self.key_attributes.update(attributes)
        self.single_valued_attributes.update(attributes)
        return self

    def declare_extensible(self, *classes: str) -> "SchemaExtras":
        """Mark object classes as extensible (all attributes allowed)."""
        self.extensible_classes.update(classes)
        return self

    def declare_referential(self, *attributes: str) -> "SchemaExtras":
        """Mark attributes as entry references: every value must be the
        DN of an existing entry in the instance."""
        self.referential_attributes.update(attributes)
        return self

    def is_extensible(self, classes: Iterable[str]) -> bool:
        """Whether any of ``classes`` is extensible."""
        return any(c in self.extensible_classes for c in classes)

    def effective_single_valued(self) -> FrozenSet[str]:
        """All attributes restricted to one value (keys included)."""
        return frozenset(self.single_valued_attributes | self.key_attributes)

    def validate_against(self, schema: "DirectorySchema") -> List[str]:
        """Cross-checks against the owning schema; returns problem
        descriptions (empty when well-formed)."""
        problems: List[str] = []
        for object_class in sorted(self.extensible_classes):
            if object_class not in schema.class_schema:
                problems.append(
                    f"extensible class {object_class!r} is not in the class schema"
                )
        return problems
