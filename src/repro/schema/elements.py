"""Schema elements and their direct satisfaction semantics.

A *schema element* (Definition 2.6) is one atomic assertion a
bounding-schema makes about instances:

=====================  ============================================  ==========
Paper notation         Element                                       Bound
=====================  ============================================  ==========
``c □``                :class:`RequiredClass`                        lower
``ci → cj``            :class:`RequiredEdge` (child axis)            lower
``ci →→ cj``           :class:`RequiredEdge` (descendant axis)       lower
``cj ← ci``            :class:`RequiredEdge` (parent axis)           lower
``cj ←← ci``           :class:`RequiredEdge` (ancestor axis)         lower
``ci ↛ cj``            :class:`ForbiddenEdge` (child axis)           upper
``ci ↛↛ cj``           :class:`ForbiddenEdge` (descendant axis)      upper
``ci ⊑ cj``            :class:`Subclass`                             lower
``ci ⊥ cj``            :class:`Disjoint`                             upper
=====================  ============================================  ==========

Every element implements :meth:`SchemaElement.is_satisfied` with the direct
(quantifier-based) semantics of Definition 2.6.  This is the *oracle* used
by the naive structure checker and by the property tests; the efficient
checkers (query reduction, Figure 4) are validated against it.

The inference system of Section 5 additionally manipulates the pseudo-class
:data:`EMPTY_CLASS` (``∅``), denoting "an entry with no associated object
class".  Since legal entries always have a class (Definition 2.1), no entry
ever belongs to ``∅``; the element ``∅ □`` is the system's falsum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Set, Tuple

from repro.axes import Axis
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance

__all__ = [
    "EMPTY_CLASS",
    "SchemaElement",
    "RequiredClass",
    "RequiredEdge",
    "ForbiddenEdge",
    "Subclass",
    "Disjoint",
    "BOTTOM",
    "edge_forms",
]

#: The pseudo-class ``∅`` of Section 5: an entry with no object class.
#: No legal entry belongs to it, so requiring its existence is falsum.
EMPTY_CLASS = "∅"


class SchemaElement:
    """Base class of schema elements (immutable)."""

    def is_satisfied(self, instance: DirectoryInstance) -> bool:
        """Direct Definition 2.6 semantics of ``D |= element``."""
        raise NotImplementedError


def _members(instance: DirectoryInstance, object_class: str) -> Set[int]:
    if object_class == EMPTY_CLASS:
        return set()
    return instance.entries_with_class(object_class)


def _related(instance: DirectoryInstance, eid: int, axis: Axis) -> Iterator[Entry]:
    """All entries related to ``eid`` along ``axis``."""
    if axis is Axis.CHILD:
        yield from instance.children_of(eid)
    elif axis is Axis.PARENT:
        parent = instance.parent_of(eid)
        if parent is not None:
            yield parent
    elif axis is Axis.DESCENDANT:
        yield from instance.descendants_of(eid)
    else:
        yield from instance.ancestors_of(eid)


@dataclass(frozen=True)
class RequiredClass(SchemaElement):
    """``c □`` — at least one entry belongs to ``c`` (Definition 2.4)."""

    object_class: str

    def is_satisfied(self, instance: DirectoryInstance) -> bool:
        return bool(_members(instance, self.object_class))

    def __str__(self) -> str:
        return f"{self.object_class} □"


@dataclass(frozen=True)
class RequiredEdge(SchemaElement):
    """A required structural relationship: every entry belonging to
    ``source`` has at least one ``axis``-related entry belonging to
    ``target``.

    With ``target = EMPTY_CLASS`` this is the inference system's encoding
    of "``source`` must have no entries": no entry can have an
    ``∅``-classed relative, so the element holds exactly when ``source``
    is unpopulated.
    """

    axis: Axis
    source: str
    target: str

    def is_satisfied(self, instance: DirectoryInstance) -> bool:
        targets = _members(instance, self.target)
        for eid in _members(instance, self.source):
            if not any(rel.eid in targets for rel in _related(instance, eid, self.axis)):
                return False
        return True

    def __str__(self) -> str:
        return f"{self.source} {self.axis.arrow} {self.target}"


@dataclass(frozen=True)
class ForbiddenEdge(SchemaElement):
    """A forbidden structural relationship: no entry belonging to
    ``target`` is a child (respectively descendant) of an entry belonging
    to ``source``.  Only the downward axes exist in ``Ef``
    (Definition 2.4)."""

    axis: Axis
    source: str
    target: str

    def __post_init__(self) -> None:
        if not self.axis.downward:
            raise ValueError("forbidden relationships use child/descendant axes only")

    def is_satisfied(self, instance: DirectoryInstance) -> bool:
        targets = _members(instance, self.target)
        for eid in _members(instance, self.source):
            if any(rel.eid in targets for rel in _related(instance, eid, self.axis)):
                return False
        return True

    def __str__(self) -> str:
        slash = "↛" if self.axis is Axis.CHILD else "↛↛"
        return f"{self.source} {slash} {self.target}"


@dataclass(frozen=True)
class Subclass(SchemaElement):
    """``sub ⊑ sup`` — every entry belonging to ``sub`` also belongs to
    ``sup`` (single-inheritance consequence, Definition 2.3)."""

    sub: str
    sup: str

    def is_satisfied(self, instance: DirectoryInstance) -> bool:
        for eid in _members(instance, self.sub):
            if not instance.entry(eid).belongs_to(self.sup):
                return False
        return True

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


@dataclass(frozen=True)
class Disjoint(SchemaElement):
    """``a ⊥ b`` — no entry belongs to both ``a`` and ``b``
    (incomparable core classes under single inheritance)."""

    a: str
    b: str

    def is_satisfied(self, instance: DirectoryInstance) -> bool:
        return not (_members(instance, self.a) & _members(instance, self.b))

    def normalized(self) -> "Disjoint":
        """Order the class pair canonically (disjointness is symmetric)."""
        if self.a <= self.b:
            return self
        return Disjoint(self.b, self.a)

    def __str__(self) -> str:
        return f"{self.a} ⊥ {self.b}"


#: The falsum element ``∅ □`` — derivable iff the schema is inconsistent
#: (Theorem 5.2).
BOTTOM = RequiredClass(EMPTY_CLASS)


def edge_forms() -> Tuple[Tuple[Axis, bool], ...]:
    """All (axis, is_forbidden) structural-relationship forms of
    Definition 2.4, in the row order of Figures 4 and 5."""
    return (
        (Axis.CHILD, False),
        (Axis.PARENT, False),
        (Axis.DESCENDANT, False),
        (Axis.ANCESTOR, False),
        (Axis.CHILD, True),
        (Axis.DESCENDANT, True),
    )
