"""Class schemas (Definition 2.3).

A class schema ``H = (C, E, Aux)`` consists of

* a finite set of **core** object classes ``Cc`` containing ``top``,
  arranged by ``E`` into a single-inheritance tree rooted at ``top``;
* a finite set of **auxiliary** object classes ``Cx``; and
* a function ``Aux : Cc -> 2^Cx`` giving, per core class, the auxiliary
  classes its entries may additionally belong to.

Two derived relations drive both legality checking and the consistency
inference system:

* ``ci ⊑ cj`` (:meth:`ClassSchema.subsumes`): ``cj`` lies on the tree path
  from ``ci`` to ``top`` — entries of ``ci`` must also belong to ``cj``;
* ``ci ⊥ cj`` (:meth:`ClassSchema.incomparable`): neither subsumes the
  other — single inheritance forbids any entry from belonging to both.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ClassHierarchyError, SchemaError
from repro.schema.elements import Disjoint, Subclass

__all__ = ["TOP", "ClassSchema"]

#: The root of every core-class hierarchy (Definition 2.3).
TOP = "top"


class ClassSchema:
    """The class schema ``(Cc ∪ Cx, E, Aux)``.

    A fresh schema contains only ``top``.  Core classes are added with
    :meth:`add_core` (parent defaults to ``top``), auxiliary classes with
    :meth:`add_auxiliary`, and the ``Aux`` association with
    :meth:`allow_auxiliary`.  Because a core class's parent must already
    exist, the core graph is a tree rooted at ``top`` by construction.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {TOP: None}
        self._children: Dict[str, List[str]] = {TOP: []}
        self._auxiliary: Set[str] = set()
        self._aux_of: Dict[str, Set[str]] = {TOP: set()}
        self._depth_cache: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_core(self, name: str, parent: str = TOP) -> "ClassSchema":
        """Add a core class as a child of ``parent``; returns ``self``.

        Raises
        ------
        ClassHierarchyError
            If ``parent`` is not an existing core class.
        SchemaError
            If ``name`` already exists (as core or auxiliary).
        """
        if name in self._parent or name in self._auxiliary:
            raise SchemaError(f"class {name!r} already exists")
        if parent not in self._parent:
            raise ClassHierarchyError(
                f"parent {parent!r} of {name!r} is not a core class"
            )
        self._parent[name] = parent
        self._children[name] = []
        self._children[parent].append(name)
        self._aux_of[name] = set()
        self._depth_cache = None
        return self

    def add_auxiliary(self, name: str) -> "ClassSchema":
        """Add an auxiliary class; returns ``self``."""
        if name in self._parent or name in self._auxiliary:
            raise SchemaError(f"class {name!r} already exists")
        self._auxiliary.add(name)
        return self

    def allow_auxiliary(self, core: str, *auxiliaries: str) -> "ClassSchema":
        """Extend ``Aux(core)`` with the given auxiliary classes."""
        if core not in self._parent:
            raise SchemaError(f"{core!r} is not a core class")
        for aux in auxiliaries:
            if aux not in self._auxiliary:
                raise SchemaError(f"{aux!r} is not an auxiliary class")
            self._aux_of[core].add(aux)
        return self

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def is_core(self, name: str) -> bool:
        """Whether ``name ∈ Cc``."""
        return name in self._parent

    def is_auxiliary(self, name: str) -> bool:
        """Whether ``name ∈ Cx``."""
        return name in self._auxiliary

    def __contains__(self, name: str) -> bool:
        return name in self._parent or name in self._auxiliary

    def core_classes(self) -> FrozenSet[str]:
        """The core classes ``Cc`` (always includes ``top``)."""
        return frozenset(self._parent)

    def auxiliary_classes(self) -> FrozenSet[str]:
        """The auxiliary classes ``Cx``."""
        return frozenset(self._auxiliary)

    def all_classes(self) -> FrozenSet[str]:
        """``C = Cc ∪ Cx``."""
        return frozenset(self._parent) | frozenset(self._auxiliary)

    def aux(self, core: str) -> FrozenSet[str]:
        """``Aux(core)`` — allowed auxiliary classes of a core class."""
        return frozenset(self._aux_of.get(core, ()))

    # ------------------------------------------------------------------
    # hierarchy relations
    # ------------------------------------------------------------------
    def parent(self, name: str) -> Optional[str]:
        """The superclass of a core class (``None`` for ``top``)."""
        if name not in self._parent:
            raise SchemaError(f"{name!r} is not a core class")
        return self._parent[name]

    def children(self, name: str) -> Tuple[str, ...]:
        """Direct subclasses of a core class."""
        if name not in self._children:
            raise SchemaError(f"{name!r} is not a core class")
        return tuple(self._children[name])

    def superclasses(self, name: str) -> Tuple[str, ...]:
        """The chain from ``name`` (inclusive) up to ``top`` (inclusive) —
        exactly the core classes an entry of ``name`` must belong to."""
        if name not in self._parent:
            raise SchemaError(f"{name!r} is not a core class")
        chain: List[str] = []
        cursor: Optional[str] = name
        while cursor is not None:
            chain.append(cursor)
            cursor = self._parent[cursor]
        return tuple(chain)

    def subsumes(self, sub: str, sup: str) -> bool:
        """``sub ⊑ sup`` — ``sup`` is on ``sub``'s path to ``top``
        (reflexively)."""
        if sub not in self._parent or sup not in self._parent:
            return False
        return sup in self.superclasses(sub)

    def incomparable(self, a: str, b: str) -> bool:
        """``a ⊥ b`` — both core, neither subsumes the other; single
        inheritance forbids joint membership (Definition 2.3)."""
        if a not in self._parent or b not in self._parent:
            return False
        return not self.subsumes(a, b) and not self.subsumes(b, a)

    def depth(self) -> int:
        """``depth(H)`` — length of the longest root-to-leaf chain; a
        factor of the content-checking bound in Section 3.1."""
        if self._depth_cache is None:
            self._depth_cache = max(
                len(self.superclasses(c)) for c in self._parent
            )
        return self._depth_cache

    def max_aux_size(self) -> int:
        """``max_c |Aux(c)|`` — a factor of the Section 3.1 bound."""
        return max((len(a) for a in self._aux_of.values()), default=0)

    # ------------------------------------------------------------------
    # schema elements for the inference system
    # ------------------------------------------------------------------
    def subclass_elements(self) -> Iterator[Subclass]:
        """The direct-edge ``ci ⊑ cj`` elements (one per tree edge); the
        inference system closes them reflexively and transitively."""
        for name, parent in self._parent.items():
            if parent is not None:
                yield Subclass(name, parent)

    def disjoint_elements(self) -> Iterator[Disjoint]:
        """All ``ci ⊥ cj`` elements between incomparable core classes.

        Quadratic in ``|Cc|``; intended for the consistency engine where
        schemas are small.  Pairs are emitted in canonical order.
        """
        cores = sorted(self._parent)
        for i, a in enumerate(cores):
            ancestors_a = set(self.superclasses(a))
            for b in cores[i + 1:]:
                if b in ancestors_a or a in self.superclasses(b):
                    continue
                yield Disjoint(a, b)

    def core_chain_classes(self, classes: Iterable[str]) -> Set[str]:
        """Filter ``classes`` down to the core ones."""
        return {c for c in classes if c in self._parent}
