"""Bounding-schema discovery from instances.

Section 6.2 contrasts the directory world's *prescriptive* schemas with
the semi-structured world's *descriptive* ones, where "the challenge is
to discover the schema from observed instances" (citing Nestorov,
Abiteboul & Motwani's lower/upper-bound schema extraction).  This module
brings the two together: given a directory instance, it induces the
tightest bounding-schema the instance satisfies, so an administrator can
bootstrap a prescriptive bound from existing data and then curate it.

Inference steps:

* **class roles** — a class ``c`` *implies* ``d`` when every member of
  ``c`` is also a member of ``d``.  Classes whose implied strict
  supersets form a chain become **core** classes (parent = the least
  implied superset); the rest become **auxiliary**, with ``Aux(core)``
  read off observed co-occurrence.
* **attribute schema** — ``r(c)`` is the intersection of members'
  attributes, ``a(c)`` their union.
* **structure schema** — for every ordered core pair and axis, a
  required edge is emitted when *every* source member has the related
  target (checked through the Figure 4 machinery), and a forbidden edge
  when *no* pair is related; support thresholds and redundancy pruning
  (child ⇒ descendant, parent ⇒ ancestor; forbidden descendant ⇒
  forbidden child) keep the output readable.

**Soundness invariant** (tested): the training instance is always legal
w.r.t. the discovered schema, and — since the instance is a model — the
discovered schema is always *consistent*, which doubles as a semantic
cross-check of the Section 5 inference system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.axes import Axis
from repro.model.attributes import OBJECT_CLASS
from repro.model.instance import DirectoryInstance
from repro.query.evaluator import QueryEvaluator
from repro.query.translate import translate_element
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import TOP, ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import ForbiddenEdge, RequiredEdge
from repro.schema.structure_schema import StructureSchema

__all__ = ["DiscoveryOptions", "DiscoveryResult", "discover_schema"]


@dataclass
class DiscoveryOptions:
    """Knobs for schema discovery."""

    #: Classes with fewer members than this are ignored entirely.
    min_class_support: int = 1
    #: Emit ``c □`` for every observed (supported) core class.
    require_observed_classes: bool = True
    #: Emit forbidden edges only when both classes have at least this
    #: many members (guards against vacuous "never observed together").
    min_forbidden_support: int = 2
    #: Skip required edges whose target is ``top`` (they encode "never a
    #: leaf"/"never a root", which is usually observational noise).
    include_top_targets: bool = False


@dataclass
class DiscoveryResult:
    """The induced schema plus provenance counts."""

    schema: DirectorySchema
    core_classes: FrozenSet[str] = frozenset()
    auxiliary_classes: FrozenSet[str] = frozenset()
    required_edges: int = 0
    forbidden_edges: int = 0
    notes: List[str] = field(default_factory=list)


def _class_members(instance: DirectoryInstance) -> Dict[str, Set[int]]:
    members: Dict[str, Set[int]] = {}
    for entry in instance:
        for name in entry.classes:
            members.setdefault(name, set()).add(entry.eid)
    return members


def _infer_class_schema(
    members: Dict[str, Set[int]], notes: List[str]
) -> Tuple[ClassSchema, Dict[str, str]]:
    """Build the core tree + auxiliary set from observed implications.

    Core selection must guarantee the content-legality of the training
    instance: every entry's core classes must form one root-to-node
    chain.  We therefore pick cores greedily (largest membership first)
    and accept a class only when it is *subsumption-comparable* with
    every already-accepted core it shares members with; the rest become
    auxiliary.  Observationally-identical classes are ordered by name so
    the "hierarchy" never cycles.

    Returns the class schema and a map from each class to its inferred
    role (``"core"``/``"auxiliary"``)."""

    def below(c: str, d: str) -> bool:
        """Observational ``c ⊑ d`` with a deterministic tie-break for
        identical member sets."""
        if c == d:
            return True
        if not members[c] <= members[d]:
            return False
        if members[c] == members[d]:
            return d < c  # later name becomes the subclass
        return True

    names = sorted(members)
    roles: Dict[str, str] = {}
    roles[TOP] = "core"
    core: List[str] = []

    for c in sorted(names, key=lambda x: (-len(members[x]), x)):
        if c == TOP:
            continue
        compatible = True
        for d in core:
            if members[c] & members[d] and not (below(c, d) or below(d, c)):
                compatible = False
                break
        if compatible:
            roles[c] = "core"
            core.append(c)
        else:
            roles[c] = "auxiliary"

    schema = ClassSchema()

    def parent_of(c: str) -> str:
        sups = [d for d in core if d != c and below(c, d)]
        if not sups:
            return TOP
        # The most specific superset under the ``below`` order (the
        # supersets of a core class form a chain, so this is total;
        # a plain (count, name) key would misorder observationally
        # identical classes).
        best = sups[0]
        for d in sups[1:]:
            if below(d, best):
                best = d
        return best

    # ``core`` is already ordered largest-first, so parents are always
    # added before their children.
    for c in core:
        schema.add_core(c, parent=parent_of(c))

    for c in names:
        if c != TOP and roles[c] == "auxiliary":
            schema.add_auxiliary(c)

    # Aux grants: for every member entry of an auxiliary, grant the
    # auxiliary on that entry's *deepest* observed core class.  Every
    # training entry is then covered by construction, and grants stay as
    # specific as the data allows.
    core_set = set(core) | {TOP}
    for c in names:
        if c == TOP or roles[c] != "auxiliary":
            continue
        hosts: Set[str] = set()
        for eid in members[c]:
            entry_cores = [
                d for d in names if d in core_set and eid in members[d]
            ]
            if not entry_cores:
                hosts.add(TOP)
                continue
            hosts.add(min(entry_cores, key=lambda d: (len(members[d]), d)))
        for d in sorted(hosts):
            schema.allow_auxiliary(d, c)
        if hosts == {TOP}:
            notes.append(f"auxiliary {c!r} observed only with top")
    return schema, roles


def _infer_attribute_schema(
    instance: DirectoryInstance, members: Dict[str, Set[int]]
) -> AttributeSchema:
    schema = AttributeSchema()
    for name in sorted(members):
        required: Optional[Set[str]] = None
        allowed: Set[str] = set()
        for eid in members[name]:
            attrs = {
                a for a in instance.entry(eid).attribute_names()
                if a != OBJECT_CLASS
            }
            allowed |= attrs
            required = attrs if required is None else (required & attrs)
        schema.declare(name, required=sorted(required or ()), allowed=sorted(allowed))
    return schema


def _infer_structure_schema(
    instance: DirectoryInstance,
    members: Dict[str, Set[int]],
    roles: Dict[str, str],
    options: DiscoveryOptions,
) -> StructureSchema:
    structure = StructureSchema()
    core = sorted(
        c for c in members
        if roles.get(c) == "core" and len(members[c]) >= options.min_class_support
    )
    if options.require_observed_classes:
        for c in core:
            if c != TOP:
                structure.require_class(c)

    evaluator = QueryEvaluator(instance)
    required_pairs: Set[Tuple[Axis, str, str]] = set()
    for source in core:
        if not members[source]:
            continue
        for target in core:
            # self-edges are legitimate (e.g. orgUnit under orgUnit)
            if target == TOP and not options.include_top_targets:
                continue
            for axis in (Axis.CHILD, Axis.PARENT, Axis.DESCENDANT, Axis.ANCESTOR):
                # Redundancy pruning: child ⇒ descendant, parent ⇒ anc.
                if axis is Axis.DESCENDANT and (
                    (Axis.CHILD, source, target) in required_pairs
                ):
                    continue
                if axis is Axis.ANCESTOR and (
                    (Axis.PARENT, source, target) in required_pairs
                ):
                    continue
                element = RequiredEdge(axis, source, target)
                check = translate_element(element)
                if not evaluator.evaluate(check.query):
                    required_pairs.add((axis, source, target))
                    structure.require(source, axis, target)

    forbidden_pairs: Set[Tuple[Axis, str, str]] = set()
    for source in core:
        if len(members[source]) < options.min_forbidden_support:
            continue
        for target in core:
            if len(members[target]) < options.min_forbidden_support:
                continue
            for axis in (Axis.DESCENDANT, Axis.CHILD):
                # forbidden descendant subsumes forbidden child
                if axis is Axis.CHILD and (
                    (Axis.DESCENDANT, source, target) in forbidden_pairs
                ):
                    continue
                element = ForbiddenEdge(axis, source, target)
                check = translate_element(element)
                if not evaluator.evaluate(check.query):
                    forbidden_pairs.add((axis, source, target))
                    structure.forbid(source, axis, target)
    return structure


def discover_schema(
    instance: DirectoryInstance,
    options: Optional[DiscoveryOptions] = None,
) -> DiscoveryResult:
    """Induce the tightest bounding-schema ``instance`` satisfies.

    The result's schema always validates, always accepts ``instance``,
    and is always consistent (the instance is a model).

    One precondition is inherited from Definition 2.7 itself: every
    entry must belong to ``top`` (an entry without ``top`` is
    content-illegal under *any* class schema, since the superclass chain
    of its deepest core class always ends at ``top``).
    """
    options = options if options is not None else DiscoveryOptions()
    notes: List[str] = []
    members = {
        name: ids
        for name, ids in _class_members(instance).items()
        if len(ids) >= options.min_class_support
    }
    if TOP not in members:
        members[TOP] = instance.all_entry_id_set()
        notes.append("synthesized top membership for all entries")

    class_schema, roles = _infer_class_schema(members, notes)
    attribute_schema = _infer_attribute_schema(instance, members)
    structure_schema = _infer_structure_schema(instance, members, roles, options)

    schema = DirectorySchema(attribute_schema, class_schema, structure_schema)
    schema.validate()
    return DiscoveryResult(
        schema=schema,
        core_classes=frozenset(
            c for c, r in roles.items() if r == "core"
        ),
        auxiliary_classes=frozenset(
            c for c, r in roles.items() if r == "auxiliary"
        ),
        required_edges=len(structure_schema.required_edges),
        forbidden_edges=len(structure_schema.forbidden_edges),
        notes=notes,
    )
