"""Bounding-schema definitions (Section 2 of the paper)."""

from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import TOP, ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import (
    BOTTOM,
    EMPTY_CLASS,
    Disjoint,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
    Subclass,
    edge_forms,
)
from repro.schema.discovery import DiscoveryOptions, DiscoveryResult, discover_schema
from repro.schema.evolution import EvolutionAnalyzer, EvolutionReport, SchemaChange
from repro.schema.extras import SchemaExtras
from repro.schema.structure_schema import StructureSchema

__all__ = [
    "AttributeSchema",
    "ClassSchema",
    "TOP",
    "StructureSchema",
    "DirectorySchema",
    "SchemaExtras",
    "SchemaElement",
    "RequiredClass",
    "RequiredEdge",
    "ForbiddenEdge",
    "Subclass",
    "Disjoint",
    "EMPTY_CLASS",
    "BOTTOM",
    "edge_forms",
    "EvolutionAnalyzer",
    "EvolutionReport",
    "SchemaChange",
    "discover_schema",
    "DiscoveryOptions",
    "DiscoveryResult",
]
