"""Structure schemas (Definition 2.4).

A structure schema ``S = (Cr, Er, Ef)`` bounds the *shape* of the
directory forest:

* ``Cr`` — required object classes: ``c □`` demands at least one entry
  belonging to ``c`` (lower bound on existence);
* ``Er ⊆ Cc × {ch, de, pa, an} × Cc`` — required structural
  relationships: ``ci → cj`` (child), ``ci →→ cj`` (descendant),
  ``cj ← ci`` (parent), ``cj ←← ci`` (ancestor);
* ``Ef ⊆ Cc × {ch, de} × Cc`` — forbidden structural relationships:
  ``ci ↛ cj`` and ``ci ↛↛ cj``.

All classes mentioned must be **core** classes of the accompanying class
schema (checked by :meth:`~repro.schema.directory_schema.DirectorySchema.validate`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set

from repro.axes import Axis
from repro.errors import SchemaError
from repro.schema.elements import (
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
)

__all__ = ["StructureSchema"]


class StructureSchema:
    """The structure schema ``(Cr, Er, Ef)`` with a fluent builder API.

    The ``require_*``/``forbid_*`` methods all read left-to-right as
    "every/no *source* entry [has] a *target* entry", e.g.
    ``require_descendant("orgGroup", "person")`` is the paper's
    ``orgGroup →→ person``: every organizational group must (directly or
    indirectly) contain a person.
    """

    def __init__(self) -> None:
        self._required_classes: Set[str] = set()
        self._required_edges: Set[RequiredEdge] = set()
        self._forbidden_edges: Set[ForbiddenEdge] = set()

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def require_class(self, *classes: str) -> "StructureSchema":
        """Add ``c □`` elements to ``Cr``."""
        self._required_classes.update(classes)
        return self

    def require(self, source: str, axis: Axis, target: str) -> "StructureSchema":
        """Add ``(source, axis, target)`` to ``Er``."""
        self._required_edges.add(RequiredEdge(axis, source, target))
        return self

    def require_child(self, source: str, target: str) -> "StructureSchema":
        """``source → target``: every source entry has a target child."""
        return self.require(source, Axis.CHILD, target)

    def require_descendant(self, source: str, target: str) -> "StructureSchema":
        """``source →→ target``: every source entry has a target
        descendant."""
        return self.require(source, Axis.DESCENDANT, target)

    def require_parent(self, source: str, target: str) -> "StructureSchema":
        """``target ← source``: every source entry has a target parent."""
        return self.require(source, Axis.PARENT, target)

    def require_ancestor(self, source: str, target: str) -> "StructureSchema":
        """``target ←← source``: every source entry has a target
        ancestor."""
        return self.require(source, Axis.ANCESTOR, target)

    def forbid(self, source: str, axis: Axis, target: str) -> "StructureSchema":
        """Add ``(source, axis, target)`` to ``Ef`` (downward axes only)."""
        if not axis.downward:
            raise SchemaError(
                "forbidden relationships use the child/descendant axes only "
                "(Definition 2.4)"
            )
        self._forbidden_edges.add(ForbiddenEdge(axis, source, target))
        return self

    def forbid_child(self, source: str, target: str) -> "StructureSchema":
        """``source ↛ target``: no target entry is a child of a source
        entry."""
        return self.forbid(source, Axis.CHILD, target)

    def forbid_descendant(self, source: str, target: str) -> "StructureSchema":
        """``source ↛↛ target``: no target entry is a descendant of a
        source entry."""
        return self.forbid(source, Axis.DESCENDANT, target)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def required_classes(self) -> FrozenSet[str]:
        """``Cr``."""
        return frozenset(self._required_classes)

    @property
    def required_edges(self) -> FrozenSet[RequiredEdge]:
        """``Er``."""
        return frozenset(self._required_edges)

    @property
    def forbidden_edges(self) -> FrozenSet[ForbiddenEdge]:
        """``Ef``."""
        return frozenset(self._forbidden_edges)

    def elements(self) -> Iterator[SchemaElement]:
        """All structure-schema elements, relationship elements first
        (deterministic order for reproducible reports)."""
        yield from sorted(self._required_edges, key=str)
        yield from sorted(self._forbidden_edges, key=str)
        for name in sorted(self._required_classes):
            yield RequiredClass(name)

    def relationship_elements(self) -> List[SchemaElement]:
        """Just ``Er ∪ Ef`` — the elements Figure 5 characterizes."""
        return sorted(self._required_edges, key=str) + sorted(
            self._forbidden_edges, key=str
        )

    def mentioned_classes(self) -> Set[str]:
        """Every class occurring in ``Cr``, ``Er``, or ``Ef``."""
        names = set(self._required_classes)
        for edge in self._required_edges:
            names.add(edge.source)
            names.add(edge.target)
        for edge in self._forbidden_edges:
            names.add(edge.source)
            names.add(edge.target)
        return names

    def size(self) -> int:
        """``|S|`` — total number of structure elements (Theorem 3.1)."""
        return (
            len(self._required_classes)
            + len(self._required_edges)
            + len(self._forbidden_edges)
        )

    def __len__(self) -> int:
        return self.size()
