"""The store manifest: the writer→reader rendezvous file.

``manifest`` is a tiny JSON file the writer publishes atomically
(write-new-then-rename, the same idiom as the snapshot) whenever the
set of files a reader should consume changes: at ``create``, after
every ``compact``, and after a repairing recovery.  It carries

* ``version`` — a monotonically increasing publication counter (every
  publish bumps it, across generations), so a reader can tell "something
  changed" with one small read;
* ``generation`` — the store generation the published snapshot carries;
* ``snapshot`` / ``journal`` — the file names a reader should bootstrap
  from and tail (today always ``snapshot.ldif`` / ``journal.ldif``;
  named explicitly so future layouts — per-generation snapshot files,
  sharded journals — stay reader-compatible);
* ``crc`` — CRC32 over the canonical body, so a damaged manifest is
  recognisably damaged.

The manifest is **advisory, never authoritative**: the snapshot header
carries the generation that recovery and readers trust, and a missing,
stale, or corrupt manifest (legacy stores, a writer that crashed inside
the publish window) merely costs the reader a direct look at the
snapshot header.  That keeps every crash window benign: there is no
ordering of snapshot/journal/manifest writes that can make a reader
adopt an inconsistent view.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.store.recovery import JOURNAL_FILE, SNAPSHOT_FILE
from repro.store.wal import StoreIO

__all__ = ["MANIFEST_FILE", "Manifest", "read_manifest", "write_manifest",
           "encode_manifest", "decode_manifest"]

MANIFEST_FILE = "manifest"
_MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class Manifest:
    """One published manifest state.

    ``role`` distinguishes a replication follower's local copy
    (``"replica"``) from a writable store (``None``, the default — a
    plain store never writes the field, so pre-replication manifests
    decode unchanged).  Like everything else here it is advisory: the
    lock file decides who may write, the role merely lets ``fsck`` and
    ``promote`` report what a directory *is*.
    """

    version: int
    generation: int
    snapshot: str = SNAPSHOT_FILE
    journal: str = JOURNAL_FILE
    role: Optional[str] = None
    #: Journal frontier (frame seq of the *previous* generation) folded
    #: into this generation's snapshot by the compaction that published
    #: it.  Lets a replication shipper prove that a follower standing at
    #: ``(generation - 1, folded_seq)`` already holds exactly this
    #: snapshot's state and can fold locally instead of re-downloading.
    #: ``None`` on non-compaction publishes (create, repair) — advisory
    #: like everything else here: absent means "resync via snapshot".
    folded_seq: Optional[int] = None

    def bump(self, generation: Optional[int] = None) -> "Manifest":
        """The next publication: version+1, optionally a new generation."""
        return Manifest(
            version=self.version + 1,
            generation=self.generation if generation is None else generation,
            snapshot=self.snapshot,
            journal=self.journal,
            role=self.role,
        )


def _body(manifest: Manifest) -> dict:
    body = {
        "format": _MANIFEST_FORMAT,
        "version": manifest.version,
        "generation": manifest.generation,
        "snapshot": manifest.snapshot,
        "journal": manifest.journal,
    }
    if manifest.role is not None:
        body["role"] = manifest.role
    if manifest.folded_seq is not None:
        body["folded_seq"] = manifest.folded_seq
    return body


def _crc(body: dict) -> int:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def encode_manifest(manifest: Manifest) -> bytes:
    """Serialize a manifest to its on-disk JSON bytes."""
    body = _body(manifest)
    payload = dict(body, crc=_crc(body))
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_manifest(data: bytes) -> Manifest:
    """Parse manifest bytes; raises ``ValueError`` on any damage."""
    payload = json.loads(data.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("manifest is not a JSON object")
    if payload.get("format") != _MANIFEST_FORMAT:
        raise ValueError(f"unknown manifest format {payload.get('format')!r}")
    body = {key: payload.get(key) for key in
            ("format", "version", "generation", "snapshot", "journal")}
    if "role" in payload:
        body["role"] = payload["role"]
    if "folded_seq" in payload:
        body["folded_seq"] = payload["folded_seq"]
    if payload.get("crc") != _crc(body):
        raise ValueError("manifest checksum mismatch")
    if not isinstance(body["version"], int) or not isinstance(body["generation"], int):
        raise ValueError("manifest version/generation must be integers")
    if not isinstance(body["snapshot"], str) or not isinstance(body["journal"], str):
        raise ValueError("manifest file names must be strings")
    role = body.get("role")
    if role is not None and role not in ("primary", "replica"):
        raise ValueError(f"unknown manifest role {role!r}")
    folded_seq = body.get("folded_seq")
    if folded_seq is not None and not isinstance(folded_seq, int):
        raise ValueError("manifest folded_seq must be an integer")
    return Manifest(
        version=body["version"],
        generation=body["generation"],
        snapshot=body["snapshot"],
        journal=body["journal"],
        role=role,
        folded_seq=folded_seq,
    )


def manifest_path(directory: str) -> str:
    """Path of the manifest file inside a store directory."""
    return os.path.join(directory, MANIFEST_FILE)


def read_manifest(directory: str, io: Optional[StoreIO] = None) -> Optional[Manifest]:
    """The published manifest, or ``None`` when absent or damaged
    (advisory: callers fall back to the snapshot header)."""
    io = io if io is not None else StoreIO()
    path = manifest_path(directory)
    try:
        return decode_manifest(io.read_bytes(path))
    except (OSError, ValueError):
        return None


def write_manifest(
    directory: str, manifest: Manifest, io: Optional[StoreIO] = None
) -> None:
    """Publish ``manifest`` atomically (write-new-then-rename)."""
    io = io if io is not None else StoreIO()
    io.write_file_atomic(manifest_path(directory), encode_manifest(manifest))
