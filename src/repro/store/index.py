"""Attribute-level secondary indexes over a directory instance.

The paper's Figure 4 reductions turn bounding-schema checks into
queries, so making queries sublinear makes the whole system faster.
This module is the access-structure half of that move (slapd's
``index`` directive is the production precedent): an
:class:`AttributeIndexes` object rides on a
:class:`~repro.model.instance.DirectoryInstance` and maintains

* an **equality** index ``attribute -> text -> {eid}`` over the text
  form of every value (exactly the form
  :class:`~repro.query.filters.Equals` compares against for string
  operands),
* a **presence** index ``attribute -> {eid}``,
* a **substring** index of character 3-grams
  ``attribute -> gram -> {eid}`` (candidates for
  :class:`~repro.query.filters.Substring` come from intersecting the
  postings of the pattern's grams),
* a **key** index ``attribute -> value -> {eid}`` over the Section 6.1
  key attributes, keyed by the *raw* value with plain ``dict`` equality
  — the same equality :class:`~repro.legality.extras.ExtrasChecker`
  uses, so ``1`` and ``True`` collide while ``30`` and ``"30"`` stay
  distinct, and
* a **referential** index ``attribute -> normalized target DN -> {eid}``
  over the Section 6.1 referential attributes, supporting the reverse
  probe "who references the entry being deleted?".

Maintenance is incremental and *lazy*: instance mutations only mark the
touched entry id dirty (O(1) per mutation, via the observer hooks in
:mod:`repro.model.instance` / :mod:`repro.model.entry`); the postings
are patched in O(|dirty|) at the next probe.  Every index answer is a
**sound superset** of the matching entries — the query layer always
runs the real ``matches`` predicate over the candidates — so a bug here
can cost time, never correctness.

Persistence follows the ``verdicts.cache`` discipline exactly
(:mod:`repro.store.sidecar`): a checksummed, schema- and
generation-stamped sidecar (``indexes.cache``) that is best-effort on
save and paranoid on load — corrupt, stale, or missing means a
transparent rebuild, never a wrong answer.  Postings are persisted
keyed by normalized DN (entry ids are assigned at parse time and do not
survive a reopen), and additionally stamped with the journal *position*
so a sidecar exported mid-generation only warm-starts a view at exactly
that frame.
"""

from __future__ import annotations

import json
import os
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.legality.report import Kind, Violation
from repro.model.dn import parse_dn
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema
from repro.schema.extras import SchemaExtras
from repro.store.recovery import INDEX_SIDECAR_FILE
from repro.store.sidecar import schema_digest, verdict_crc

__all__ = [
    "AttributeIndexes",
    "delta_extras_violations",
    "extras_index_attributes",
    "index_sidecar_path",
    "index_sidecar_status",
    "load_index_sidecar",
    "save_index_sidecar",
]

#: Substring-index gram width.  Three is the classic slapd choice:
#: wide enough to prune, narrow enough that most patterns contain one.
GRAM = 3

INDEX_SIDECAR_FORMAT = 1


def _normalize_dn(text: str) -> Optional[str]:
    """The case-folded DN string of ``text``, or ``None`` when it does
    not parse as a DN (such a value can never resolve to an entry)."""
    try:
        return str(parse_dn(text).normalized())
    except Exception:
        return None


def extras_index_attributes(
    extras: Optional[SchemaExtras],
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """The ``(key, referential)`` attribute sets an index should
    maintain for ``extras`` (both empty when there are none)."""
    if extras is None:
        return frozenset(), frozenset()
    return frozenset(extras.key_attributes), frozenset(extras.referential_attributes)


class AttributeIndexes:
    """Incrementally-maintained secondary indexes over one instance.

    Attach with :meth:`attach` (which also wires the instance's
    observer hooks); afterwards every mutation of the instance keeps
    the indexes current automatically.

    The ``probes``/``hits``/``candidates`` counters are cumulative and
    machine-independent; callers snapshot them around an operation to
    report what the planner did (``--profile``, bench gates).
    """

    def __init__(
        self,
        instance: DirectoryInstance,
        key_attributes: Iterable[str] = (),
        referential_attributes: Iterable[str] = (),
    ) -> None:
        self.instance = instance
        self.key_attributes = frozenset(key_attributes)
        self.referential_attributes = frozenset(referential_attributes)
        self._eq: Dict[str, Dict[str, Set[int]]] = {}
        self._present: Dict[str, Set[int]] = {}
        self._grams: Dict[str, Dict[str, Set[int]]] = {}
        self._keys: Dict[str, Dict[Any, Set[int]]] = {}
        self._refs: Dict[str, Dict[str, Set[int]]] = {}
        #: eid -> the attribute/value snapshot currently folded into the
        #: postings.  Mandatory for unindexing: by the time a deletion
        #: is flushed the entry (and its values) are gone.
        self._snapshots: Dict[int, Dict[str, Tuple[Any, ...]]] = {}
        self._dirty: Set[int] = set()
        #: Normalized DNs captured at deletion time (the DN index entry
        #: is gone before the lazy flush runs).
        self._removed_dns: Dict[int, str] = {}
        self.probes = 0
        self.hits = 0
        self.candidates = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        instance: DirectoryInstance,
        key_attributes: Iterable[str] = (),
        referential_attributes: Iterable[str] = (),
        postings: Optional[dict] = None,
    ) -> "AttributeIndexes":
        """Create indexes for ``instance``, adopt ``postings`` when they
        line up with it (else rebuild from scratch), and install the
        result as ``instance.indexes``."""
        indexes = cls(instance, key_attributes, referential_attributes)
        if postings is None or not indexes._adopt(postings):
            indexes.rebuild()
        instance.indexes = indexes
        return indexes

    def rebuild(self) -> None:
        """Discard everything and re-derive the postings from the live
        instance — the cold-start path a bad sidecar falls back to."""
        self._eq = {}
        self._present = {}
        self._grams = {}
        self._keys = {}
        self._refs = {}
        self._snapshots = {}
        self._dirty.clear()
        self._removed_dns.clear()
        for eid, entry in self.instance._entries.items():
            snapshot = self._snapshot(entry)
            self._snapshots[eid] = snapshot
            self._index_entry(eid, snapshot)

    # ------------------------------------------------------------------
    # observer hooks (called by the owning instance)
    # ------------------------------------------------------------------
    def entry_changed(self, eid: int) -> None:
        """Mark ``eid`` dirty (value or class mutation, or insertion);
        O(1) — the postings are patched lazily at the next probe."""
        self._dirty.add(eid)

    def entry_removed(self, eid: int) -> None:
        """Mark ``eid`` dirty for removal, capturing its normalized DN
        now — the instance's DN tables forget it before the lazy flush
        (or a reverse referential probe) runs."""
        self._dirty.add(eid)
        norm = self.instance._norm_key.get(eid)
        if norm is not None:
            self._removed_dns[eid] = norm

    # ------------------------------------------------------------------
    # probes (each one flushes pending maintenance first)
    # ------------------------------------------------------------------
    def equality_candidates(self, attribute: str, text: str) -> Set[int]:
        """Ids of entries holding a value whose text form is ``text`` —
        a sound superset of ``Equals(attribute, text)`` matches."""
        self._refresh()
        return self._count(set(self._eq.get(attribute, {}).get(text, ())))

    def presence_candidates(self, attribute: str) -> Set[int]:
        """Ids of entries with at least one value for ``attribute``."""
        self._refresh()
        return self._count(set(self._present.get(attribute, ())))

    def substring_candidates(
        self, attribute: str, parts: Sequence[str]
    ) -> Set[int]:
        """A sound candidate superset for a substring pattern whose
        literal chunks are ``parts``: the intersection of the gram
        postings, falling back to the presence set when no chunk is
        long enough to contribute a gram."""
        self._refresh()
        grams: Set[str] = set()
        for part in parts:
            for i in range(len(part) - GRAM + 1):
                grams.add(part[i : i + GRAM])
        if not grams:
            return self._count(set(self._present.get(attribute, ())))
        bucket = self._grams.get(attribute, {})
        postings = sorted((bucket.get(gram, set()) for gram in grams), key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return self._count(result)

    def key_holders(self, attribute: str, value: Any) -> Set[int]:
        """Ids of entries holding ``value`` under the key ``attribute``
        (raw-value equality, matching the Section 6.1 checker)."""
        self._refresh()
        try:
            posting = self._keys.get(attribute, {}).get(value, ())
        except TypeError:  # unhashable key value was never indexed
            posting = ()
        return self._count(set(posting))

    def referrers(self, attribute: str, norm_target: str) -> Set[int]:
        """Ids of entries whose referential ``attribute`` points at the
        entry with normalized DN ``norm_target``."""
        self._refresh()
        return self._count(set(self._refs.get(attribute, {}).get(norm_target, ())))

    def counters(self) -> Tuple[int, int, int]:
        """The cumulative ``(probes, hits, candidates)`` counters."""
        return (self.probes, self.hits, self.candidates)

    # ------------------------------------------------------------------
    # update deltas (the store layers' Section 6.1 apply-time check)
    # ------------------------------------------------------------------
    def delta_checkpoint(self) -> None:
        """Flush pending maintenance so the dirty set afterwards tracks
        exactly the *next* update's footprint."""
        self._refresh()

    def delta_collect(self) -> Tuple[List[int], List[str]]:
        """Fold pending maintenance in and report what it covered:
        ``(live touched eids, normalized DNs of removed entries)``."""
        touched: List[int] = []
        removed: List[str] = []
        entries = self.instance._entries
        for eid in sorted(self._dirty):
            if eid in entries:
                touched.append(eid)
            else:
                norm = self._removed_dns.get(eid)
                if norm is not None:
                    removed.append(norm)
        self._refresh()
        return touched, removed

    # ------------------------------------------------------------------
    # persistence (DN-keyed: entry ids do not survive a reopen)
    # ------------------------------------------------------------------
    def export_postings(self) -> dict:
        """The eq/presence/gram postings in sidecar form.  The key and
        referential indexes are not persisted — re-deriving them needs
        no gram work, and raw values do not round-trip through JSON."""
        self._refresh()
        norm_key = self.instance._norm_key
        eids = sorted(self._snapshots)
        position = {eid: i for i, eid in enumerate(eids)}
        return {
            "dns": [norm_key[eid] for eid in eids],
            "eq": {
                attribute: {
                    text: sorted(position[eid] for eid in posting)
                    for text, posting in buckets.items()
                }
                for attribute, buckets in self._eq.items()
            },
            "present": {
                attribute: sorted(position[eid] for eid in posting)
                for attribute, posting in self._present.items()
            },
            "grams": {
                attribute: {
                    gram: sorted(position[eid] for eid in posting)
                    for gram, posting in buckets.items()
                }
                for attribute, buckets in self._grams.items()
            },
        }

    def _adopt(self, postings: dict) -> bool:
        """Fold persisted postings in, mapping DNs back to the live
        instance's entry ids.  Any mismatch — a DN that does not
        resolve, a count that disagrees, a malformed shape — rejects
        the whole sidecar (the caller rebuilds)."""
        instance = self.instance
        dns = postings.get("dns")
        if not isinstance(dns, list) or len(dns) != len(instance):
            return False
        by_dn = instance._by_dn
        eids: List[int] = []
        for dn in dns:
            eid = by_dn.get(dn)
            if eid is None:
                return False
            eids.append(eid)
        try:
            eq = {
                attribute: {
                    text: {eids[i] for i in posting}
                    for text, posting in buckets.items()
                }
                for attribute, buckets in postings["eq"].items()
            }
            present = {
                attribute: {eids[i] for i in posting}
                for attribute, posting in postings["present"].items()
            }
            grams = {
                attribute: {
                    gram: {eids[i] for i in posting}
                    for gram, posting in buckets.items()
                }
                for attribute, buckets in postings["grams"].items()
            }
        except (AttributeError, IndexError, KeyError, TypeError):
            return False
        self._eq = eq
        self._present = present
        self._grams = grams
        # Keys, referential postings, and unindex snapshots come from
        # the live entries — one cheap pass, no gram derivation.
        self._keys = {}
        self._refs = {}
        self._snapshots = {}
        self._dirty.clear()
        self._removed_dns.clear()
        for eid, entry in instance._entries.items():
            snapshot = self._snapshot(entry)
            self._snapshots[eid] = snapshot
            self._index_extras(eid, snapshot)
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _count(self, result: Set[int]) -> Set[int]:
        self.probes += 1
        if result:
            self.hits += 1
        self.candidates += len(result)
        return result

    def _snapshot(self, entry: Entry) -> Dict[str, Tuple[Any, ...]]:
        return {name: entry.values(name) for name in entry.attribute_names()}

    def _refresh(self) -> None:
        if not self._dirty:
            return
        entries = self.instance._entries
        for eid in self._dirty:
            old = self._snapshots.pop(eid, None)
            if old is not None:
                self._unindex_entry(eid, old)
            entry = entries.get(eid)
            if entry is not None:
                snapshot = self._snapshot(entry)
                self._snapshots[eid] = snapshot
                self._index_entry(eid, snapshot)
        self._dirty.clear()
        self._removed_dns.clear()

    def _index_entry(self, eid: int, snapshot: Dict[str, Tuple[Any, ...]]) -> None:
        for attribute, values in snapshot.items():
            self._present.setdefault(attribute, set()).add(eid)
            eq_bucket = self._eq.setdefault(attribute, {})
            gram_bucket = self._grams.setdefault(attribute, {})
            for value in values:
                text = value if isinstance(value, str) else str(value)
                eq_bucket.setdefault(text, set()).add(eid)
                for i in range(len(text) - GRAM + 1):
                    gram_bucket.setdefault(text[i : i + GRAM], set()).add(eid)
        self._index_extras(eid, snapshot)

    def _index_extras(self, eid: int, snapshot: Dict[str, Tuple[Any, ...]]) -> None:
        for attribute in self.key_attributes:
            for value in snapshot.get(attribute, ()):
                try:
                    self._keys.setdefault(attribute, {}).setdefault(
                        value, set()
                    ).add(eid)
                except TypeError:
                    pass  # unhashable values cannot be probed either
        for attribute in self.referential_attributes:
            for value in snapshot.get(attribute, ()):
                norm = _normalize_dn(value if isinstance(value, str) else str(value))
                if norm is not None:
                    self._refs.setdefault(attribute, {}).setdefault(
                        norm, set()
                    ).add(eid)

    def _unindex_entry(self, eid: int, snapshot: Dict[str, Tuple[Any, ...]]) -> None:
        for attribute, values in snapshot.items():
            present = self._present.get(attribute)
            if present is not None:
                present.discard(eid)
                if not present:
                    del self._present[attribute]
            eq_bucket = self._eq.get(attribute)
            gram_bucket = self._grams.get(attribute)
            for value in values:
                text = value if isinstance(value, str) else str(value)
                if eq_bucket is not None:
                    self._discard(eq_bucket, text, eid)
                if gram_bucket is not None:
                    for i in range(len(text) - GRAM + 1):
                        self._discard(gram_bucket, text[i : i + GRAM], eid)
            if eq_bucket is not None and not eq_bucket:
                del self._eq[attribute]
            if gram_bucket is not None and not gram_bucket:
                del self._grams[attribute]
        for attribute in self.key_attributes:
            bucket = self._keys.get(attribute)
            if bucket is None:
                continue
            for value in snapshot.get(attribute, ()):
                try:
                    self._discard(bucket, value, eid)
                except TypeError:
                    pass
            if not bucket:
                del self._keys[attribute]
        for attribute in self.referential_attributes:
            bucket = self._refs.get(attribute)
            if bucket is None:
                continue
            for value in snapshot.get(attribute, ()):
                norm = _normalize_dn(value if isinstance(value, str) else str(value))
                if norm is not None:
                    self._discard(bucket, norm, eid)
            if not bucket:
                del self._refs[attribute]

    @staticmethod
    def _discard(bucket: Dict[Any, Set[int]], key: Any, eid: int) -> None:
        posting = bucket.get(key)
        if posting is not None:
            posting.discard(eid)
            if not posting:
                del bucket[key]


# ----------------------------------------------------------------------
# the Section 6.1 apply-time delta check
# ----------------------------------------------------------------------
def delta_extras_violations(
    extras: SchemaExtras,
    touched: Sequence[Tuple[Entry, str]],
    removed_dns: Iterable[str],
    key_holders: Callable[[str, Any], Iterable[str]],
    resolve: Callable[[str], bool],
    referrers: Callable[[str, str], Iterable[Tuple[Entry, str]]],
) -> List[Violation]:
    """Extras violations an update introduced, via index probes.

    This is the O(|Δ|) replacement for re-running
    :class:`~repro.legality.extras.ExtrasChecker` over the whole
    instance after every update: assuming the pre-update state was
    clean, a new violation must involve a touched entry — a key value
    it holds (probed through ``key_holders``, which merges per-shard
    key indexes in the sharded store), a reference it makes
    (``resolve``), a single-valued attribute it overfills, or a
    reference *to* one of the ``removed_dns`` from a surviving entry
    (``referrers``).  All DNs are global display strings so the union
    and sharded stores emit byte-identical verdicts.
    """
    violations: List[Violation] = []
    single_valued = sorted(extras.effective_single_valued())
    keys = sorted(extras.key_attributes)
    referential = sorted(extras.referential_attributes)

    def check_referential(entry: Entry, dn: str) -> None:
        for attribute in referential:
            for value in entry.values(attribute):
                target = value if isinstance(value, str) else str(value)
                if not resolve(target):
                    violations.append(
                        Violation(
                            Kind.DANGLING_REFERENCE,
                            f"attribute {attribute!r} references "
                            f"{target!r}, which names no entry",
                            dn=dn,
                        )
                    )

    seen: Set[str] = set()
    for entry, dn in touched:
        if dn in seen:
            continue
        seen.add(dn)
        check_referential(entry, dn)
        for attribute in single_valued:
            values = entry.values(attribute)
            if len(values) > 1:
                violations.append(
                    Violation(
                        Kind.SINGLE_VALUED,
                        f"attribute {attribute!r} is single-valued but "
                        f"holds {len(values)} values",
                        dn=dn,
                    )
                )
        for attribute in keys:
            for value in entry.values(attribute):
                others = sorted(set(key_holders(attribute, value)) - {dn})
                if others:
                    violations.append(
                        Violation(
                            Kind.DUPLICATE_KEY,
                            f"key {attribute!r} value {value!r} already "
                            f"used by entry {others[0]}",
                            dn=dn,
                        )
                    )
    if referential:
        # Deleting an entry can dangle references *to* it: re-validate
        # every surviving referrer of a removed DN.
        for norm_dn in removed_dns:
            for attribute in referential:
                for entry, dn in referrers(attribute, norm_dn):
                    if dn in seen:
                        continue
                    seen.add(dn)
                    check_referential(entry, dn)
    violations.sort(key=lambda violation: (str(violation.dn), violation.message))
    return violations


# ----------------------------------------------------------------------
# sidecar persistence (``indexes.cache``)
# ----------------------------------------------------------------------
def index_sidecar_path(directory: str) -> str:
    """Where the index sidecar lives inside a store ``directory``."""
    return os.path.join(directory, INDEX_SIDECAR_FILE)


def save_index_sidecar(
    directory: str,
    schema: DirectorySchema,
    generation: int,
    position: int,
    indexes: AttributeIndexes,
) -> None:
    """Persist the postings atomically, best-effort (writer only).
    ``position`` is the journal frame count the export reflects."""
    try:
        postings = indexes.export_postings()
        payload = {
            "format": INDEX_SIDECAR_FORMAT,
            "schema": schema_digest(schema),
            "generation": generation,
            "position": position,
            "crc": verdict_crc(postings),
            "postings": postings,
        }
        path = index_sidecar_path(directory)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    except Exception:  # pragma: no cover - persistence is best-effort
        pass


def load_index_sidecar(
    directory: str,
    schema: DirectorySchema,
    generation: int,
    position: int,
) -> Optional[dict]:
    """The persisted postings when the sidecar is intact, bound to
    ``schema``, and stamped exactly ``(generation, position)``;
    ``None`` (rebuild) for anything else."""
    try:
        with open(index_sidecar_path(directory), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != INDEX_SIDECAR_FORMAT:
            return None
        if payload.get("schema") != schema_digest(schema):
            return None
        if payload.get("generation") != generation:
            return None
        if payload.get("position") != position:
            return None
        postings = payload.get("postings")
        if payload.get("crc") != verdict_crc(postings):
            return None
        if not isinstance(postings, dict):
            return None
        return postings
    except Exception:
        return None


def index_sidecar_status(
    directory: str,
    schema: DirectorySchema,
    generation: int,
    position: int,
) -> str:
    """Health of the index sidecar relative to the store state
    ``(generation, position)``: ``"present"``, ``"missing"``,
    ``"stale"`` (well-formed but for another schema/generation/
    position), or ``"corrupt"`` (unreadable or checksum-failed).

    Informational only — ``fsck`` prints it but never changes its exit
    code for it, because every non-``present`` state just means the
    next open rebuilds.
    """
    path = index_sidecar_path(directory)
    if not os.path.exists(path):
        return "missing"
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except Exception:
        return "corrupt"
    if not isinstance(payload, dict) or payload.get("format") != INDEX_SIDECAR_FORMAT:
        return "corrupt"
    postings = payload.get("postings")
    if payload.get("crc") != verdict_crc(postings) or not isinstance(postings, dict):
        return "corrupt"
    if payload.get("schema") != schema_digest(schema):
        return "stale"
    if payload.get("generation") != generation or payload.get("position") != position:
        return "stale"
    return "present"
