"""The persisted shard map of a sharded store.

A sharded store routes DIT subtrees to independent
:class:`~repro.store.journal.DirectoryStore` directories by
*prefix-of-DN* (suffix in LDAP spelling: a shard's ``base`` names the
subtree it owns).  The map itself is a tiny checksummed JSON file,
``shardmap``, at the sharded store's root — same idiom as the store
manifest (body + CRC32, atomic write-new-then-rename), but
**authoritative**: unlike the manifest there is no fallback source for
the routing cut, so a missing or damaged shard map refuses to open
(:class:`~repro.errors.ShardMapError`) rather than guessing.

Routing semantics (:meth:`ShardMap.route`):

* a DN routes to the shard whose base is its *deepest*
  ancestor-or-self, under the same case-normalization DN resolution
  uses everywhere else;
* a shard base of depth > 1 cuts its subtree *out of* the enclosing
  shard (nested maps); validation requires the enclosing shard to
  exist so every entry above the cut has a home;
* a DN under no base raises :class:`~repro.errors.ShardRoutingError`
  — never a silent default shard.

Shards store their subtree *localized*: the base's parent suffix is
stripped, so each shard directory is a self-contained store whose
roots are the shard base itself (depth-1 bases store full DNs
unchanged).  :meth:`ShardMap.localize` / :meth:`ShardMap.globalize`
convert between the two forms.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ShardMapError, ShardRoutingError
from repro.model.dn import DN, parse_dn

__all__ = [
    "SHARD_MAP_FILE",
    "SHARDS_DIR",
    "ShardSpec",
    "ShardMap",
    "read_shard_map",
    "write_shard_map",
    "shard_dir",
]

SHARD_MAP_FILE = "shardmap"
SHARDS_DIR = "shards"
_SHARD_MAP_FORMAT = 1


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a name (its directory under ``shards/``) and the DN
    of the subtree it owns."""

    name: str
    base: DN

    @property
    def suffix(self) -> DN:
        """The DN suffix stripped from entries stored in this shard
        (the base's parent; empty for depth-1 bases)."""
        return self.base.parent()

    def __str__(self) -> str:
        return f"{self.name} ⇒ {self.base}"


class ShardMap:
    """An ordered set of :class:`ShardSpec`, deepest-base-first routing."""

    def __init__(self, specs: List[ShardSpec]) -> None:
        self.specs: Tuple[ShardSpec, ...] = tuple(specs)
        # Deepest bases first so `route` finds the most specific owner
        # (a nested cut shadows its enclosing shard).
        self._by_depth: Tuple[ShardSpec, ...] = tuple(
            sorted(self.specs, key=lambda s: (-s.base.depth(), s.name))
        )
        self._by_name: Dict[str, ShardSpec] = {s.name: s for s in self.specs}

    # ------------------------------------------------------------------
    # construction / validation
    # ------------------------------------------------------------------
    @staticmethod
    def from_bases(bases: Dict[str, DN | str]) -> "ShardMap":
        """Build and validate a map from ``{name: base}``."""
        specs = [
            ShardSpec(name, parse_dn(base) if isinstance(base, str) else base)
            for name, base in bases.items()
        ]
        shard_map = ShardMap(specs)
        shard_map.validate()
        return shard_map

    def validate(self) -> "ShardMap":
        """Check the map is a usable routing cut.

        Raises
        ------
        ShardMapError
            Empty map, duplicate names or bases, a base nested under
            another with no enclosing shard to own the entries above
            the cut, or an invalid shard name.
        """
        if not self.specs:
            raise ShardMapError("a shard map needs at least one shard")
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ShardMapError(f"duplicate shard names in {names}")
        for spec in self.specs:
            if not spec.name or "/" in spec.name or spec.name in (".", ".."):
                raise ShardMapError(f"invalid shard name {spec.name!r}")
            if spec.base.is_empty():
                raise ShardMapError(
                    f"shard {spec.name!r} has an empty base DN"
                )
        normalized = [str(s.base.normalized()) for s in self.specs]
        if len(set(normalized)) != len(normalized):
            raise ShardMapError(f"duplicate shard bases in {normalized}")
        for spec in self.specs:
            if spec.base.depth() > 1:
                # The cut's parent must live in some *other* shard.
                try:
                    owner = self.route(spec.base.parent())
                except ShardRoutingError:
                    raise ShardMapError(
                        f"shard {spec.name!r} cuts at {spec.base}, but no "
                        f"shard owns its parent {spec.base.parent()}"
                    ) from None
                if owner.name == spec.name:  # pragma: no cover - defensive
                    raise ShardMapError(
                        f"shard {spec.name!r} routes its own parent"
                    )
        return self

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, dn: DN | str) -> ShardSpec:
        """The shard owning ``dn``: deepest base that is an
        ancestor-or-self of ``dn`` (case-normalized).

        Raises
        ------
        ShardRoutingError
            When no shard base covers ``dn``.
        """
        parsed = parse_dn(dn) if isinstance(dn, str) else dn
        if parsed.is_empty():
            raise ShardRoutingError("the empty DN routes nowhere")
        for spec in self._by_depth:
            base = spec.base
            if base.normalized() == parsed.normalized() or base.is_ancestor_of(
                parsed
            ):
                return spec
        raise ShardRoutingError(
            f"no shard owns {str(parsed)!r} "
            f"(bases: {', '.join(str(s.base) for s in self._by_depth)})"
        )

    def localize(self, dn: DN, spec: ShardSpec) -> DN:
        """Strip ``spec``'s suffix: the DN as stored inside the shard."""
        strip = spec.base.depth() - 1
        if strip == 0:
            return dn
        if len(dn.rdns) <= strip:  # pragma: no cover - routing guarantees
            raise ShardRoutingError(
                f"{dn} is too shallow to live in shard {spec.name!r}"
            )
        return DN(dn.rdns[: len(dn.rdns) - strip])

    def globalize(self, local_dn: DN, spec: ShardSpec) -> DN:
        """Re-attach ``spec``'s suffix: the shard-local DN as seen from
        the composite namespace."""
        return DN(local_dn.rdns + spec.suffix.rdns)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def spec(self, name: str) -> ShardSpec:
        """The :class:`ShardSpec` named ``name``
        (:class:`~repro.errors.ShardMapError` for unknown names)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ShardMapError(f"no shard named {name!r}") from None

    def names(self) -> Tuple[str, ...]:
        """Shard names in map order."""
        return tuple(s.name for s in self.specs)

    def has_cut(self) -> bool:
        """Whether any base nests inside another shard's subtree
        (depth > 1) — the case where structural edges can span the
        routing cut mid-tree."""
        return any(s.base.depth() > 1 for s in self.specs)

    def bases(self) -> Dict[str, DN]:
        """``{name: base DN}`` for every shard in the map."""
        return {s.name: s.base for s in self.specs}

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ShardMap) and self.specs == other.specs


# ----------------------------------------------------------------------
# persistence (manifest idiom: canonical body + CRC32, atomic replace)
# ----------------------------------------------------------------------
def shard_dir(root: str, name: str) -> str:
    """The directory of shard ``name`` under a sharded store root."""
    return os.path.join(root, SHARDS_DIR, name)


def shard_map_path(root: str) -> str:
    return os.path.join(root, SHARD_MAP_FILE)


def _body(shard_map: ShardMap) -> dict:
    return {
        "format": _SHARD_MAP_FORMAT,
        "shards": [
            {"name": s.name, "base": str(s.base)} for s in shard_map.specs
        ],
    }


def _crc(body: dict) -> int:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def encode_shard_map(shard_map: ShardMap) -> bytes:
    body = _body(shard_map)
    payload = dict(body, crc=_crc(body))
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_shard_map(data: bytes) -> ShardMap:
    """Parse shard-map bytes.

    Raises
    ------
    ShardMapError
        On any damage: bad JSON, unknown format, checksum mismatch,
        malformed entries, or an invalid routing cut.
    """
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardMapError(f"shard map is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ShardMapError("shard map is not a JSON object")
    if payload.get("format") != _SHARD_MAP_FORMAT:
        raise ShardMapError(
            f"unknown shard map format {payload.get('format')!r}"
        )
    body = {"format": payload.get("format"), "shards": payload.get("shards")}
    if payload.get("crc") != _crc(body):
        raise ShardMapError("shard map checksum mismatch")
    shards = body["shards"]
    if not isinstance(shards, list):
        raise ShardMapError("shard map 'shards' must be a list")
    specs = []
    for item in shards:
        if (
            not isinstance(item, dict)
            or not isinstance(item.get("name"), str)
            or not isinstance(item.get("base"), str)
        ):
            raise ShardMapError(f"malformed shard entry {item!r}")
        specs.append(ShardSpec(item["name"], parse_dn(item["base"])))
    return ShardMap(specs).validate()


def read_shard_map(root: str) -> ShardMap:
    """Load the shard map of a sharded store rooted at ``root``.

    Raises
    ------
    ShardMapError
        Missing or damaged map (authoritative: no fallback).
    """
    path = shard_map_path(root)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise ShardMapError(
            f"cannot read shard map {path!r}: {exc} "
            "(not a sharded store, or its map is gone)"
        ) from exc
    return decode_shard_map(data)


def write_shard_map(root: str, shard_map: ShardMap) -> None:
    """Persist ``shard_map`` atomically (write-new-then-rename).

    Written *last* during sharded-store creation: its presence marks
    the store complete, so a crash mid-create leaves a root without a
    map (refused at open) rather than a half-populated store that
    routes.
    """
    shard_map.validate()
    path = shard_map_path(root)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(encode_shard_map(shard_map))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def inspect_shard_map(root: str) -> Optional[ShardMap]:
    """The shard map when ``root`` holds an intact one, else ``None``
    (for tools that probe 'is this a sharded store?')."""
    try:
        return read_shard_map(root)
    except ShardMapError:
        return None
