"""Lock-free read-only views of a live store: the reader half of the
reader/writer split.

:class:`StoreReader` opens a store directory **without** taking the
writer's advisory lock, so any number of readers can serve queries and
legality checks while one writer keeps committing.  The design leans
entirely on invariants the writer already maintains — no new shared
state, no reader→writer communication:

* the snapshot is only ever replaced by an **atomic rename** carrying a
  **new generation id** in its header, so a reader either sees the old
  complete snapshot or the new complete snapshot, never a mixture;
* the journal is **append-only within a generation** and every frame is
  checksummed, length-prefixed, and sequence-numbered
  (:mod:`repro.store.wal`), so a reader that remembers ``(generation,
  seq, byte offset)`` can consume *just the new bytes* and stop —
  silently, at a frame boundary — the moment it meets a torn or
  uncommitted suffix.  This is exactly recovery's committed-prefix
  rule (:mod:`repro.store.recovery`), applied incrementally;
* the ``manifest`` file (:mod:`repro.store.manifest`) is an advisory
  rendezvous naming the snapshot/journal files; the snapshot header
  stays authoritative for the generation.

The resulting guarantee, stress- and crash-tested by ``tests/harness``:
**every state a reader observes is a committed state the writer really
passed through** — possibly stale (the writer may be ahead), never
torn, never a state that recovery would roll back.  ``refresh()``
advances the view; ``lag()`` reports how far behind it is;
``strict=True`` turns silent staleness into
:class:`~repro.errors.StaleReadError`.

Readers expose the read-only half of the store surface: :meth:`search`
(Section 3 hierarchical selection) and :meth:`check` / :meth:`is_legal`
(a :class:`~repro.legality.engine.CheckSession` with the fingerprint
memos — content verdicts are keyed by content fingerprint and the
structure memo by instance token, so both survive ``refresh`` and
re-bootstrap and only dirty entries are re-verified).  Readers never
write anything: not the journal, not the snapshot, not the
``verdicts.cache`` sidecar (which they load once, read-only, at open).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from repro.errors import StaleReadError, StoreError
from repro.ldif.reader import parse_ldif
from repro.legality.engine import CheckSession
from repro.legality.report import LegalityReport
from repro.model.attributes import AttributeRegistry
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.query.search import SearchScope
from repro.query.search import search as _search
from repro.schema.directory_schema import DirectorySchema
from repro.store import index as _index
from repro.store import sidecar as _sidecar
from repro.store import wal
from repro.store.manifest import read_manifest
from repro.store.recovery import (
    JOURNAL_FILE,
    SNAPSHOT_FILE,
    _scan_legacy,
    replay_record,
)
from repro.store.wal import StoreIO

__all__ = ["StoreReader", "RefreshResult", "ReaderLag"]

#: Bootstrap attempts before giving up on a store the writer keeps
#: compacting out from under us.  Each retry re-reads snapshot+journal
#: from scratch; a writer would have to complete a full compaction
#: inside every single read window to defeat it.
_BOOTSTRAP_RETRIES = 3


@dataclass(frozen=True)
class ReaderLag:
    """How far a reader's view trails the committed state on disk."""

    generations: int  #: compactions the reader has not re-bootstrapped over
    frames: int  #: committed frames on disk past the reader's position

    @property
    def current(self) -> bool:
        """True when the view equals the committed state on disk."""
        return self.generations == 0 and self.frames == 0


@dataclass
class RefreshResult:
    """What one :meth:`StoreReader.refresh` call did."""

    advanced: bool  #: the view changed (new frames or a new snapshot)
    frames_replayed: int  #: committed frames applied by this call
    bytes_scanned: int  #: journal bytes read (O(|Δ|), not O(journal))
    rebootstrapped: bool  #: the view was rebuilt from a new snapshot
    generation: int  #: the view's generation after the call
    seq: int  #: last applied frame seq after the call
    stale: bool = False  #: the call could not reach the on-disk state
    note: Optional[str] = None  #: why the call stopped early, if it did


class StoreReader:
    """A read-only, incrementally refreshable view of a store.

    Create via :meth:`open` (or
    :meth:`~repro.store.journal.DirectoryStore.open_reader`).  The view
    is pinned at the committed state found at open time; call
    :meth:`refresh` to follow the writer.  Close (or use as a context
    manager) to release the legality session's worker pool — readers
    hold **no lock**, so closing has no effect on other processes.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry],
        io: StoreIO,
        session: CheckSession,
    ) -> None:
        self._dir = directory
        self.schema = schema
        self._registry = registry
        self._io = io
        self._session = session
        self.instance: DirectoryInstance = DirectoryInstance(attributes=registry)
        self._generation = 0
        self._seq = 0
        self._offset = 0  # byte offset just past the last applied frame
        #: Successful snapshot bootstraps since open.  Stays at 1 while
        #: refreshes ride the journal tail in O(|Δ|); every increment
        #: beyond that is a full snapshot re-read (generation change,
        #: journal shrink) — the counter the replication lag bench pins.
        self.bootstraps = 0
        self._snapshot_name = SNAPSHOT_FILE
        self._journal_name = JOURNAL_FILE
        self._closed = False
        self._pending_txid: Optional[str] = None
        self._resolved_txid: Optional[str] = None
        #: Optional hook answering for the coordinator's decision log:
        #: ``txid -> "commit" | "abort" | None``.  Injected by the
        #: sharded store's composite reader, which captures the log's
        #: decision set *once per composite refresh* (a coordinator
        #: cut), so every shard's scan in that refresh agrees on which
        #: spanning transactions are committed.  With a resolver set,
        #: the view shows a spanning transaction iff it is committed at
        #: the cut — an undecided prepare whose transaction the cut
        #: commits is applied early, and a decided pair whose commit
        #: postdates the cut is withheld until the next refresh.
        #: ``None`` answers keep the prepare withheld.
        self.txn_resolver: Optional[Callable[[str], Optional[str]]] = None
        #: Verdicts imported (read-only) from the writer's warm-start
        #: sidecar at open time; 0 when absent, stale, or corrupt.
        self.warm_start_verdicts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
        parallelism: Optional[int] = None,
        structure: str = "batched",
    ) -> "StoreReader":
        """Open a read-only view of ``directory`` without locking it.

        Bootstraps from the last compacted snapshot plus the committed
        journal prefix.  Never blocks on, and is never blocked by, the
        writer's advisory lock.
        """
        io = io if io is not None else StoreIO()
        if not os.path.isdir(directory):
            raise FileNotFoundError(f"{directory!r} is not a store directory")
        if not os.path.exists(os.path.join(directory, SNAPSHOT_FILE)):
            raise FileNotFoundError(f"{directory!r} has no {SNAPSHOT_FILE}")
        session = CheckSession(
            schema, parallelism=parallelism, structure=structure
        )
        reader = cls(directory, schema, registry, io, session)
        try:
            if not reader._bootstrap():
                raise StaleReadError(
                    f"could not bootstrap a consistent view of {directory!r} "
                    f"after {_BOOTSTRAP_RETRIES} attempts (a writer is "
                    "compacting faster than the reader can read)"
                )
            verdicts = _sidecar.load_sidecar(directory, schema)
            if verdicts is not None:
                try:
                    reader.warm_start_verdicts = session.import_verdicts(verdicts)
                except ValueError:
                    reader.warm_start_verdicts = 0
        except BaseException:
            session.close()
            raise
        return reader

    def close(self) -> None:
        """Release the legality session's workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._session.close()

    def __enter__(self) -> "StoreReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the read surface
    # ------------------------------------------------------------------
    def search(
        self,
        base=None,
        scope: Union[SearchScope, str] = SearchScope.SUB,
        filter=None,
        size_limit: Optional[int] = None,
    ) -> List[Entry]:
        """Scoped LDAP search over the current view (Section 3)."""
        self._ensure_open()
        return _search(
            self.instance, base=base, scope=scope,
            filter=filter, size_limit=size_limit,
        )

    def check(self) -> LegalityReport:
        """Full legality report of the current view (memoized session)."""
        self._ensure_open()
        return self._session.check(self.instance)

    def is_legal(self) -> bool:
        """Yes/no legality verdict of the current view."""
        return self.check().is_legal

    @property
    def session(self) -> CheckSession:
        """The reader's legality session (for stats/cache introspection)."""
        return self._session

    # ------------------------------------------------------------------
    # staleness introspection
    # ------------------------------------------------------------------
    def generation(self) -> int:
        """The generation id of the current view."""
        return self._generation

    def seq(self) -> int:
        """Sequence number of the last frame applied to the view (0 ==
        snapshot only)."""
        return self._seq

    def position(self) -> "tuple[int, int]":
        """``(generation, seq)`` — a total order over committed states."""
        return (self._generation, self._seq)

    def offset(self) -> int:
        """Byte offset just past the last journal frame applied to the
        view — the resume point a replication applier persists so a
        restarted follower tails from its durable position."""
        return self._offset

    @property
    def pending_txid(self) -> Optional[str]:
        """The txid of a prepared-but-undecided 2PC transaction the last
        scan stopped in front of (withheld from the view), or ``None``.
        A non-``None`` value means the transaction had no durable
        coordinator decision when the view was refreshed — genuinely
        in doubt, invisible here and on every sibling shard."""
        return self._pending_txid

    @property
    def resolved_txid(self) -> Optional[str]:
        """The txid of a prepared transaction applied *early* via the
        coordinator log (committed at the refresh's cut, decide frame
        still in flight), or ``None``.  While set, the view's content
        is ahead of :meth:`position` by exactly this transaction."""
        return self._resolved_txid

    def lag(self) -> ReaderLag:
        """How far the view trails the committed state on disk *right
        now* (a snapshot in time: the writer may advance immediately
        after).  Never mutates the view."""
        self._ensure_open()
        try:
            disk_generation = wal.header_generation(
                self._io.read_head(self._snapshot_path())
            )
        except OSError:
            return ReaderLag(generations=0, frames=0)
        if disk_generation != self._generation:
            scanned = self._scan_journal_for(disk_generation, offset=0)
            frames = len(scanned.records) if scanned is not None else 0
            return ReaderLag(
                generations=disk_generation - self._generation, frames=frames
            )
        scanned = self._scan_journal_for(self._generation, offset=self._offset)
        if scanned is None:
            return ReaderLag(generations=0, frames=0)
        behind = [r for r in scanned.records if r.seq > self._seq]
        return ReaderLag(generations=0, frames=len(behind))

    # ------------------------------------------------------------------
    # following the writer
    # ------------------------------------------------------------------
    def refresh(self, strict: bool = False) -> RefreshResult:
        """Advance the view to the newest committed state on disk.

        Fast path (no compaction since the last refresh): one O(1)
        snapshot-header probe plus a read of the journal bytes past the
        reader's offset — cost is O(new frames), independent of
        snapshot and journal size.  After a compaction the view is
        re-bootstrapped from the new snapshot.

        A torn or uncommitted journal suffix stops the replay silently
        at the previous committed frame — exactly where recovery would
        truncate — with ``result.note`` explaining why.  Racing a
        compaction retries a bounded number of times; if the writer
        outruns every retry the old (still consistent) view is kept
        and ``result.stale`` is set.  ``strict=True`` raises
        :class:`~repro.errors.StaleReadError` instead of returning a
        stale result.
        """
        self._ensure_open()
        result = self._refresh_once()
        if result.stale and strict:
            raise StaleReadError(
                f"reader at generation {self._generation} seq {self._seq} "
                f"could not reach the committed state on disk: {result.note}"
            )
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError("reader is closed")

    def _snapshot_path(self) -> str:
        return os.path.join(self._dir, self._snapshot_name)

    def _journal_path(self) -> str:
        return os.path.join(self._dir, self._journal_name)

    def _scan_journal_for(
        self, generation: int, offset: int
    ) -> Optional[wal.ScanResult]:
        """Scan journal bytes past ``offset`` for ``generation`` frames;
        ``None`` when the file vanished (compaction race)."""
        try:
            data = self._io.read_bytes_from(self._journal_path(), offset)
        except OSError:
            return None
        if generation == wal.LEGACY_GENERATION:
            return _scan_legacy(data)
        return wal.scan(data, expect_generation=generation)

    def _refresh_once(self) -> RefreshResult:
        try:
            head = self._io.read_head(self._snapshot_path())
        except OSError as exc:
            return self._result(
                stale=True, note=f"snapshot unreadable: {exc}"
            )
        disk_generation = wal.header_generation(head)
        if disk_generation != self._generation:
            return self._rebootstrap_result()

        try:
            journal_size = os.path.getsize(self._journal_path())
        except OSError:
            # Journal vanished under the same generation: mid-compaction
            # window or external interference — re-read everything.
            return self._rebootstrap_result()
        if journal_size < self._offset:
            # Shrunk without a generation bump: a recover run truncated
            # a torn tail (which we never applied), or the journal was
            # rewritten.  Re-bootstrap rather than guess.
            return self._rebootstrap_result()
        if journal_size == self._offset:
            return self._result(advanced=False)

        tail = self._scan_journal_for(self._generation, offset=self._offset)
        if tail is None:
            return self._rebootstrap_result()
        applied, note = self._apply_scanned(tail, base_offset=self._offset)
        if note == "resequenced":
            # The bytes at our offset are not the continuation we wrote
            # down: the journal changed identity under us.
            return self._rebootstrap_result()
        if tail.tail_state == "corrupt" and applied == 0 and not tail.records:
            # Corruption at the very first new byte can also be a
            # compaction racing the header probe (new-generation frames
            # under an old-generation snapshot read): check once more.
            try:
                now = wal.header_generation(
                    self._io.read_head(self._snapshot_path())
                )
            except OSError:
                now = self._generation
            if now != self._generation:
                return self._rebootstrap_result()
        if note is None and tail.tail_state != "clean":
            note = f"{tail.tail_state} journal tail: {tail.tail_reason}"
        return self._result(
            advanced=applied > 0,
            frames_replayed=applied,
            bytes_scanned=tail.total,
            note=note,
        )

    def _resolve_in_doubt(self, txid: str) -> Optional[str]:
        """Ask the injected resolver (if any) for the coordinator's
        durable decision on ``txid``; a failing resolver means in-doubt."""
        if self.txn_resolver is None:
            return None
        try:
            return self.txn_resolver(txid)
        except Exception:
            return None

    def _apply_scanned(
        self, scanned: wal.ScanResult, base_offset: int
    ) -> "tuple[int, Optional[str]]":
        """Replay ``scanned.records`` onto the view, stopping silently
        at the first frame that is damaged, out of order, or fails to
        replay.  Returns ``(frames_applied, note)``; a ``"resequenced"``
        note means the bytes do not continue our journal at all.

        2PC frames: a prepare is **invisible until decided** — the view
        stops *before* an undecided prepare, without advancing seq or
        offset, so the next refresh rescans from the prepare and picks
        up the coordinator's decide frame when it lands.  A decided pair
        advances the position by two frames, replaying the prepare's
        payload only when the verdict is commit."""
        applied = 0
        index = 0
        records = scanned.records
        self._pending_txid = None
        while index < len(records):
            record = records[index]
            if record.generation != self._generation or record.seq != self._seq + 1:
                if applied == 0:
                    return 0, "resequenced"
                return applied, (
                    f"frame seq {record.seq} does not follow seq {self._seq}"
                )
            if record.kind == "prepare":
                if index + 1 >= len(records):
                    # Undecided tail.  scan() has already guaranteed
                    # nothing else can follow an undecided prepare, so
                    # this ends the replay either way; the question is
                    # whether the prepare's payload is visible.
                    if record.txid == self._resolved_txid:
                        # Already applied via the coordinator log on an
                        # earlier pass; keep waiting for the decide
                        # frame to consume the pair positionally.
                        return applied, (
                            f"resolved transaction {record.txid} awaits "
                            "its decide frame"
                        )
                    verdict = self._resolve_in_doubt(record.txid)
                    if verdict == "commit":
                        # The coordinator durably committed this
                        # transaction; its decide frame is a formality
                        # still in flight.  Apply the payload now —
                        # withholding it while a sibling shard already
                        # shows its decided half would tear the
                        # cross-shard view — but leave seq/offset at the
                        # prepare so the pair is consumed normally once
                        # the decide lands.
                        try:
                            replay_record(self.instance, record)
                        except Exception as exc:
                            return applied, (
                                f"frame seq {record.seq} failed to "
                                f"replay ({exc}); stopped at the "
                                "previous committed frame"
                            )
                        self._resolved_txid = record.txid
                        return applied, (
                            f"transaction {record.txid} resolved as "
                            "committed via the coordinator log; its "
                            "decide frame is still in flight"
                        )
                    if verdict == "abort":
                        # Durably aborted: invisible on every shard, no
                        # tear possible — just wait for the decide.
                        return applied, (
                            f"prepared transaction {record.txid} "
                            "resolved as aborted via the coordinator "
                            "log; awaiting its decide frame"
                        )
                    # Genuinely in doubt (no durable decision, or no
                    # resolver): withhold it.
                    self._pending_txid = record.txid
                    return applied, (
                        f"prepared transaction {record.txid} awaits its "
                        "decide frame; stopped at the previous committed "
                        "frame"
                    )
                decide = records[index + 1]
                if record.txid == self._resolved_txid:
                    # Payload already applied when the coordinator log
                    # resolved it; just consume the pair's position.
                    self._resolved_txid = None
                elif decide.verdict == "commit":
                    if (
                        self.txn_resolver is not None
                        and self._resolve_in_doubt(record.txid) != "commit"
                    ):
                        # Decided after the coordinator cut this refresh
                        # is pinned to.  Applying it now could show this
                        # shard's half of a transaction a sibling shard's
                        # earlier scan could not have seen; stop before
                        # the pair — the next refresh's fresh cut picks
                        # it up.
                        return applied, (
                            f"transaction {record.txid} committed beyond "
                            "this refresh's coordinator cut; stopped "
                            "before its prepare frame"
                        )
                    try:
                        replay_record(self.instance, record)
                    except Exception as exc:
                        return applied, (
                            f"frame seq {record.seq} failed to replay "
                            f"({exc}); stopped at the previous committed "
                            "frame"
                        )
                self._seq = decide.seq
                self._offset = base_offset + decide.end
                applied += 2
                index += 2
                continue
            try:
                replay_record(self.instance, record)
            except Exception as exc:
                return applied, (
                    f"frame seq {record.seq} failed to replay ({exc}); "
                    "stopped at the previous committed frame"
                )
            self._seq = record.seq
            self._offset = base_offset + record.end
            applied += 1
            index += 1
        return applied, None

    def _bootstrap(self) -> bool:
        """(Re)build the view from snapshot + committed journal prefix.

        Retries around compaction races.  Returns False when no
        consistent read succeeded; the caller decides whether that is
        fatal (open) or merely stale (refresh)."""
        for _ in range(_BOOTSTRAP_RETRIES):
            manifest = read_manifest(self._dir, self._io)
            snapshot_name = manifest.snapshot if manifest else SNAPSHOT_FILE
            journal_name = manifest.journal if manifest else JOURNAL_FILE
            try:
                text = self._io.read_text(
                    os.path.join(self._dir, snapshot_name)
                )
            except OSError:
                continue
            generation, ldif_text = wal.decode_snapshot(text)
            try:
                journal_bytes = self._io.read_bytes(
                    os.path.join(self._dir, journal_name)
                )
            except OSError:
                journal_bytes = b""
            if generation == wal.LEGACY_GENERATION:
                scanned = _scan_legacy(journal_bytes)
            else:
                scanned = wal.scan(journal_bytes, expect_generation=generation)
            if scanned.tail_state == "corrupt" and not scanned.records:
                # Could be a compaction race (newer-generation frames
                # under the snapshot we just read): check the header
                # again; an unchanged generation means real corruption,
                # which is still a consistent committed prefix (here:
                # the bare snapshot).
                try:
                    now = wal.header_generation(
                        self._io.read_head(
                            os.path.join(self._dir, snapshot_name)
                        )
                    )
                except OSError:
                    continue
                if now != generation:
                    continue
            instance = parse_ldif(ldif_text, attributes=self._registry)
            self._snapshot_name = snapshot_name
            self._journal_name = journal_name
            self.instance = instance
            self._resolved_txid = None
            self._generation = generation
            self._seq = 0
            self._offset = 0
            # Attach secondary indexes *before* replaying the journal
            # tail, so the replay flows through the observer hooks and
            # the postings stay exact.  The sidecar only warm-starts a
            # view pinned at exactly (generation, position 0) — the
            # writer's compact() export; any other stamp rebuilds.
            keys, refs = _index.extras_index_attributes(self.schema.extras)
            postings = _index.load_index_sidecar(
                self._dir, self.schema, generation, 0
            )
            _index.AttributeIndexes.attach(instance, keys, refs, postings)
            replayable = wal.ScanResult(
                [r for r in scanned.records if r.generation == generation],
                scanned.tail_offset,
                scanned.tail_state,
                scanned.tail_reason,
                total=scanned.total,
            )
            self._apply_scanned(replayable, base_offset=0)
            self.bootstraps += 1
            return True
        return False

    def _rebootstrap_result(self) -> RefreshResult:
        before = self.position()
        if self._bootstrap():
            return self._result(
                advanced=self.position() != before, rebootstrapped=True
            )
        return self._result(
            stale=True,
            note=(
                f"re-bootstrap failed after {_BOOTSTRAP_RETRIES} attempts; "
                "keeping the previous consistent view"
            ),
        )

    def _result(
        self,
        advanced: bool = False,
        frames_replayed: int = 0,
        bytes_scanned: int = 0,
        rebootstrapped: bool = False,
        stale: bool = False,
        note: Optional[str] = None,
    ) -> RefreshResult:
        return RefreshResult(
            advanced=advanced,
            frames_replayed=frames_replayed,
            bytes_scanned=bytes_scanned,
            rebootstrapped=rebootstrapped,
            generation=self._generation,
            seq=self._seq,
            stale=stale,
            note=note,
        )
