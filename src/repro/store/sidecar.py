"""The warm-start verdict sidecar (``verdicts.cache``), shared by the
writer and read-only views.

The legality session's verdict cache is recomputable from the data, so
it rides in a *sidecar* file next to the snapshot rather than inside
the WAL protocol: a stale, missing, or corrupt sidecar costs a cold
start, never a wrong verdict.  Save and load are therefore best-effort
— any failure is swallowed — and both deliberately bypass ``StoreIO``:
the sidecar is advisory, not part of the instrumented durability
protocol, so fault injection and fsync accounting do not apply to it.

Ownership under the reader/writer split: **only the writer ever writes
the sidecar** (at ``compact()`` and ``close()``).  Readers call
:func:`load_sidecar` exactly once at open time and never persist —
their memo diverging from the writer's is expected and harmless,
because verdicts are keyed by content fingerprint (position- and
generation-independent), so a reader holding a pre-compaction view can
still warm-start from a post-compaction sidecar and vice versa.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Optional

from repro.schema.directory_schema import DirectorySchema
from repro.schema.dsl import serialize_dsl
from repro.store.recovery import SIDECAR_FILE

__all__ = ["schema_digest", "verdict_crc", "save_sidecar", "load_sidecar"]

SIDECAR_FORMAT = 1


def schema_digest(schema: DirectorySchema) -> str:
    """Digest binding a sidecar to the schema its verdicts were computed
    under (a different schema means every cached verdict is suspect)."""
    return hashlib.blake2b(serialize_dsl(schema).encode("utf-8")).hexdigest()


def verdict_crc(verdicts) -> int:
    """CRC32 of the canonical (sorted, compact) JSON form of an
    exported verdict mapping — the sidecar's integrity checksum."""
    canonical = json.dumps(verdicts, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def sidecar_path(directory: str) -> str:
    return os.path.join(directory, SIDECAR_FILE)


def save_sidecar(
    directory: str, schema: DirectorySchema, generation: int, verdicts
) -> None:
    """Persist ``verdicts`` atomically, best-effort (writer only)."""
    try:
        payload = {
            "format": SIDECAR_FORMAT,
            "schema": schema_digest(schema),
            "generation": generation,
            "crc": verdict_crc(verdicts),
            "verdicts": verdicts,
        }
        path = sidecar_path(directory)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    except Exception:  # pragma: no cover - persistence is best-effort
        pass


def load_sidecar(directory: str, schema: DirectorySchema) -> Optional[dict]:
    """The sidecar's verdict map when it is intact and bound to
    ``schema``; ``None`` (cold start) for anything else — missing,
    unreadable, truncated, garbled, wrong format, or stale digest."""
    try:
        with open(sidecar_path(directory), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != SIDECAR_FORMAT:
            return None
        if payload.get("schema") != schema_digest(schema):
            return None
        verdicts = payload.get("verdicts")
        if payload.get("crc") != verdict_crc(verdicts):
            return None
        return verdicts
    except Exception:
        return None
