"""Sharding the DIT across independent stores behind one view.

:class:`ShardedStore` routes disjoint DIT subtrees to independent
:class:`~repro.store.journal.DirectoryStore` directories — one WAL,
snapshot, manifest, and advisory lock per shard — via a persisted,
checksummed shard map (:mod:`repro.store.shardmap`).
:class:`CompositeReader` stitches per-shard lock-free
:class:`~repro.store.reader.StoreReader` views back into one read
surface.  Theorem 4.1's subtree modularity is what licenses the split:
a transaction touching one shard's subtree is checkable against that
shard alone, *except* for the checks whose scope spans the routing cut
— classified up front by :func:`repro.legality.scope.analyze_shard_scope`
and enforced here on the composite view.

Layout::

    root/
      shardmap            # checksummed routing table (written LAST)
      shards/
        <name>/           # a plain DirectoryStore per shard
          snapshot.ldif, journal.ldif, manifest, lock, ...

Enforcement split:

* **content** checks and **shard-local** structure checks ride the
  per-shard store's own incremental guard, unchanged;
* **required classes** and (under a nested cut) **cut-spanning edges**
  are enforced by :meth:`ShardedStore.apply` *before* anything becomes
  durable: a routed (single-shard) transaction is staged in memory
  (:meth:`~repro.store.journal.DirectoryStore.apply_tentative`),
  composite-checked, and only then journaled — a composite violation
  rolls the staging back with **zero durable footprint**, so there is
  no compensation commit and no crash window in which a
  composite-illegal state is durable;
* a transaction **spanning shards** commits through two-phase commit:
  each owning shard stages and journals a durable-but-invisible
  ``#PREPARE`` frame, the composite check runs on the staged state,
  and a ``commit`` record in the root's coordinator log
  (:mod:`repro.store.txlog`) is the single commit point — participant
  ``#DECIDE`` frames then make the prepares visible.  Recovery is
  presumed abort: an in-doubt participant (prepared, undecided) is
  resolved from the coordinator log at the next
  :meth:`ShardedStore.open` / :meth:`ShardedStore.open_shard`, and
  without a durable commit record the prepare aborts.  Killing the
  coordinator or any participant at any protocol step therefore leaves
  — after recovery — either every shard committed or every shard
  rolled back (``tests/harness/crash2pc.py`` enumerates the steps);
* **unroutable** DNs still raise
  :class:`~repro.errors.ShardRoutingError` — no shard owns the entry,
  which is a caller bug, not a legality verdict.  Deleting a nested
  shard's *attachment entry* (the enclosing-shard entry its base hangs
  under) is a cross-cut subtree delete: it commits (through 2PC) when
  the same transaction also deletes every entry of the nested shard,
  and is otherwise rejected with exactly the
  ``LDAP deletes leaves only`` precondition a single union store would
  raise;
* an **orphaned shard** (a nested shard whose attachment entry a
  per-shard writer or crash nevertheless removed) is a *reported*
  state, not a raising one: stitching grafts the orphan's entries as
  detached roots and every ``check()`` surface adds an
  ``orphaned-shard`` violation, so search/fsck keep working against
  the damaged store.

Semantics note: the per-shard guard checks each Theorem 4.1 subtree
step of a transaction *stepwise*, while composite elements are checked
once against the transaction's *final* state.  The two disciplines
nevertheless return identical verdicts for every transaction
:func:`~repro.updates.transactions.decompose` accepts, mixed
insert+delete ones included, because its LDAP preconditions make an
intermediate-only violation unrepairable by a later step of the same
transaction (spanning ones included — 2PC decomposes a transaction
per shard but the composite check still runs once, on the union of
all staged shard states): (a) structure elements relate entries only to their
ancestors/descendants, and an inserted entry's in-transaction
descendants are grouped into its own step, so an insert-step violation
involves an *existing ancestor* — which no later step may delete
(deleting it would put the insert root's parent inside a deleted
subtree, which decompose refuses); (b) delete subtrees are whole and
their roots disjoint, so a required relationship broken by one delete
step cannot have its source removed by another (the source's subtree
would contain the already-deleted entry); (c) required-class
populations only grow during the insert phase and only shrink during
the delete phase, and insertions run first.  Hence an illegal
intermediate state implies an illegal final state, and checking
composite elements once at the end loses nothing —
``test_differential_against_union_store`` exercises this with mixed
transactions in the stream.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ModelError, StoreError, UpdateError
from repro.legality.extras import ExtrasChecker
from repro.legality.metrics import CheckStats
from repro.legality.report import Kind, LegalityReport, Violation
from repro.legality.scope import (
    ShardScope,
    analyze_shard_scope,
    composite_structure_schema,
    shard_local_schema,
)
from repro.legality.structure import QueryStructureChecker
from repro.model.attributes import AttributeRegistry
from repro.model.dn import DN, parse_dn
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.query.search import SearchScope
from repro.query.search import search as _search
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import RequiredClass
from repro.store import index as _index
from repro.store.journal import DirectoryStore, inverse_transaction
from repro.store.reader import ReaderLag, RefreshResult, StoreReader
from repro.store.txlog import TXLOG_FILE, TxLog, inspect_txlog
from repro.store.wal import StoreIO
from repro.store.shardmap import (
    ShardMap,
    ShardSpec,
    read_shard_map,
    shard_dir,
    write_shard_map,
)
from repro.updates.incremental import UpdateOutcome
from repro.updates.operations import (
    DeleteEntry,
    InsertEntry,
    UpdateTransaction,
)

__all__ = [
    "ShardedStore",
    "CompositeReader",
    "CompositeRefreshResult",
    "check_shards_parallel",
]


# ----------------------------------------------------------------------
# shared helpers (writer and reader sides enforce identical semantics)
# ----------------------------------------------------------------------
def _globalized(report: LegalityReport, spec: ShardSpec) -> LegalityReport:
    """Re-suffix the violation DNs of a shard-local report so they name
    entries in the composite namespace."""
    if spec.suffix.is_empty():
        out = LegalityReport(list(report.violations))
        out.stats = report.stats
        return out
    suffix = str(spec.suffix)
    out = LegalityReport()
    out.stats = report.stats
    for violation in report:
        dn = violation.dn if violation.dn is None else f"{violation.dn},{suffix}"
        out.add(
            Violation(violation.kind, violation.message, dn=dn,
                      element=violation.element)
        )
    return out


def _orphan_report(
    shard_map: Optional[ShardMap],
    instances: Dict[str, DirectoryInstance],
) -> LegalityReport:
    """Violations for nested shards whose attachment entry is gone.

    A nested shard hangs off an entry of its enclosing shard (the
    shard's ``suffix``).  Per-shard writers (:meth:`ShardedStore.
    open_shard`, crash windows) can delete that entry out of the
    enclosing shard — the shard-local guard cannot see the nested
    shard's content — leaving a durable orphaned state.  That state is
    *reported* here as an :data:`~repro.legality.report.Kind.
    ORPHANED_SHARD` violation; stitching (:func:`_stitch`) tolerates
    it, so every read/check surface keeps working instead of raising.
    """
    report = LegalityReport()
    if shard_map is None:
        return report
    for spec in shard_map:
        if spec.suffix.is_empty() or len(instances[spec.name]) == 0:
            continue
        owner = shard_map.route(spec.suffix)
        local = shard_map.localize(spec.suffix, owner)
        if instances[owner.name].find(local) is None:
            report.add(
                _orphan_violation(
                    spec.name, len(instances[spec.name]),
                    str(spec.suffix), owner.name,
                )
            )
    return report


def _orphan_violation(
    shard_name: str, entry_count: int, suffix: str, owner_name: str
) -> Violation:
    return Violation(
        Kind.ORPHANED_SHARD,
        f"shard {shard_name!r} ({entry_count} entries) is orphaned: "
        f"its attachment entry {suffix!r} is missing from shard "
        f"{owner_name!r}",
        dn=suffix,
    )


def _composite_report(
    scope: ShardScope,
    shard_map: Optional[ShardMap],
    instances: Dict[str, DirectoryInstance],
    stitched,
) -> LegalityReport:
    """Evaluate the composite structure elements.

    ``stitched`` is a zero-argument callable producing the composite
    instance — only invoked when a cut-spanning edge actually needs
    it; a flat map's composite elements are just the required-class
    existence tests, answered from the per-shard class counts.
    ``shard_map`` is ``None`` when ``instances`` is not keyed by shard
    name (the pre-partition union at :meth:`ShardedStore.create` time,
    where an orphaned shard cannot exist).
    """
    report = _orphan_report(shard_map, instances)
    if scope.composite_edges:
        checker = QueryStructureChecker(composite_structure_schema(scope))
        report.extend(checker.check(stitched()).violations)
        return report
    for name in sorted(scope.required_classes):
        if sum(inst.class_count(name) for inst in instances.values()) == 0:
            report.add(
                Violation(
                    Kind.MISSING_REQUIRED_CLASS,
                    f"no entry belongs to required class {name!r}",
                    element=str(RequiredClass(name)),
                )
            )
    return report


def _stitch(
    shard_map: ShardMap,
    instances: Dict[str, DirectoryInstance],
    attributes: Optional[AttributeRegistry],
) -> DirectoryInstance:
    """Build the composite instance: graft each shard's subtree back at
    its base, enclosing shards (shallow bases) first so every nested
    cut finds its parent entry already present.

    A nested shard whose attachment entry is *missing* (an orphaned
    shard — see :func:`_orphan_report`) is grafted as detached roots
    instead of raising, so search/check surfaces over a damaged store
    report the violation rather than exploding on every call."""
    composite = DirectoryInstance(attributes=attributes)
    ordered = sorted(
        shard_map.specs, key=lambda s: (s.base.depth(), s.name)
    )
    for spec in ordered:
        parent = None if spec.suffix.is_empty() else str(spec.suffix)
        if parent is not None and composite.find(parent) is None:
            try:
                composite.insert_subtree(None, instances[spec.name])
            except ModelError:  # pragma: no cover - colliding wreckage
                # Detached roots can collide with existing entries in
                # an already-broken state; keep what stitched — the
                # orphan violation is reported either way.
                pass
            continue
        composite.insert_subtree(parent, instances[spec.name])
    return composite


def _global_document_key(instance: DirectoryInstance, entry: Entry):
    """Sort key giving the canonical global document order of a
    composite view: the root-first tuple of normalized RDN strings.

    Tuple comparison makes a parent sort before every descendant (its
    path is a strict prefix) and orders siblings by normalized RDN, so
    the order depends only on the *content* of the directory — not on
    shard layout, stitch order, or per-shard insertion history."""
    dn = instance.dn_of(entry)
    return tuple(str(rdn) for rdn in reversed(dn.normalized().rdns))


def _canonical_search(
    instance: DirectoryInstance,
    base,
    scope,
    filter,
    size_limit: Optional[int],
) -> List[Entry]:
    """Scoped search over a stitched composite, results in canonical
    global document order; ``size_limit`` truncates *after* ordering so
    the first N results are deterministic too."""
    results = _search(instance, base=base, scope=scope, filter=filter)
    results.sort(key=lambda entry: _global_document_key(instance, entry))
    if size_limit is not None and size_limit >= 0:
        del results[size_limit:]
    return results


def _localized_transaction(
    shard_map: ShardMap, transaction: UpdateTransaction, spec: ShardSpec
) -> UpdateTransaction:
    """The transaction with every DN rewritten into shard-local form."""
    if spec.suffix.is_empty():
        return transaction
    local = UpdateTransaction()
    for op in transaction:
        dn = shard_map.localize(op.dn, spec)
        if isinstance(op, InsertEntry):
            local.operations.append(InsertEntry(dn, op.classes, op.attributes))
        else:
            local.operations.append(DeleteEntry(dn))
    return local


def _shard_slice(
    shard_map: ShardMap, transaction: UpdateTransaction, spec: ShardSpec
) -> UpdateTransaction:
    """One shard's slice of a *spanning* transaction: only the
    operations routing to ``spec``, localized, in transaction order."""
    local = UpdateTransaction()
    for op in transaction:
        if shard_map.route(op.dn).name != spec.name:
            continue
        dn = shard_map.localize(op.dn, spec)
        if isinstance(op, InsertEntry):
            local.operations.append(InsertEntry(dn, op.classes, op.attributes))
        else:
            local.operations.append(DeleteEntry(dn))
    return local


# ----------------------------------------------------------------------
# the writer
# ----------------------------------------------------------------------
class ShardedStore:
    """K independent :class:`DirectoryStore` directories behind one
    routed write surface.

    Create via :meth:`create`, reopen via :meth:`open`.  Each shard
    holds its subtree *localized* (the base's parent suffix stripped)
    and enforces the shard-local slice of the schema; this object owns
    routing, composite enforcement, and the shard map.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        shard_map: ShardMap,
        shards: Dict[str, DirectoryStore],
        scope: ShardScope,
        registry: Optional[AttributeRegistry] = None,
        io: Optional[StoreIO] = None,
    ) -> None:
        self._dir = directory
        self.schema = schema
        self.shard_map = shard_map
        self._shards = shards
        self.scope = scope
        self._registry = registry
        self._io = io if io is not None else StoreIO()
        # The coordinator log needs no lock of its own: only a writer
        # holding EVERY shard's advisory lock (this object) appends to
        # it, and `open_shard` writers can never coexist with one.
        self._txlog = TxLog.open(directory, io=self._io)
        self._closed = False
        self._composite_cache: Optional[
            Tuple[Tuple[Tuple[str, int, int], ...], DirectoryInstance]
        ] = None
        self._extras_stats_delta: Optional[CheckStats] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        schema: DirectorySchema,
        shard_bases: Dict[str, Union[DN, str]],
        initial: Optional[DirectoryInstance] = None,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
    ) -> "ShardedStore":
        """Initialize a sharded store at ``directory``.

        ``initial`` is partitioned by routing every entry's DN; an
        entry no shard owns raises :class:`ShardRoutingError` before
        anything is written.  The shard map is written *last*: a crash
        mid-create leaves a root that refuses to open rather than a
        half-populated store that routes.  Not single-rename atomic
        (unlike ``DirectoryStore.create``): the completeness marker is
        the map, not the directory.

        Section 6.1 extras are supported: keys and references are
        directory-wide properties, so each per-shard store maintains
        key/referential postings (:mod:`repro.store.index`) for the
        *global* extras attributes even though its local schema carries
        none, and :meth:`apply` merges the per-shard postings at the
        composite check step — global key uniqueness costs a handful of
        index probes per transaction instead of a pass over the union.

        Raises
        ------
        UpdateError
            When ``initial`` violates the schema (composite elements
            and Section 6.1 extras included).
        """
        if os.path.exists(directory):
            raise StoreError(f"refusing to create over existing {directory!r}")
        shard_map = ShardMap.from_bases(shard_bases)
        scope = analyze_shard_scope(schema, shard_map)
        local_schema = shard_local_schema(schema, scope)

        base_instance = (
            initial
            if initial is not None
            else DirectoryInstance(attributes=registry)
        )
        # Composite elements are validated on the union up front: the
        # per-shard guards only ever see the shard-local slice.
        composite = _composite_report(
            scope,
            None,
            {"__union__": base_instance},
            lambda: base_instance,
        )
        if not composite.is_legal:
            raise UpdateError(
                "initial instance violates composite schema elements:\n"
                + str(composite)
            )
        if schema.extras is not None:
            # Like composite elements, extras are directory-wide:
            # validated on the union up front (the apply-time delta
            # checks assume a clean pre-state).
            extras_report = ExtrasChecker(schema.extras).check(base_instance)
            if not extras_report.is_legal:
                raise UpdateError(
                    "instance is not legal to begin with:\n"
                    + str(extras_report)
                )
        partitions = cls._partition(shard_map, base_instance, registry)
        index_keys, index_refs = _index.extras_index_attributes(schema.extras)

        os.makedirs(os.path.join(directory, "shards"))
        shards: Dict[str, DirectoryStore] = {}
        try:
            for spec in shard_map:
                shards[spec.name] = DirectoryStore.create(
                    shard_dir(directory, spec.name),
                    local_schema,
                    partitions[spec.name],
                    registry,
                    io=io,
                    index_key_attributes=index_keys,
                    index_referential_attributes=index_refs,
                )
            write_shard_map(directory, shard_map)
        except BaseException:
            for store in shards.values():
                store.close()
            shutil.rmtree(directory, ignore_errors=True)
            raise
        return cls(directory, schema, shard_map, shards, scope, registry, io=io)

    @staticmethod
    def _partition(
        shard_map: ShardMap,
        instance: DirectoryInstance,
        registry: Optional[AttributeRegistry],
    ) -> Dict[str, DirectoryInstance]:
        """Split ``instance`` into per-shard (localized) instances.

        Document-order traversal plus routing convexity (an entry's
        parent routes to the same shard unless the entry *is* a shard
        base) guarantee each parent exists in its shard before any
        child arrives.
        """
        partitions = {
            spec.name: DirectoryInstance(attributes=registry)
            for spec in shard_map
        }
        for entry in instance:
            dn = parse_dn(instance.dn_string_of(entry))
            spec = shard_map.route(dn)  # ShardRoutingError if unowned
            local_dn = shard_map.localize(dn, spec)
            parent = (
                None if local_dn.parent().is_empty() else str(local_dn.parent())
            )
            attributes = {
                name: list(entry.values(name))
                for name in entry.attribute_names()
                if name != "objectClass"
            }
            partitions[spec.name].add_entry(
                parent, entry.rdn, entry.classes, attributes
            )
        return partitions

    @classmethod
    def open(
        cls,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
    ) -> "ShardedStore":
        """Reopen a sharded store: read the (authoritative) shard map,
        recover and lock every shard, and resolve any in-doubt 2PC
        participants against the coordinator log (presumed abort: a
        prepare without a durable ``commit`` decision rolls back).

        Raises
        ------
        ShardMapError
            Missing or damaged shard map.
        StoreLockedError
            Any shard still locked by a live holder (shards already
            opened by this call are closed again first).
        StoreError
            A corrupt coordinator log — in-doubt decisions cannot be
            trusted, so the open refuses rather than guessing.
        """
        shard_map = read_shard_map(directory)
        scope = analyze_shard_scope(schema, shard_map)
        local_schema = shard_local_schema(schema, scope)
        index_keys, index_refs = _index.extras_index_attributes(schema.extras)
        shards: Dict[str, DirectoryStore] = {}
        try:
            for spec in shard_map:
                shards[spec.name] = DirectoryStore.open(
                    shard_dir(directory, spec.name), local_schema, registry,
                    io=io,
                    index_key_attributes=index_keys,
                    index_referential_attributes=index_refs,
                )
            store = cls(
                directory, schema, shard_map, shards, scope, registry, io=io
            )
            store._resolve_in_doubt()
        except BaseException:
            for shard in shards.values():
                shard.close()
            raise
        return store

    @classmethod
    def open_shard(
        cls,
        directory: str,
        name: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
    ) -> DirectoryStore:
        """Open ONE shard as a standalone writer (its own advisory
        lock; shard-local schema; DNs in shard-local form).

        This is the per-shard write path for multi-writer topologies —
        one writer process per shard, as in the stress harness.  The
        caller takes on what :meth:`apply` would otherwise enforce:
        composite elements are *not* checked here (readers surface
        composite violations via :meth:`CompositeReader.check`).

        If the shard holds an in-doubt 2PC prepare (the sharded writer
        died between prepare and decide), it is resolved here from the
        root's coordinator log — read-only, presumed abort — so the
        shard comes back writable.
        """
        shard_map = read_shard_map(directory)
        shard_map.spec(name)  # raises ShardMapError for unknown names
        scope = analyze_shard_scope(schema, shard_map)
        local_schema = shard_local_schema(schema, scope)
        index_keys, index_refs = _index.extras_index_attributes(schema.extras)
        store = DirectoryStore.open(
            shard_dir(directory, name), local_schema, registry, io=io,
            index_key_attributes=index_keys,
            index_referential_attributes=index_refs,
        )
        try:
            if store.pending_txid is not None and not store.read_only:
                log = inspect_txlog(directory, io=io)
                verdict = (
                    "abort" if log is None else log.verdict(store.pending_txid)
                )
                store.resolve_pending(verdict)
        except BaseException:
            store.close()
            raise
        return store

    def _resolve_in_doubt(self) -> List[Tuple[str, str, str]]:
        """Settle every in-doubt participant from the coordinator log
        and retire finished transactions; returns
        ``[(shard, txid, verdict), ...]`` for what was resolved."""
        resolved: List[Tuple[str, str, str]] = []
        for name in self.shard_map.names():
            shard = self._shards[name]
            txid = shard.pending_txid
            if txid is None or shard.read_only:
                # A degraded (read-only) shard keeps its in-doubt state
                # for `recover --shards` to deal with after repair.
                continue
            verdict = self._txlog.verdict(txid)
            shard.resolve_pending(verdict)
            resolved.append((name, txid, verdict))
        for txid, entry in sorted(self._txlog.unfinished().items()):
            if any(s.pending_txid == txid for s in self._shards.values()):
                continue  # still held in doubt by a degraded shard
            if entry.state == "begin":
                self._txlog.abort(txid)
            self._txlog.complete(txid)
        if resolved:
            self._composite_cache = None
        return resolved

    def close(self) -> None:
        """Close every shard (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for store in self._shards.values():
            store.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, dn: Union[DN, str]) -> ShardSpec:
        """The shard owning ``dn`` (raises :class:`ShardRoutingError`)."""
        return self.shard_map.route(dn)

    def shard(self, name: str) -> DirectoryStore:
        """The per-shard store (shard-local DNs!) for introspection."""
        return self._shards[name]

    def shard_names(self) -> Tuple[str, ...]:
        """Shard names in shard-map order."""
        return self.shard_map.names()

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def apply(self, transaction: UpdateTransaction) -> UpdateOutcome:
        """Route, stage, composite-check, and commit one transaction.

        A transaction whose operations all route to one shard takes the
        **fast path**: staged in that shard's memory
        (:meth:`~repro.store.journal.DirectoryStore.apply_tentative`),
        composite-checked, then journaled — or rolled back in memory
        with zero durable footprint.  A transaction **spanning shards**
        is decomposed per shard and committed through two-phase commit:
        every owning shard appends a durable-but-invisible ``#PREPARE``
        frame, the composite check runs on the union of the staged
        states, and the coordinator log's ``commit`` record is the
        single commit point before the per-shard ``#DECIDE`` frames
        land.  Either way the outcome (and any rejection) is exactly
        what a single union store's guard would have produced; only
        unroutable DNs raise :class:`ShardRoutingError` — no shard owns
        them, which is a caller bug, not a legality verdict.
        """
        self._ensure_open()
        transaction.validate()
        if not transaction.operations:
            return UpdateOutcome()
        order: List[str] = []
        for op in transaction:
            name = self.shard_map.route(op.dn).name  # ShardRoutingError
            if name not in order:
                order.append(name)
        # The decompose preconditions whose scope crosses the routing
        # cut — a shard-local guard cannot see them, so they are
        # checked here, up front, with the union store's exact errors.
        self._cross_cut_preconditions(transaction)
        if len(order) == 1:
            return self._apply_single(order[0], transaction)
        return self._apply_spanning(order, transaction)

    def _cross_cut_preconditions(self, transaction: UpdateTransaction) -> None:
        """Raise the :class:`UpdateError` a union store's decompose
        would raise for preconditions that span the cut.

        Only two relationships cross it (routing convexity: a child
        routes with its parent unless the child *is* a shard base):
        inserting a nested shard's base attaches under an entry of the
        enclosing shard, and deleting an entry above a nested base
        prunes the nested shard's whole population.  Everything else is
        validated by the owning shard's own guard.
        """
        if not self.shard_map.has_cut():
            return
        deleted = {
            str(op.dn.normalized()) for op in transaction.deletions()
        }
        inserted = {
            str(op.dn.normalized()) for op in transaction.insertions()
        }
        for op in transaction.insertions():
            spec = self.shard_map.route(op.dn)
            if spec.suffix.is_empty():
                continue
            if str(op.dn.normalized()) != str(spec.base.normalized()):
                continue
            parent = op.dn.parent()
            if str(parent.normalized()) in inserted:
                continue  # the enclosing shard's slice validates it
            owner = self.shard_map.route(parent)
            local = self.shard_map.localize(parent, owner)
            if self._shards[owner.name].instance.find(local) is None:
                raise UpdateError(
                    f"insertion {op.dn} has no parent: {parent} "
                    "is neither in the instance nor inserted"
                )
            if str(parent.normalized()) in deleted:
                raise UpdateError(
                    f"insertion {op.dn} attaches under {parent}, "
                    "which the same transaction deletes"
                )
        for op in transaction.deletions():
            if str(op.dn.parent().normalized()) in deleted:
                continue  # interior of a larger deleted subtree
            owner_name = self.shard_map.route(op.dn).name
            for other in self.shard_map:
                if other.name == owner_name:
                    continue
                if not op.dn.is_ancestor_of(other.base):
                    continue
                nested = self._shards[other.name].instance
                for entry in nested:
                    gdn = self.shard_map.globalize(
                        parse_dn(nested.dn_string_of(entry)), other
                    )
                    if str(gdn.normalized()) not in deleted:
                        raise UpdateError(
                            f"transaction deletes {op.dn} but not its "
                            f"descendant {gdn} (LDAP deletes leaves only)"
                        )

    def modify(self, record) -> UpdateOutcome:
        """Route and apply one ``changetype: modify`` record.

        A modify targets exactly one entry, so it always takes the
        single-shard fast path: staged in the owning shard's memory
        (:meth:`~repro.store.journal.DirectoryStore.modify_tentative`),
        composite-checked, then journaled as one ordinary WAL frame —
        or blind-reverted with zero durable footprint, the same
        discipline as :meth:`_apply_single`.
        """
        from repro.ldif.modify import ModifyRecord

        self._ensure_open()
        if not isinstance(record, ModifyRecord):
            raise UpdateError(
                "only changetype: modify records are journaled; "
                f"got {type(record).__name__}"
            )
        spec = self.shard_map.route(record.dn)  # ShardRoutingError
        local = ModifyRecord(
            self.shard_map.localize(record.dn, spec), record.ops
        )
        store = self._shards[spec.name]
        if self.schema.extras is not None:
            self._extras_checkpoint()
        outcome, inverse = store.modify_tentative(local)
        if not outcome.applied:
            return outcome
        self._composite_cache = None
        try:
            composite = _composite_report(
                self.scope,
                self.shard_map,
                {n: s.instance for n, s in self._shards.items()},
                self.composite_instance,
            )
            if composite.is_legal and self.schema.extras is not None:
                composite.extend(self._extras_delta_violations())
        except BaseException:
            try:
                store.revert_modified(inverse)
            finally:
                self._composite_cache = None
            raise
        if composite.is_legal:
            store.commit_modified(local)
            return self._fold_extras_stats(outcome)
        store.revert_modified(inverse)
        self._composite_cache = None
        return self._fold_extras_stats(UpdateOutcome(
            report=composite,
            cost=outcome.cost,
            checks=outcome.checks
            + [f"composite check: {self.scope.summary()}",
               "rolled back in memory (no durable footprint)"],
            stats=outcome.stats,
        ))

    def _apply_single(
        self, name: str, transaction: UpdateTransaction
    ) -> UpdateOutcome:
        """The routed fast path: one shard, one ordinary WAL frame —
        and nothing durable at all unless the composite check passes."""
        spec = self.shard_map.spec(name)
        store = self._shards[name]
        local_tx = _localized_transaction(self.shard_map, transaction, spec)
        inverse = inverse_transaction(local_tx, store.instance)
        if self.schema.extras is not None:
            self._extras_checkpoint()
        outcome = store.apply_tentative(local_tx)
        if not outcome.applied:
            # The guard's violation DNs are Δ-relative (an inserted
            # entry is a root of its own delta), exactly as a single
            # store reports them — re-suffixing here would fabricate
            # DNs no client ever named.  `_globalized` is for the
            # check() paths, whose DNs are shard-rooted.
            return outcome
        self._composite_cache = None
        try:
            composite = _composite_report(
                self.scope,
                self.shard_map,
                {n: s.instance for n, s in self._shards.items()},
                self.composite_instance,
            )
            if composite.is_legal and self.schema.extras is not None:
                composite.extend(self._extras_delta_violations())
        except BaseException:
            # The staged state must never outlive the check: roll the
            # memory back, then propagate.  Nothing was written, so a
            # crash here needs no recovery work at all.
            try:
                store.revert_applied(inverse)
            finally:
                self._composite_cache = None
            raise
        if composite.is_legal:
            store.commit_applied(local_tx)
            return self._fold_extras_stats(outcome)
        store.revert_applied(inverse)
        self._composite_cache = None
        return self._fold_extras_stats(UpdateOutcome(
            report=composite,
            cost=outcome.cost,
            checks=outcome.checks
            + [f"composite check: {self.scope.summary()}",
               "rolled back in memory (no durable footprint)"],
            stats=outcome.stats,
        ))

    def _apply_spanning(
        self, order: List[str], transaction: UpdateTransaction
    ) -> UpdateOutcome:
        """Two-phase commit across every owning shard.

        Protocol (named fault points in brackets — the crash harness
        kills the process at each one and asserts all-or-nothing):

        1. [``2pc:begin``] coordinator log records BEGIN + participants;
        2. per shard: guard + ``#PREPARE`` frame, fsynced
           [``2pc:prepared:<shard>``];
        3. composite check on the staged union [``2pc:decision``];
        4. coordinator log records COMMIT — **the commit point**
           [``2pc:committed``];
        5. per shard: ``#DECIDE commit`` frame [``2pc:decided:<shard>``];
        6. [``2pc:complete``] coordinator log records COMPLETE.

        A guard or composite rejection aborts instead: ABORT record,
        per-shard ``#DECIDE abort`` (rolling the staged memory back via
        the retained inverse), COMPLETE.  Any crash before step 4
        resolves to abort at the next open (presumed abort); any crash
        after it resolves to commit.
        """
        if self.schema.extras is not None:
            self._extras_checkpoint()
        self._io.fault_point("2pc:begin")
        txid = self._txlog.begin(order)
        outcomes: List[UpdateOutcome] = []
        prepared: List[str] = []
        rejection: Optional[UpdateOutcome] = None
        rejected_by: Optional[str] = None
        try:
            for name in order:
                spec = self.shard_map.spec(name)
                store = self._shards[name]
                local_tx = _shard_slice(self.shard_map, transaction, spec)
                outcome = store.prepare(txid, local_tx)
                if not outcome.applied:
                    rejection = outcome
                    rejected_by = name
                    break
                outcomes.append(outcome)
                prepared.append(name)
                self._io.fault_point(f"2pc:prepared:{name}")
            if rejection is None:
                self._composite_cache = None
                composite = _composite_report(
                    self.scope,
                    self.shard_map,
                    {n: s.instance for n, s in self._shards.items()},
                    self.composite_instance,
                )
                if composite.is_legal and self.schema.extras is not None:
                    composite.extend(self._extras_delta_violations())
                if composite.is_legal:
                    self._io.fault_point("2pc:decision")
                    self._txlog.commit(txid)
                    self._io.fault_point("2pc:committed")
                    for name in prepared:
                        self._shards[name].decide(txid, "commit")
                        self._io.fault_point(f"2pc:decided:{name}")
                    self._io.fault_point("2pc:complete")
                    self._txlog.complete(txid)
                    self._composite_cache = None
                    return self._fold_extras_stats(self._merge_outcomes(
                        outcomes,
                        LegalityReport(),
                        [f"2pc: committed {txid} across shards "
                         f"{', '.join(order)}"],
                    ))
                rejection = UpdateOutcome(
                    report=composite,
                    checks=[f"composite check: {self.scope.summary()}"],
                )
        except Exception:
            # A non-crash failure (e.g. a decompose precondition raised
            # by a shard's guard) aborts the prepared participants and
            # propagates.  An InjectedCrash is a BaseException and is
            # deliberately NOT caught: the simulated process is dead,
            # and recovery resolves the in-doubt prepares instead.
            self._abort(txid, prepared)
            raise
        why = (
            f"shard {rejected_by!r} rejected"
            if rejected_by is not None
            else "composite check failed"
        )
        self._abort(txid, prepared)
        return self._fold_extras_stats(self._merge_outcomes(
            outcomes + [rejection],
            rejection.report,
            [f"2pc: aborted {txid} ({why}); rolled back in memory "
             "(prepares never became visible)"],
        ))

    def _abort(self, txid: str, prepared: List[str]) -> None:
        """Decide ``txid`` as aborted everywhere: ABORT in the
        coordinator log (making the state explicit, though its absence
        would mean the same under presumed abort), ``#DECIDE abort``
        on every prepared shard (each rolls its staged memory back),
        then COMPLETE."""
        self._txlog.abort(txid)
        for name in prepared:
            self._shards[name].decide(txid, "abort")
            self._io.fault_point(f"2pc:decided:{name}")
        self._txlog.complete(txid)
        self._composite_cache = None

    @staticmethod
    def _merge_outcomes(
        outcomes: List[UpdateOutcome],
        report: LegalityReport,
        extra_checks: List[str],
    ) -> UpdateOutcome:
        """One :class:`UpdateOutcome` for the whole global transaction:
        costs sum, check descriptions concatenate, per-shard stats fold
        together."""
        merged = UpdateOutcome(report=report)
        for outcome in outcomes:
            merged.cost += outcome.cost
            merged.checks.extend(outcome.checks)
            if outcome.stats is not None:
                if merged.stats is None:
                    merged.stats = outcome.stats.copy()
                else:
                    merged.stats.merge(outcome.stats)
        merged.checks.extend(extra_checks)
        return merged

    # ------------------------------------------------------------------
    # Section 6.1 extras (global key/referential checks via per-shard
    # index probes, merged at the composite step)
    # ------------------------------------------------------------------
    def _extras_checkpoint(self) -> None:
        """Before staging: flush every shard's pending index maintenance
        so the per-shard dirty sets afterwards track exactly this
        transaction's footprint."""
        self._extras_stats_delta = None
        for name in self.shard_map.names():
            indexes = self._shards[name].instance.indexes
            if indexes is not None:
                indexes.delta_checkpoint()

    def _counters_total(self) -> Tuple[int, int, int]:
        """Sum of the ``(probes, hits, candidates)`` counters across
        every shard's indexes."""
        probes = hits = candidates = 0
        for name in self.shard_map.names():
            indexes = self._shards[name].instance.indexes
            if indexes is not None:
                p, h, c = indexes.counters()
                probes += p
                hits += h
                candidates += c
        return probes, hits, candidates

    def _fold_extras_stats(self, outcome: UpdateOutcome) -> UpdateOutcome:
        """Fold the composite-step extras probe counters into the
        outcome's stats, so ``--profile`` shows the O(|Δ|) key-check
        work on the sharded path exactly as the union store does."""
        delta = self._extras_stats_delta
        self._extras_stats_delta = None
        if delta is not None:
            if outcome.stats is None:
                outcome.stats = delta
            else:
                folded = outcome.stats.copy()
                folded.merge(delta)
                outcome.stats = folded
        return outcome

    def _extras_delta_violations(self) -> List[Violation]:
        """The Section 6.1 violations the staged update introduced.

        Runs at the composite check step, like the cut-spanning
        structure elements: keys and references are directory-wide, so
        each probe merges the per-shard key/referential postings
        (maintained for the *global* extras attributes — the local
        schemas carry none) and every DN is globalized, making the
        verdicts identical to a single union store's.  Cost is a
        handful of index probes per touched entry — O(|Δ|), not a pass
        over the union."""
        extras = self.schema.extras
        shard_map = self.shard_map
        counters_before = self._counters_total()
        views: List[Tuple[ShardSpec, DirectoryInstance, object]] = []
        touched: List[Tuple[Entry, str]] = []
        removed: List[str] = []
        for spec in shard_map:
            instance = self._shards[spec.name].instance
            indexes = instance.indexes
            if indexes is None:
                continue
            views.append((spec, instance, indexes))
            eids, local_removed = indexes.delta_collect()
            for eid in eids:
                local = parse_dn(instance.dn_string_of(eid))
                touched.append(
                    (instance._entries[eid],
                     str(shard_map.globalize(local, spec)))
                )
            for norm in local_removed:
                removed.append(
                    str(shard_map.globalize(parse_dn(norm), spec).normalized())
                )

        def key_holders(attribute: str, value) -> List[str]:
            holders: List[str] = []
            for spec, instance, indexes in views:
                for eid in indexes.key_holders(attribute, value):
                    local = parse_dn(instance.dn_string_of(eid))
                    holders.append(str(shard_map.globalize(local, spec)))
            return holders

        def resolve(target: str) -> bool:
            try:
                dn = parse_dn(target)
                spec = shard_map.route(dn)
                local = shard_map.localize(dn, spec)
            except Exception:
                return False  # unparseable or unrouted: names no entry
            return self._shards[spec.name].instance.find(local) is not None

        def referrers(attribute: str, norm_target: str):
            found: List[Tuple[Entry, str]] = []
            for spec, instance, indexes in views:
                for eid in indexes.referrers(attribute, norm_target):
                    local = parse_dn(instance.dn_string_of(eid))
                    found.append(
                        (instance._entries[eid],
                         str(shard_map.globalize(local, spec)))
                    )
            return found

        violations = _index.delta_extras_violations(
            extras, touched, removed, key_holders, resolve, referrers
        )
        probes, hits, candidates = (
            after - before
            for after, before in zip(self._counters_total(), counters_before)
        )
        self._extras_stats_delta = CheckStats(
            index_probes=probes, index_hits=hits, index_candidates=candidates
        )
        return violations

    # ------------------------------------------------------------------
    # the read/maintenance path
    # ------------------------------------------------------------------
    def check(self) -> LegalityReport:
        """Full legality of the composite state: every shard's own
        report (DNs globalized) plus the composite elements and — when
        the schema declares Section 6.1 extras — a full extras pass
        over the stitched union (keys and references are directory-wide
        properties no shard-local check can settle)."""
        self._ensure_open()
        merged = LegalityReport()
        for spec in self.shard_map:
            merged.extend(
                _globalized(self._shards[spec.name].check(), spec).violations
            )
        merged.extend(
            _composite_report(
                self.scope,
                self.shard_map,
                {name: s.instance for name, s in self._shards.items()},
                self.composite_instance,
            ).violations
        )
        if self.schema.extras is not None:
            merged.extend(
                ExtrasChecker(self.schema.extras)
                .check(self.composite_instance())
                .violations
            )
        return merged

    def search(
        self,
        base=None,
        scope: Union[SearchScope, str] = SearchScope.SUB,
        filter=None,
        size_limit: Optional[int] = None,
    ) -> List[Entry]:
        """Scoped LDAP search over the stitched composite view, in
        canonical global document order (layout-independent)."""
        self._ensure_open()
        return _canonical_search(
            self.composite_instance(), base, scope, filter, size_limit
        )

    def composite_instance(self) -> DirectoryInstance:
        """The stitched union of all shard states (cached per
        frontier; rebuilt only after a commit or compaction)."""
        self._ensure_open()
        frontier = self.frontier_key()
        if self._composite_cache is not None:
            cached_key, cached = self._composite_cache
            if cached_key == frontier:
                return cached
        stitched = _stitch(
            self.shard_map,
            {name: s.instance for name, s in self._shards.items()},
            self._registry,
        )
        self._composite_cache = (frontier, stitched)
        return stitched

    def frontier_key(self) -> Tuple[Tuple[str, int, int], ...]:
        """``((name, generation, journal_length), ...)`` per shard —
        the composite position."""
        return tuple(
            (name, self._shards[name].generation,
             self._shards[name].journal_length)
            for name in self.shard_map.names()
        )

    def compact(self) -> None:
        """Compact every shard (each bumps its own generation) and
        retire finished transactions from the coordinator log."""
        self._ensure_open()
        for store in self._shards.values():
            store.compact()
        self._txlog.compact()
        self._composite_cache = None

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError("sharded store is closed")


# ----------------------------------------------------------------------
# parallel whole-store checking (one worker process per shard)
# ----------------------------------------------------------------------
def _check_one_shard(
    path: str,
    local_schema: DirectorySchema,
    registry: Optional[AttributeRegistry],
    structure: str,
    required: Tuple[str, ...],
    probes: Tuple[Tuple[str, str], ...],
):
    """Worker body: check one shard through a lock-free reader.

    Returns ``(report, {required class: count}, entries, attachments)``
    — the counts let the parent answer required-class existence without
    stitching, and ``attachments`` maps each probed nested-shard name
    to whether its attachment entry (a shard-local DN of *this* shard)
    exists, so the parent can flag orphaned shards without stitching.
    """
    reader = StoreReader.open(path, local_schema, registry, structure=structure)
    try:
        report = reader.check()
        counts = {name: reader.instance.class_count(name) for name in required}
        attachments = {
            nested: reader.instance.find(dn) is not None
            for nested, dn in probes
        }
        return report, counts, len(reader.instance), attachments
    finally:
        reader.close()


def check_shards_parallel(
    directory: str,
    schema: DirectorySchema,
    registry: Optional[AttributeRegistry] = None,
    jobs: Optional[int] = None,
    structure: str = "batched",
) -> Tuple[LegalityReport, int]:
    """Check a sharded store with one worker *process per shard*.

    This is where the routing cut pays off: shards are independent
    store directories, so their (CPU-bound) legality checks run with
    no shared state at all — each worker opens its own lock-free
    reader, sidestepping the GIL entirely.  Composite elements are
    evaluated in the parent afterwards: required classes from the
    per-shard class counts the workers return; cut-spanning edges (only
    under a nested map) on a stitched composite view.

    Returns ``(merged report, total entries)``.  ``jobs`` caps worker
    processes (default: one per shard).
    """
    import concurrent.futures
    import multiprocessing

    shard_map = read_shard_map(directory)
    scope = analyze_shard_scope(schema, shard_map)
    local_schema = shard_local_schema(schema, scope)
    names = shard_map.names()
    workers = min(jobs or len(names), len(names))
    required = tuple(sorted(scope.required_classes))
    merged = LegalityReport()
    counts_total = {name: 0 for name in required}
    entries = 0
    # Each nested shard's attachment entry lives in its enclosing
    # shard; that shard's worker probes for it, so orphaned shards are
    # flagged without stitching (and even when no composite edge
    # forces a stitched pass).
    probes: Dict[str, List[Tuple[str, str]]] = {name: [] for name in names}
    for spec in shard_map:
        if spec.suffix.is_empty():
            continue
        owner = shard_map.route(spec.suffix)
        probes[owner.name].append(
            (spec.name, str(shard_map.localize(spec.suffix, owner)))
        )
    shard_entries: Dict[str, int] = {}
    attachment_present: Dict[str, bool] = {}
    ctx = multiprocessing.get_context(
        "fork" if hasattr(os, "fork") else None
    )
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=max(1, workers), mp_context=ctx
    ) as pool:
        futures = {
            name: pool.submit(
                _check_one_shard,
                shard_dir(directory, name),
                local_schema,
                registry,
                structure,
                required,
                tuple(probes[name]),
            )
            for name in names
        }
        for name in names:
            report, counts, count, attachments = futures[name].result()
            merged.extend(_globalized(report, shard_map.spec(name)).violations)
            for cls, n in counts.items():
                counts_total[cls] += n
            entries += count
            shard_entries[name] = count
            attachment_present.update(attachments)
    for spec in shard_map:
        if spec.suffix.is_empty() or shard_entries[spec.name] == 0:
            continue
        if not attachment_present[spec.name]:
            merged.add(
                _orphan_violation(
                    spec.name, shard_entries[spec.name],
                    str(spec.suffix), shard_map.route(spec.suffix).name,
                )
            )
    if scope.composite_edges or schema.extras is not None:
        # Nested cut (or Section 6.1 extras): the stitched view is
        # unavoidable for checks that can span it.  Orphans were
        # already flagged from the worker probes above; the tolerant
        # stitch keeps this pass from raising on a damaged store.
        with CompositeReader.open(directory, schema, registry) as reader:
            if scope.composite_edges:
                checker = QueryStructureChecker(
                    composite_structure_schema(scope)
                )
                merged.extend(checker.check(reader.instance).violations)
            if schema.extras is not None:
                merged.extend(
                    ExtrasChecker(schema.extras)
                    .check(reader.instance)
                    .violations
                )
    if not scope.composite_edges:
        for name in required:
            if counts_total[name] == 0:
                merged.add(
                    Violation(
                        Kind.MISSING_REQUIRED_CLASS,
                        f"no entry belongs to required class {name!r}",
                        element=str(RequiredClass(name)),
                    )
                )
    return merged, entries


# ----------------------------------------------------------------------
# the reader
# ----------------------------------------------------------------------
class CompositeRefreshResult:
    """What one :meth:`CompositeReader.refresh` did, per shard and in
    aggregate."""

    def __init__(self, per_shard: Dict[str, RefreshResult]) -> None:
        self.per_shard = per_shard
        self.advanced = any(r.advanced for r in per_shard.values())
        self.stale = any(r.stale for r in per_shard.values())
        #: A consistent frontier report: every shard's (generation,
        #: seq) as of this refresh — the composite view's position.
        self.frontier: Dict[str, Tuple[int, int]] = {
            name: (r.generation, r.seq) for name, r in per_shard.items()
        }
        notes = [
            f"{name}: {r.note}" for name, r in sorted(per_shard.items())
            if r.note
        ]
        self.note: Optional[str] = "; ".join(notes) if notes else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompositeRefreshResult(advanced={self.advanced}, "
            f"stale={self.stale}, frontier={self.frontier})"
        )


class CompositeReader:
    """Per-shard lock-free readers stitched into one read surface.

    Holds one :class:`StoreReader` per shard (no locks anywhere), a
    composite search/check surface over the stitched instance, and
    per-shard refresh/lag introspection.  The stitched instance is a
    *cross-shard snapshot*: each shard's slice is an actual committed
    state of that shard, but different shards' slices may be from
    different instants — per-shard writers commit independently, so no
    global total order exists to be consistent with.  ``frontier()``
    names the exact per-shard positions backing the current view.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        shard_map: ShardMap,
        readers: Dict[str, StoreReader],
        scope: ShardScope,
        registry: Optional[AttributeRegistry] = None,
    ) -> None:
        self._dir = directory
        self.schema = schema
        self.shard_map = shard_map
        self._readers = readers
        self.scope = scope
        self._registry = registry
        self._closed = False
        self._composite_cache: Optional[
            Tuple[Tuple, DirectoryInstance]
        ] = None
        self._txn_cut: Dict[str, str] = {}
        self._txn_cut_stamp: Optional[Tuple[int, int, int]] = None
        for reader in readers.values():
            reader.txn_resolver = self._txn_verdict

    @classmethod
    def open(
        cls,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        parallelism: Optional[int] = None,
        structure: str = "batched",
    ) -> "CompositeReader":
        """Open read-only views of every shard (no locks taken)."""
        shard_map = read_shard_map(directory)
        scope = analyze_shard_scope(schema, shard_map)
        local_schema = shard_local_schema(schema, scope)
        readers: Dict[str, StoreReader] = {}
        try:
            for spec in shard_map:
                readers[spec.name] = StoreReader.open(
                    shard_dir(directory, spec.name),
                    local_schema,
                    registry,
                    parallelism=parallelism,
                    structure=structure,
                )
        except BaseException:
            for reader in readers.values():
                reader.close()
            raise
        return cls(directory, schema, shard_map, readers, scope, registry)

    def close(self) -> None:
        """Close every per-shard reader (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for reader in self._readers.values():
            reader.close()

    def __enter__(self) -> "CompositeReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # read surface
    # ------------------------------------------------------------------
    def search(
        self,
        base=None,
        scope: Union[SearchScope, str] = SearchScope.SUB,
        filter=None,
        size_limit: Optional[int] = None,
    ) -> List[Entry]:
        """Scoped LDAP search over the stitched composite view, in
        canonical global document order (layout-independent)."""
        self._ensure_open()
        return _canonical_search(
            self.instance, base, scope, filter, size_limit
        )

    def check(self) -> LegalityReport:
        """Full legality of the composite view: per-shard reports
        (memoized sessions, DNs globalized) plus composite elements."""
        self._ensure_open()
        merged = LegalityReport()
        for spec in self.shard_map:
            merged.extend(
                _globalized(self._readers[spec.name].check(), spec).violations
            )
        merged.extend(
            _composite_report(
                self.scope,
                self.shard_map,
                {name: r.instance for name, r in self._readers.items()},
                lambda: self.instance,
            ).violations
        )
        if self.schema.extras is not None:
            merged.extend(
                ExtrasChecker(self.schema.extras)
                .check(self.instance)
                .violations
            )
        return merged

    def is_legal(self) -> bool:
        """Whether the composite view satisfies the whole schema."""
        return self.check().is_legal

    @property
    def instance(self) -> DirectoryInstance:
        """The stitched composite instance (cached per frontier).  The
        cache key includes each shard's early-resolved transaction —
        a resolved prepare changes the shard's *content* without moving
        its position, and must not be masked by a stale stitch."""
        self._ensure_open()
        key = tuple(
            (name, *self._readers[name].position(),
             self._readers[name].resolved_txid)
            for name in self.shard_map.names()
        )
        if self._composite_cache is not None:
            cached_key, cached = self._composite_cache
            if cached_key == key:
                return cached
        stitched = _stitch(
            self.shard_map,
            {name: r.instance for name, r in self._readers.items()},
            self._registry,
        )
        self._composite_cache = (key, stitched)
        return stitched

    def dn_string_of(self, entry: Entry) -> str:
        """The composite (global) DN of an entry returned by
        :meth:`search`."""
        return self.instance.dn_string_of(entry)

    # ------------------------------------------------------------------
    # refresh / staleness
    # ------------------------------------------------------------------
    def refresh(self, strict: bool = False) -> CompositeRefreshResult:
        """Refresh every shard view to a *cross-shard-atomic* committed
        frontier; per-shard results plus the frontier the composite now
        sits at.

        Shard journals advance independently, so sweeping them one
        after another could catch shard A after a spanning
        transaction's ``#DECIDE`` frame and shard B before its — a torn
        view showing half an atomically committed transaction.  The
        sweep is made atomic by a **coordinator cut**: the decision set
        of the coordinator log is captured once, before any shard is
        scanned, and every shard then shows a spanning transaction iff
        the cut commits it.  A shard whose decide frame is still in
        flight applies its prepared payload early (the cut proves the
        commit); a shard whose decide landed *after* the cut withholds
        the pair until the next refresh.  Soundness rests on the 2PC
        write order: every participant's prepare frame is durable
        before the coordinator's commit record, so a transaction the
        cut commits is visible to every shard's (later) scan.  A
        transaction with no durable decision at the cut is withheld on
        every shard — no decide frame can exist yet — matching the
        presumed-abort rule for writer crashes."""
        self._ensure_open()
        self._capture_txn_cut()
        results = {
            name: reader.refresh(strict=strict)
            for name, reader in self._readers.items()
        }
        return CompositeRefreshResult(results)

    def _capture_txn_cut(self) -> None:
        """Pin this refresh to the coordinator log's current decision
        set.  Re-parsed only when the log file changed (cheap stat
        probe); an unreadable or absent log yields an empty cut, which
        keeps every in-flight spanning transaction withheld."""
        path = os.path.join(self._dir, TXLOG_FILE)
        try:
            probe = os.stat(path)
            stamp = (probe.st_size, probe.st_mtime_ns, probe.st_ino)
        except OSError:
            self._txn_cut = {}
            self._txn_cut_stamp = None
            return
        if stamp == self._txn_cut_stamp:
            return
        try:
            log = inspect_txlog(self._dir, io=StoreIO())
        except StoreError:
            self._txn_cut = {}
            self._txn_cut_stamp = None
            return
        states = log.states() if log is not None else {}
        self._txn_cut = {
            txid: entry.verdict
            for txid, entry in states.items()
            if entry.decided
        }
        self._txn_cut_stamp = stamp

    def _txn_verdict(self, txid: str) -> Optional[str]:
        """Answer a shard reader's 2PC lookup from the captured cut.
        Only a decision durable at the cut is actionable: ``"commit"``
        / ``"abort"`` when the cut holds one, ``None`` for everything
        else — unknown txid, a bare ``begin`` — which keeps the
        transaction withheld on this shard.  The conservative ``None``
        matters twice over: a transaction with no durable commit may
        still abort, and one that committed *after* the cut was
        invisible to sibling shards scanned earlier in this pass."""
        return self._txn_cut.get(txid)

    def lag(self) -> Dict[str, ReaderLag]:
        """Per-shard lag behind the on-disk committed state."""
        self._ensure_open()
        return {name: r.lag() for name, r in self._readers.items()}

    def frontier(self) -> Dict[str, Tuple[int, int]]:
        """``{shard: (generation, seq)}`` of the current view."""
        self._ensure_open()
        return {name: r.position() for name, r in self._readers.items()}

    def shard_reader(self, name: str) -> StoreReader:
        """The per-shard reader (shard-local DNs!) for introspection."""
        return self._readers[name]

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError("composite reader is closed")
