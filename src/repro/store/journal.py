"""A crash-safe, schema-guarded directory store.

:class:`DirectoryStore` combines the Section 4 incremental legality
guard with a write-ahead-log storage engine:

* the **snapshot** (``snapshot.ldif``) is an LDIF content file prefixed
  with a generation-id header comment;
* the **journal** (``journal.ldif``) is an append-only sequence of
  checksummed, length-prefixed frames (:mod:`repro.store.wal`), one per
  committed transaction, fsynced before :meth:`apply` returns.

Every update goes through the
:class:`~repro.updates.incremental.IncrementalChecker` first — only
legality-preserving transactions reach the journal, so recovery
(:mod:`repro.store.recovery`) can replay blindly; Theorem 4.1's
modularity is what licenses that (``docs/paper_mapping.md``).

Crash-safety model (property-tested in ``tests/test_store_faults.py``
by crashing at every I/O boundary):

* :meth:`create` builds the store in a temp directory and publishes it
  with a single atomic rename — a crash leaves either no store or a
  complete one, never a half-initialised directory;
* :meth:`apply` appends one checksummed frame and fsyncs; a crash tears
  at most the in-flight frame, which recovery detects (CRC + length
  prefix), quarantines into ``journal.quarantine``, and truncates;
* :meth:`compact` bumps the store **generation**: the new snapshot is
  renamed into place carrying generation *g+1* while journal records
  carry *g*, so a crash between the two steps leaves a journal that
  recovery recognises as stale and discards instead of double-applying
  (the failure mode of the pre-WAL store);
* an advisory ``lock`` file (``flock``) rejects concurrent opens with
  :class:`~repro.errors.StoreLockedError`;
* when recovery finds real damage (checksum failure, replay error,
  illegal recovered instance) the store opens in degraded **read-only
  mode** instead of refusing: reads still serve, mutations raise
  :class:`~repro.errors.StoreReadOnlyError` until an explicit
  ``recover`` run quarantines the damage;
* in a **sharded** deployment each store doubles as a two-phase-commit
  participant: :meth:`prepare` appends a durable ``#PREPARE`` frame
  that stays invisible to readers and recovery until the matching
  ``#DECIDE`` frame lands (:meth:`decide`).  A store reopened with an
  undecided prepare is *in doubt*: ordinary writes refuse until
  :meth:`resolve_pending` applies the coordinator's presumed-abort
  verdict (:mod:`repro.store.txlog`).
"""

from __future__ import annotations

import glob
import os
import shutil
from typing import Callable, Iterable, Optional, Tuple

from repro.errors import (
    StoreError,
    StoreLockedError,
    StoreReadOnlyError,
    UpdateError,
)
from repro.ldif.changes import parse_changes, serialize_changes
from repro.ldif.writer import serialize_ldif
from repro.legality.extras import ExtrasChecker
from repro.legality.report import LegalityReport, Violation
from repro.model.attributes import AttributeRegistry
from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema
from repro.store import index as _index
from repro.store import recovery as _recovery
from repro.store import sidecar as _sidecar
from repro.store import wal
from repro.store.manifest import (
    MANIFEST_FILE,
    Manifest,
    encode_manifest,
    read_manifest,
    write_manifest,
)
from repro.store.reader import StoreReader
from repro.store.recovery import (
    JOURNAL_FILE,
    LOCK_FILE,
    RecoveryReport,
    SNAPSHOT_FILE,
)
from repro.store.wal import StoreIO
from repro.updates.incremental import IncrementalChecker, UpdateOutcome
from repro.updates.operations import InsertEntry, UpdateTransaction
from repro.updates.transactions import apply_subtree_update, decompose

__all__ = ["DirectoryStore", "inverse_transaction"]

#: Bounded retries for reclaiming a stale advisory lock (a dead holder
#: pid).  Each retry either acquires a fresh lock file or observes a
#: *live* contender and raises, so a handful of attempts suffices.
_LOCK_RECLAIM_ATTEMPTS = 4

#: Sibling of the lock file that serializes stale-lock reclaim.  It is
#: *never* unlinked, so a flock on it is always on the inode every
#: contender sees — the property the lock file itself loses the moment
#: reclaim unlinks it.
_LOCK_GUARD_SUFFIX = ".guard"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe).

    ``PermissionError`` means the pid exists but belongs to another
    user — treat it as alive; only a definite ``ProcessLookupError``
    licenses reclaiming the lock.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def inverse_transaction(
    transaction: UpdateTransaction, instance: DirectoryInstance
) -> UpdateTransaction:
    """The exact inverse of ``transaction`` against the pre-state
    ``instance``: built *before* applying, with operations in reverse
    order so every delete finds a leaf and every re-insert finds its
    parent.  :meth:`DirectoryStore.prepare` captures it so an aborted
    prepare can be rolled back in memory without touching disk (the
    abort ``#DECIDE`` frame already makes the prepare invisible to
    replay)."""
    inverse = UpdateTransaction()
    for op in reversed(transaction.operations):
        if isinstance(op, InsertEntry):
            inverse.delete(op.dn)
        else:
            entry = instance.find(op.dn)
            if entry is None:
                # The forward delete will be rejected by the guard; the
                # inverse is never replayed in that case.
                continue
            attributes = {
                name: list(entry.values(name))
                for name in entry.attribute_names()
                if name != "objectClass"
            }
            inverse.insert(op.dn, tuple(entry.classes), attributes)
    return inverse


class DirectoryStore:
    """A schema-guarded directory with WAL durability.

    Instances hold an advisory lock on their directory for their whole
    lifetime: use :meth:`close` (or a ``with`` block) to release it.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        instance: DirectoryInstance,
        guard: IncrementalChecker,
        *,
        generation: int = 1,
        journal_count: int = 0,
        io: Optional[StoreIO] = None,
        lock_handle=None,
        read_only: bool = False,
        recovery: Optional[RecoveryReport] = None,
        index_key_attributes: Optional[Iterable[str]] = None,
        index_referential_attributes: Optional[Iterable[str]] = None,
    ) -> None:
        self._dir = directory
        self.schema = schema
        self.instance = instance
        self._guard = guard
        self._generation = generation
        self._journal_count = journal_count
        self._io = io if io is not None else StoreIO()
        self._lock_handle = lock_handle
        self._read_only = read_only
        self._poisoned: Optional[str] = None
        self.recovery_report = recovery
        self._closed = False
        self._manifest_version = 0
        #: 2PC participant state: the prepared-but-undecided transaction
        #: (at most one — the WAL scan discipline enforces it).
        self._pending_txid: Optional[str] = None
        self._pending_payload: Optional[str] = None
        #: Whether the pending transaction is applied in memory (True on
        #: the writer path via :meth:`prepare`; False when it was found
        #: in the journal at open time and withheld from replay).
        self._pending_applied = False
        self._pending_inverse: Optional[UpdateTransaction] = None
        #: Verdicts imported from the warm-start sidecar at open time
        #: (0 when the sidecar was absent, stale, or corrupt).
        self.warm_start_verdicts = 0
        #: Secondary indexes (:mod:`repro.store.index`): adopt the index
        #: sidecar when it is stamped with exactly this (generation,
        #: journal position), else rebuild from the recovered instance.
        #: The sharded coordinator widens the key/referential sets so
        #: per-shard stores (whose local schema has no extras) still
        #: maintain the postings its global Section 6.1 probes need.
        keys, refs = _index.extras_index_attributes(schema.extras)
        if index_key_attributes is not None:
            keys = keys | frozenset(index_key_attributes)
        if index_referential_attributes is not None:
            refs = refs | frozenset(index_referential_attributes)
        postings = _index.load_index_sidecar(
            directory, schema, generation, journal_count
        )
        _index.AttributeIndexes.attach(instance, keys, refs, postings)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        schema: DirectorySchema,
        initial: Optional[DirectoryInstance] = None,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
        index_key_attributes: Optional[Iterable[str]] = None,
        index_referential_attributes: Optional[Iterable[str]] = None,
    ) -> "DirectoryStore":
        """Initialize a store directory atomically.

        The snapshot and journal are written into a sibling temp
        directory which is renamed into place in one step, so an
        interrupted ``create`` never leaves a partial store: the target
        either does not exist (retry freely) or is complete.  Stale
        temp directories from interrupted attempts are swept first.

        Raises
        ------
        UpdateError
            If the directory already holds a store (or is non-empty),
            or the initial instance is not legal w.r.t. the schema.
        StoreLockedError
            If another process locks the new store first.
        """
        io = io if io is not None else StoreIO()
        target = os.path.normpath(directory)
        if os.path.exists(os.path.join(target, SNAPSHOT_FILE)):
            raise UpdateError(f"{directory!r} already contains a store")
        if os.path.isdir(target) and os.listdir(target):
            raise UpdateError(
                f"{directory!r} is not empty and does not contain a store"
            )
        for stale in glob.glob(f"{target}.tmp-*"):
            shutil.rmtree(stale, ignore_errors=True)

        instance = (
            initial
            if initial is not None
            else DirectoryInstance(attributes=registry)
        )
        guard = IncrementalChecker(schema, instance)  # validates baseline
        if schema.extras is not None:
            # The incremental guard's baseline covers content and
            # structure; the Section 6.1 delta checks assume a clean
            # pre-state, so the extras pass must hold at creation too.
            extras_report = ExtrasChecker(schema.extras).check(instance)
            if not extras_report.is_legal:
                raise UpdateError(
                    "instance is not legal to begin with:\n"
                    + str(extras_report)
                )

        temp = f"{target}.tmp-{os.getpid()}"
        os.makedirs(temp)
        snapshot_text = wal.encode_snapshot(1, serialize_ldif(instance))
        with io.open_text(os.path.join(temp, SNAPSHOT_FILE), "w") as handle:
            handle.write(snapshot_text)
            io.fsync(handle)
        with io.open_bytes(os.path.join(temp, JOURNAL_FILE), "wb") as handle:
            io.fsync(handle)
        with io.open_bytes(os.path.join(temp, MANIFEST_FILE), "wb") as handle:
            handle.write(encode_manifest(Manifest(version=1, generation=1)))
            io.fsync(handle)
        io.fsync_dir(temp)
        if os.path.isdir(target):  # exists but empty: make room for rename
            os.rmdir(target)
        io.rename(temp, target)
        io.fsync_dir(os.path.dirname(os.path.abspath(target)))

        lock = cls._acquire_lock(target)
        store = cls(
            target,
            schema,
            instance,
            guard,
            generation=1,
            journal_count=0,
            io=io,
            lock_handle=lock,
            index_key_attributes=index_key_attributes,
            index_referential_attributes=index_referential_attributes,
        )
        store._manifest_version = 1
        return store

    @classmethod
    def open(
        cls,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
        strict: bool = False,
        index_key_attributes: Optional[Iterable[str]] = None,
        index_referential_attributes: Optional[Iterable[str]] = None,
    ) -> "DirectoryStore":
        """Recover the store and take its lock.

        Runs :func:`repro.store.recovery.recover`: the committed journal
        prefix is replayed blindly onto the snapshot, a torn tail is
        quarantined and truncated automatically, a stale (pre-compaction)
        journal is discarded, and the recovered instance is verified
        against ``schema``.  Real damage opens the store in degraded
        read-only mode (``strict=True`` raises instead).

        Legacy (pre-WAL) stores are recovered through the old commit-
        marker format and transparently upgraded to the WAL format.
        """
        io = io if io is not None else StoreIO()
        if not os.path.isdir(directory):
            raise FileNotFoundError(f"{directory!r} is not a store directory")
        lock = cls._acquire_lock(directory)
        try:
            instance, report = _recovery.recover(
                directory, schema, registry, io=io, repair=True, strict=strict
            )
            guard = IncrementalChecker(schema, instance, assume_legal=True)
            store = cls(
                directory,
                schema,
                instance,
                guard,
                generation=report.generation,
                journal_count=report.last_seq,
                io=io,
                lock_handle=lock,
                read_only=report.read_only,
                recovery=report,
                index_key_attributes=index_key_attributes,
                index_referential_attributes=index_referential_attributes,
            )
            if report.in_doubt_txid is not None:
                store._pending_txid = report.in_doubt_txid
                store._pending_payload = report.in_doubt_payload
                store._pending_applied = False
            store._adopt_manifest()
            if report.legacy_format and not report.read_only:
                store.compact()  # rewrites snapshot+journal in WAL format
                report.notes.append(
                    "upgraded legacy store to the WAL format (generation "
                    f"{store._generation})"
                )
            store._load_sidecar()
            return store
        except BaseException:
            cls._release_lock(lock)
            raise

    @classmethod
    def open_reader(
        cls,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
        parallelism: Optional[int] = None,
        structure: str = "batched",
    ) -> StoreReader:
        """Open a lock-free read-only view of the store.

        Unlike :meth:`open`, this neither takes the advisory lock nor
        rewrites any file: any number of readers can coexist with one
        live writer.  The view bootstraps from the last compacted
        snapshot plus the committed journal prefix and follows the
        writer incrementally via
        :meth:`~repro.store.reader.StoreReader.refresh`.  See
        :class:`~repro.store.reader.StoreReader` for the staleness and
        crash-consistency contract.
        """
        return StoreReader.open(
            directory,
            schema,
            registry,
            io=io,
            parallelism=parallelism,
            structure=structure,
        )

    def close(self) -> None:
        """Persist the warm-start sidecar (best effort) and release the
        advisory lock.  Idempotent; the store object must not be used
        afterwards."""
        if self._closed:
            return
        self._closed = True
        if self._poisoned is None and not self._read_only:
            self._save_sidecar()
            self._save_index_sidecar()
        self._release_lock(self._lock_handle)
        self._lock_handle = None

    def __enter__(self) -> "DirectoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(self, transaction: UpdateTransaction) -> UpdateOutcome:
        """Run a transaction through the incremental checker; journal it
        when (and only when) it commits.

        If the journal append fails (disk full, I/O error) the store is
        *poisoned*: the in-memory state is ahead of the durable state,
        so every subsequent operation raises until the store is reopened
        — reopening recovers exactly the durable committed prefix.

        The returned outcome carries ``outcome.stats``: the legality
        work this transaction cost (content checks, cache hits, query
        work — the ``check --profile`` counters), as the delta of the
        guard session's cumulative :class:`CheckStats`.

        When the schema declares Section 6.1 extras, a guard-approved
        transaction additionally passes the index-backed extras delta
        check (:func:`repro.store.index.delta_extras_violations`) — an
        O(|Δ|) probe of the key/referential postings replacing the old
        full-instance :class:`ExtrasChecker` pass.  A violating
        transaction is rolled back in memory and never journaled.
        """
        self._ensure_writable()
        extras_guarded = self._extras_enforced()
        if extras_guarded:
            extras_inverse = inverse_transaction(transaction, self.instance)
            extras_before = self._extras_checkpoint()
        baseline = self._guard.session.stats.copy()
        outcome = self._guard.apply_transaction(transaction)
        outcome.stats = self._guard.session.stats.since(baseline)
        if outcome.applied and extras_guarded:
            self._extras_settle(
                outcome,
                extras_before,
                lambda: self.revert_applied(extras_inverse),
            )
        if outcome.applied:
            frame = wal.encode_record(
                self._journal_count + 1,
                self._generation,
                serialize_changes(transaction),
            )
            try:
                self._io.append_bytes(self._journal_path(self._dir), frame)
            except Exception as exc:
                self._poisoned = f"journal append failed: {exc}"
                raise StoreError(
                    "journal append failed; the store is poisoned (the "
                    "in-memory state is ahead of disk) — close and reopen "
                    f"to recover the committed prefix: {exc}"
                ) from exc
            self._journal_count += 1
        return outcome

    # ------------------------------------------------------------------
    # in-place modification (journaled extension — see ldif/modify.py)
    # ------------------------------------------------------------------
    def modify(self, record) -> "UpdateOutcome":
        """Run one RFC 2849 ``changetype: modify`` record through the
        incremental checker; journal it when (and only when) it commits.

        The journal frame's payload is the modify record itself
        (:func:`repro.ldif.modify.serialize_modification`), which
        recovery and the WAL-following readers blind-replay through
        :func:`repro.ldif.modify.apply_modify_blind` — same poisoning
        contract as :meth:`apply`.  ``modrdn`` records are rejected:
        renames remain a memory-only extension with no replay form.
        """
        from repro.ldif.modify import (
            ModifyRecord,
            apply_modification,
            inverse_modification,
            serialize_modification,
        )

        self._ensure_writable()
        if not isinstance(record, ModifyRecord):
            raise UpdateError(
                "only changetype: modify records are journaled; "
                f"got {type(record).__name__}"
            )
        extras_guarded = self._extras_enforced()
        if extras_guarded:
            extras_inverse = inverse_modification(self.instance, record)
            extras_before = self._extras_checkpoint()
        baseline = self._guard.session.stats.copy()
        outcome = apply_modification(self._guard, record)
        outcome.stats = self._guard.session.stats.since(baseline)
        if outcome.applied and extras_guarded:
            self._extras_settle(
                outcome,
                extras_before,
                lambda: self.revert_modified(extras_inverse),
            )
        if outcome.applied:
            self._append_journal_payload(serialize_modification(record))
        return outcome

    def modify_tentative(self, record):
        """Guard and apply a modify record *in memory only*; returns
        ``(outcome, inverse_record)`` where the inverse — computed
        against the pre-state — undoes the modification via
        :meth:`revert_modified`.  The sharded coordinator's modify fast
        path stages with this, checks the composite, then either
        :meth:`commit_modified` or :meth:`revert_modified` — the same
        zero-durable-footprint discipline as :meth:`apply_tentative`.
        """
        from repro.ldif.modify import (
            ModifyRecord,
            apply_modification,
            inverse_modification,
        )

        self._ensure_writable()
        if not isinstance(record, ModifyRecord):
            raise UpdateError(
                "only changetype: modify records are journaled; "
                f"got {type(record).__name__}"
            )
        inverse = inverse_modification(self.instance, record)
        extras_guarded = self._extras_enforced()
        if extras_guarded:
            extras_before = self._extras_checkpoint()
        baseline = self._guard.session.stats.copy()
        outcome = apply_modification(self._guard, record)
        outcome.stats = self._guard.session.stats.since(baseline)
        if outcome.applied and extras_guarded:
            self._extras_settle(
                outcome,
                extras_before,
                lambda: self.revert_modified(inverse),
            )
        return outcome, inverse

    def commit_modified(self, record) -> None:
        """Journal a modify record that :meth:`modify_tentative` already
        applied in memory (poisoning contract of :meth:`apply`)."""
        from repro.ldif.modify import serialize_modification

        self._ensure_writable()
        self._append_journal_payload(serialize_modification(record))

    def revert_modified(self, inverse) -> None:
        """Blindly apply the inverse record from :meth:`modify_tentative`
        to undo a staged modify in memory.  No guard, no journal; a
        failure poisons the store (memory would diverge from disk)."""
        from repro.ldif.modify import apply_modify_blind

        try:
            apply_modify_blind(self.instance, inverse)
        except Exception as exc:
            self._poisoned = f"tentative modify rollback failed: {exc}"
            raise StoreError(
                "tentative modify rollback failed; the store is poisoned — "
                f"close and reopen to recover the committed prefix: {exc}"
            ) from exc

    def _append_journal_payload(self, payload: str) -> None:
        """Append one ordinary WAL frame carrying ``payload``, with the
        shared poisoning contract: a failed append leaves memory ahead
        of disk, so the store fails stop until reopened."""
        frame = wal.encode_record(
            self._journal_count + 1, self._generation, payload
        )
        try:
            self._io.append_bytes(self._journal_path(self._dir), frame)
        except Exception as exc:
            self._poisoned = f"journal append failed: {exc}"
            raise StoreError(
                "journal append failed; the store is poisoned (the "
                "in-memory state is ahead of disk) — close and reopen "
                f"to recover the committed prefix: {exc}"
            ) from exc
        self._journal_count += 1

    # ------------------------------------------------------------------
    # 2PC participant surface (driven by repro.store.sharded)
    # ------------------------------------------------------------------
    def apply_tentative(self, transaction: UpdateTransaction) -> UpdateOutcome:
        """Run a transaction through the incremental checker and apply
        it *in memory only* — nothing reaches the journal.

        The coordinator's single-shard fast path uses this to stage a
        routed transaction, runs the composite check on the staged
        state, and then either durably commits it
        (:meth:`commit_applied`) or rolls the memory back
        (:meth:`revert_applied`) with zero durable footprint — a
        rejected transaction never touches disk, so there is no
        compensation crash window.
        """
        self._ensure_writable()
        extras_guarded = self._extras_enforced()
        if extras_guarded:
            extras_inverse = inverse_transaction(transaction, self.instance)
            extras_before = self._extras_checkpoint()
        baseline = self._guard.session.stats.copy()
        outcome = self._guard.apply_transaction(transaction)
        outcome.stats = self._guard.session.stats.since(baseline)
        if outcome.applied and extras_guarded:
            self._extras_settle(
                outcome,
                extras_before,
                lambda: self.revert_applied(extras_inverse),
            )
        return outcome

    def commit_applied(self, transaction: UpdateTransaction) -> None:
        """Journal a transaction that :meth:`apply_tentative` already
        applied in memory.  Same poisoning contract as :meth:`apply`:
        an append failure leaves memory ahead of disk, so the store
        fails stop until reopened."""
        self._ensure_writable()
        frame = wal.encode_record(
            self._journal_count + 1,
            self._generation,
            serialize_changes(transaction),
        )
        try:
            self._io.append_bytes(self._journal_path(self._dir), frame)
        except Exception as exc:
            self._poisoned = f"journal append failed: {exc}"
            raise StoreError(
                "journal append failed; the store is poisoned (the "
                "in-memory state is ahead of disk) — close and reopen "
                f"to recover the committed prefix: {exc}"
            ) from exc
        self._journal_count += 1

    def revert_applied(self, inverse: UpdateTransaction) -> None:
        """Blindly replay ``inverse`` (built by :func:`inverse_transaction`
        against the pre-state) to undo an :meth:`apply_tentative` in
        memory.  No guard, no journal — the forward transaction never
        reached disk.  A replay failure poisons the store: memory would
        diverge from the durable state."""
        try:
            for step in decompose(inverse, self.instance):
                apply_subtree_update(self.instance, step)
        except Exception as exc:
            self._poisoned = f"tentative rollback failed: {exc}"
            raise StoreError(
                "tentative rollback failed; the store is poisoned — "
                f"close and reopen to recover the committed prefix: {exc}"
            ) from exc

    def prepare(self, txid: str, transaction: UpdateTransaction) -> UpdateOutcome:
        """Phase one: guard the transaction, apply it in memory, and
        append a durable ``#PREPARE`` frame.

        The prepare is invisible to readers, recovery, and replay until
        the matching ``#DECIDE`` frame lands — so a crash here leaves
        the shard in doubt, and the coordinator log's presumed-abort
        rule resolves it at the next open.  When the guard rejects the
        transaction nothing is written and the rejection outcome is
        returned; the caller aborts the global transaction.
        """
        self._ensure_writable()
        baseline = self._guard.session.stats.copy()
        inverse = inverse_transaction(transaction, self.instance)
        extras_guarded = self._extras_enforced()
        if extras_guarded:
            extras_before = self._extras_checkpoint()
        outcome = self._guard.apply_transaction(transaction)
        outcome.stats = self._guard.session.stats.since(baseline)
        if not outcome.applied:
            return outcome
        if extras_guarded:
            # Vet the delta *before* the durable #PREPARE frame: a
            # violating transaction must leave no trace for recovery
            # (or the coordinator) to resolve.
            self._extras_settle(
                outcome,
                extras_before,
                lambda: self.revert_applied(inverse),
            )
            if not outcome.applied:
                return outcome
        payload = serialize_changes(transaction)
        frame = wal.encode_prepare(
            txid, self._journal_count + 1, self._generation, payload
        )
        try:
            self._io.append_bytes(self._journal_path(self._dir), frame)
        except Exception as exc:
            self._poisoned = f"prepare append failed: {exc}"
            raise StoreError(
                f"prepare append failed for {txid}; the store is poisoned "
                "(the in-memory state is ahead of disk) — close and reopen "
                f"to recover the committed prefix: {exc}"
            ) from exc
        self._journal_count += 1
        self._pending_txid = txid
        self._pending_payload = payload
        self._pending_applied = True
        self._pending_inverse = inverse
        return outcome

    def decide(self, txid: str, verdict: str) -> None:
        """Phase two: append the ``#DECIDE`` frame for the prepared
        transaction, then reconcile memory with the verdict (an abort
        rolls back the in-memory apply via the retained inverse)."""
        self._ensure_writable(allow_pending=True)
        if verdict not in ("commit", "abort"):
            raise ValueError(f"invalid 2PC verdict {verdict!r}")
        if self._pending_txid != txid:
            pending = (
                f" (pending: {self._pending_txid})"
                if self._pending_txid is not None
                else ""
            )
            raise StoreError(
                f"shard has no prepared transaction {txid!r} to decide"
                + pending
            )
        self._settle_pending(verdict)

    def resolve_pending(self, verdict: str) -> str:
        """Resolve an in-doubt prepare found at open time with the
        coordinator's verdict; returns the resolved txid.

        Unlike :meth:`decide`, the prepared transaction is *not* in
        memory (recovery withheld it), so a commit verdict blindly
        replays the preserved payload and an abort needs no memory
        work at all — the decide frame alone retires the prepare.
        """
        self._ensure_writable(allow_pending=True)
        if verdict not in ("commit", "abort"):
            raise ValueError(f"invalid 2PC verdict {verdict!r}")
        if self._pending_txid is None:
            raise StoreError("store holds no in-doubt prepared transaction")
        txid = self._pending_txid
        self._settle_pending(verdict)
        return txid

    def _settle_pending(self, verdict: str) -> None:
        """Append the decide frame, clear the pending state, and bring
        memory in line with the verdict.  Disk first, memory second: a
        failure after the append poisons the store, and reopening
        replays the now-decided journal correctly."""
        txid = self._pending_txid
        frame = wal.encode_decide(
            txid, verdict, self._journal_count + 1, self._generation
        )
        try:
            self._io.append_bytes(self._journal_path(self._dir), frame)
        except Exception as exc:
            self._poisoned = f"decide append failed: {exc}"
            raise StoreError(
                f"decide append failed for {txid}; the store is poisoned — "
                f"close and reopen to recover: {exc}"
            ) from exc
        self._journal_count += 1
        payload = self._pending_payload
        applied = self._pending_applied
        inverse = self._pending_inverse
        self._pending_txid = None
        self._pending_payload = None
        self._pending_applied = False
        self._pending_inverse = None
        try:
            if verdict == "commit" and not applied:
                transaction = parse_changes(payload)
                for step in decompose(transaction, self.instance):
                    apply_subtree_update(self.instance, step)
            elif verdict == "abort" and applied:
                for step in decompose(inverse, self.instance):
                    apply_subtree_update(self.instance, step)
        except Exception as exc:
            self._poisoned = f"post-decide reconciliation failed: {exc}"
            raise StoreError(
                "post-decide reconciliation failed; the store is poisoned "
                f"(disk holds the decided journal) — close and reopen: {exc}"
            ) from exc

    @property
    def pending_txid(self) -> Optional[str]:
        """The id of the prepared-but-undecided 2PC transaction, or
        ``None`` — while set, ordinary writes refuse."""
        return self._pending_txid

    def check(self) -> LegalityReport:
        """A full legality report of the current contents (including
        the Section 6.1 extras pass when the schema declares one)."""
        report = self._guard.full_recheck()
        if self.schema.extras is not None:
            report.extend(
                ExtrasChecker(self.schema.extras).check(self.instance).violations
            )
        return report

    # ------------------------------------------------------------------
    # Section 6.1 extras enforcement (index-probe delta checks)
    # ------------------------------------------------------------------
    @property
    def indexes(self) -> Optional[_index.AttributeIndexes]:
        """The secondary indexes riding on this store's instance."""
        return self.instance.indexes

    def _extras_enforced(self) -> bool:
        """Whether updates must pass the extras delta check: the schema
        declares Section 6.1 extras and the instance carries indexes to
        probe them with."""
        return (
            self.schema.extras is not None
            and self.instance.indexes is not None
        )

    def _extras_checkpoint(self) -> Tuple[int, int, int]:
        """Before applying: flush pending index maintenance so the dirty
        set afterwards tracks exactly this update's footprint, and
        snapshot the probe counters."""
        indexes = self.instance.indexes
        indexes.delta_checkpoint()
        return indexes.counters()

    def _extras_delta_violations(self) -> "list[Violation]":
        """The Section 6.1 violations the just-applied update introduced,
        found by probing the key/referential postings instead of
        re-running :class:`ExtrasChecker` over the whole instance."""
        instance = self.instance
        indexes = instance.indexes
        touched, removed_dns = indexes.delta_collect()
        entries = [
            (instance._entries[eid], instance.dn_string_of(eid))
            for eid in touched
        ]

        def key_holders(attribute: str, value) -> "list[str]":
            return [
                instance.dn_string_of(eid)
                for eid in indexes.key_holders(attribute, value)
            ]

        def resolve(target: str) -> bool:
            try:
                return instance.find(target) is not None
            except Exception:
                return False

        def referrers(attribute: str, norm_target: str):
            return [
                (instance._entries[eid], instance.dn_string_of(eid))
                for eid in indexes.referrers(attribute, norm_target)
            ]

        return _index.delta_extras_violations(
            self.schema.extras,
            entries,
            removed_dns,
            key_holders,
            resolve,
            referrers,
        )

    def _extras_settle(
        self,
        outcome: UpdateOutcome,
        before: Tuple[int, int, int],
        revert: Callable[[], None],
    ) -> None:
        """After a guard-approved in-memory apply: run the delta check;
        on violation run ``revert`` and fold the violations into the
        outcome's report (flipping ``applied`` off).  Also attributes
        the index work to ``outcome.stats``."""
        violations = self._extras_delta_violations()
        after = self.instance.indexes.counters()
        if outcome.stats is not None:
            outcome.stats.index_probes += after[0] - before[0]
            outcome.stats.index_hits += after[1] - before[1]
            outcome.stats.index_candidates += after[2] - before[2]
        if violations:
            revert()
            outcome.report.extend(violations)
            outcome.checks.append(
                "extras delta check (index probes): rejected, rolled "
                "back in memory"
            )
        else:
            outcome.checks.append("extras delta check (index probes): clean")

    def compact(self) -> None:
        """Fold the journal into a fresh snapshot.

        The new snapshot carries generation *g+1* and is renamed into
        place atomically; the journal (whose records carry *g*) is then
        reset.  A crash between the two steps is safe: recovery sees
        old-generation records under a new-generation snapshot and
        discards them as stale instead of double-applying.
        """
        self._ensure_writable()
        new_generation = self._generation + 1
        snapshot_text = wal.encode_snapshot(
            new_generation, serialize_ldif(self.instance)
        )
        try:
            self._io.write_file_atomic(
                self._snapshot_path(self._dir), snapshot_text.encode("utf-8")
            )
            # -- crash window here: journal is stale, snapshot is new --
            self._io.write_file_atomic(self._journal_path(self._dir), b"")
        except Exception as exc:
            # The on-disk generation may now be ahead of self._generation;
            # appending more records would stamp them with the old id and
            # recovery would discard them as stale.  Fail stop.
            self._poisoned = f"compaction failed: {exc}"
            raise StoreError(
                "compaction failed; the store is poisoned — close and "
                f"reopen to recover: {exc}"
            ) from exc
        folded = self._journal_count
        self._generation = new_generation
        self._journal_count = 0
        self._publish_manifest(folded_seq=folded)
        self._save_sidecar()
        self._save_index_sidecar()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def journal_length(self) -> int:
        """The last journal frame sequence number since the last
        compaction.  Ordinary commits contribute one frame each; a
        decided 2PC transaction contributes two (prepare + decide), so
        this tracks the WAL position — the same value readers report as
        their ``position()`` seq — not the transaction count."""
        return self._journal_count

    @property
    def generation(self) -> int:
        """The store generation id (bumped by every compaction)."""
        return self._generation

    @property
    def read_only(self) -> bool:
        """Whether recovery degraded the store to read-only mode."""
        return self._read_only

    # ------------------------------------------------------------------
    # warm-start sidecar (shared logic in repro.store.sidecar; only the
    # writer ever saves it — readers load it read-only)
    # ------------------------------------------------------------------
    def _save_sidecar(self) -> None:
        try:
            verdicts = self._guard.session.export_verdicts()
        except Exception:  # pragma: no cover - persistence is best-effort
            return
        _sidecar.save_sidecar(self._dir, self.schema, self._generation, verdicts)

    def _save_index_sidecar(self) -> None:
        """Persist the secondary-index postings, stamped with the exact
        (generation, journal position) they reflect.  Skipped while a
        prepared-but-undecided 2PC transaction is applied in memory:
        recovery withholds that prepare from replay, so the stamp would
        claim a state the next open does not reconstruct."""
        indexes = self.instance.indexes
        if indexes is None or self._pending_txid is not None:
            return
        _index.save_index_sidecar(
            self._dir, self.schema, self._generation, self._journal_count, indexes
        )

    def _load_sidecar(self) -> None:
        verdicts = _sidecar.load_sidecar(self._dir, self.schema)
        if verdicts is None:
            self.warm_start_verdicts = 0
            return
        try:
            self.warm_start_verdicts = self._guard.session.import_verdicts(
                verdicts
            )
        except ValueError:
            self.warm_start_verdicts = 0

    # ------------------------------------------------------------------
    # manifest publication (writer side of the reader rendezvous)
    # ------------------------------------------------------------------
    def _adopt_manifest(self) -> None:
        """At open: pick up the published version counter and republish
        when the manifest is missing or disagrees with the recovered
        generation (a writer crashed inside compact's publish window,
        or the store predates manifests)."""
        existing = read_manifest(self._dir, self._io)
        self._manifest_version = existing.version if existing else 0
        if existing is None or existing.generation != self._generation:
            self._publish_manifest()

    def _publish_manifest(self, folded_seq: Optional[int] = None) -> None:
        """Atomically publish the current generation for readers.

        Best-effort on I/O *errors* — the snapshot header is the
        authoritative generation, so a stale manifest only costs
        readers a fallback probe — but an injected crash
        (``BaseException``) propagates so the fault matrix exercises
        every publish window.  Compaction passes ``folded_seq`` — the
        previous generation's journal frontier its snapshot folds — so
        a replication shipper can recognise caught-up followers.
        """
        manifest = Manifest(
            version=self._manifest_version + 1,
            generation=self._generation,
            folded_seq=folded_seq,
        )
        try:
            write_manifest(self._dir, manifest, self._io)
        except Exception:
            return
        self._manifest_version = manifest.version

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_writable(self, allow_pending: bool = False) -> None:
        if self._closed:
            raise StoreError("store is closed")
        if self._poisoned is not None:
            raise StoreError(
                f"store is poisoned ({self._poisoned}); close and reopen"
            )
        if self._read_only:
            raise StoreReadOnlyError(
                "store is in degraded read-only mode (recovery found "
                "damage); run `recover` on it to quarantine the damage"
            )
        if not allow_pending and self._pending_txid is not None:
            raise StoreError(
                f"store holds an in-doubt 2PC transaction "
                f"{self._pending_txid}; the coordinator log decides it — "
                "open the sharded store (or run `recover --shards` on its "
                "root) to resolve it"
            )

    @staticmethod
    def _snapshot_path(directory: str) -> str:
        return os.path.join(directory, SNAPSHOT_FILE)

    @staticmethod
    def _journal_path(directory: str) -> str:
        return os.path.join(directory, JOURNAL_FILE)

    @staticmethod
    def _acquire_lock(directory: str):
        import fcntl

        path = os.path.join(directory, LOCK_FILE)
        for _ in range(_LOCK_RECLAIM_ATTEMPTS):
            try:
                handle = open(path, "a+")
            except OSError as exc:
                # Unopenable lock file (permissions, directory
                # vanished): surface as the typed lock error rather
                # than a raw OSError so callers need one except clause
                # for "could not lock".
                raise StoreLockedError(
                    f"cannot open lock file {path!r}: {exc}"
                ) from exc
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                holder_pid: Optional[int] = None
                try:
                    handle.seek(0)
                    holder_pid = int(handle.read().strip() or "0") or None
                except (OSError, ValueError):
                    pass
                if holder_pid is not None and not _pid_alive(holder_pid):
                    # The recorded holder crashed without unlocking (its
                    # flock survives on an fd some other process
                    # inherited).  Reclaim: retire this lock *inode* so
                    # the stale flock guards nothing, then retry on a
                    # fresh file.  The unlink is serialized through the
                    # reclaim guard and verified against the inode we
                    # probed — never unlink a lock file some other
                    # contender just created and acquired.
                    DirectoryStore._reclaim_stale_lock(path, handle)
                    handle.close()
                    continue
                handle.close()
                holder = (
                    f"pid {holder_pid}" if holder_pid is not None
                    else "another live store handle"
                )
                raise StoreLockedError(
                    f"{directory!r} is locked by {holder} "
                    "(close it, or wait for the owning process to exit)",
                    holder_pid=holder_pid,
                ) from None
            # The flock we now hold may be on an inode a concurrent
            # reclaimer is about to retire (we opened the path before
            # its unlink).  Verify path identity and record our pid
            # *under the reclaim guard*: reclaimers unlink only under
            # that guard after re-reading the recorded pid, so either
            # our pid lands first (the reclaimer sees a live owner and
            # backs off) or the unlink lands first (we observe the
            # mismatch here and retry on the fresh file).
            if DirectoryStore._confirm_lock_ownership(path, handle):
                return handle
            handle.close()
            continue
        raise StoreLockedError(  # pragma: no cover - reclaim livelock
            f"{directory!r} lock could not be acquired after "
            f"{_LOCK_RECLAIM_ATTEMPTS} reclaim attempts"
        )

    @staticmethod
    def _confirm_lock_ownership(path: str, handle) -> bool:
        """Under the reclaim guard: verify ``path`` still names the
        inode ``handle`` flocked, and record our pid on it.

        Returns ``False`` when a reclaimer retired our inode first —
        the caller must retry on the file now at ``path``.
        """
        import fcntl

        try:
            guard = open(path + _LOCK_GUARD_SUFFIX, "a+")
        except OSError:  # pragma: no cover - unopenable guard
            guard = None  # degrade to the unguarded inode check
        try:
            if guard is not None:
                fcntl.flock(guard.fileno(), fcntl.LOCK_EX)
            try:
                if os.stat(path).st_ino != os.fstat(handle.fileno()).st_ino:
                    return False
            except OSError:
                return False
            # Record our pid for the next contender's error message and
            # the staleness check.  The write must succeed while the
            # guard is held: an empty lock file is indistinguishable
            # from a crashed-before-recording writer, which reclaimers
            # deliberately refuse to retire.
            try:
                handle.seek(0)
                handle.truncate()
                handle.write(str(os.getpid()))
                handle.flush()
            except OSError:  # pragma: no cover - diagnostics only
                pass
            return True
        finally:
            if guard is not None:
                guard.close()

    @staticmethod
    def _reclaim_stale_lock(path: str, probed) -> None:
        """Retire the stale lock inode that ``probed`` has open.

        Unlink-by-path is only safe if ``path`` still names the inode
        whose dead holder pid we read: two contenders that both probed
        the same dead holder would otherwise race unlink/re-create —
        the slower one deletes the lock file the faster one just
        acquired, and both end up holding exclusive flocks on
        *different* inodes (two live writers, WAL corruption).  All
        unlinks are therefore serialized through a separate guard file
        (``lock.guard``) that is *never* unlinked, and happen only
        after re-verifying, under the guard, that (a) ``path`` still
        names the probed inode and (b) the holder recorded on it is
        still dead.  A contender that loses the verification simply
        returns; the retry loop re-probes from scratch.
        """
        import fcntl

        try:
            guard = open(path + _LOCK_GUARD_SUFFIX, "a+")
        except OSError:  # pragma: no cover - unopenable guard
            return  # cannot serialize the unlink; let the retry re-probe
        try:
            # Blocking is fine: the guard is held only across the few
            # syscalls below, and we hold no other lock while waiting.
            fcntl.flock(guard.fileno(), fcntl.LOCK_EX)
            try:
                if os.stat(path).st_ino != os.fstat(probed.fileno()).st_ino:
                    return  # someone already retired this inode
            except OSError:
                return  # path gone mid-reclaim: nothing left to retire
            # Re-probe the holder under the guard: a fresh owner may
            # have flocked this very inode and recorded its (live) pid
            # since we read it.  Only a positively *dead* recorded pid
            # licenses the unlink — an empty or unreadable pid file
            # could be an owner mid-recording, so it is left alone.
            try:
                probed.seek(0)
                holder_pid = int(probed.read().strip() or "0") or None
            except (OSError, ValueError):
                holder_pid = None
            if holder_pid is None or _pid_alive(holder_pid):
                return  # a live (or unconfirmed) owner; respect it
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - vanished underneath
                pass
        finally:
            guard.close()  # closing drops the guard flock

    @staticmethod
    def _release_lock(handle) -> None:
        if handle is None:
            return
        import fcntl

        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - releasing is best-effort
            pass
        finally:
            handle.close()
