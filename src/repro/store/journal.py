"""A durable, schema-guarded directory store.

A production directory must survive restarts.  :class:`DirectoryStore`
adds durability to the Section 4 machinery with the classic
snapshot-plus-journal design, using the library's own formats:

* the **snapshot** is an LDIF content file (``snapshot.ldif``);
* the **journal** is an append-only LDIF *changes* file
  (``journal.ldif``): every committed transaction's records, in commit
  order, separated by comment markers.

Every update goes through the
:class:`~repro.updates.incremental.IncrementalChecker` first — only
legality-preserving transactions reach the journal, so recovery can
replay blindly.  :meth:`DirectoryStore.open` loads the snapshot and
replays the journal; :meth:`DirectoryStore.compact` folds the journal
into a fresh snapshot.

Crash-safety model (property-tested): journal entries are written and
flushed *after* the in-memory commit succeeds; a torn final record is
detected by the trailing commit marker and discarded on recovery, so a
crash between flush boundaries loses at most the in-flight transaction.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import UpdateError
from repro.ldif.changes import parse_changes, serialize_changes
from repro.ldif.reader import parse_ldif
from repro.ldif.writer import serialize_ldif
from repro.legality.report import LegalityReport
from repro.model.attributes import AttributeRegistry
from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema
from repro.updates.incremental import IncrementalChecker, UpdateOutcome
from repro.updates.operations import UpdateTransaction

__all__ = ["DirectoryStore"]

_COMMIT_MARKER = "# commit"


class DirectoryStore:
    """A schema-guarded directory with snapshot+journal durability."""

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        instance: DirectoryInstance,
        guard: IncrementalChecker,
    ) -> None:
        self._dir = directory
        self.schema = schema
        self.instance = instance
        self._guard = guard
        self._journal_count = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        schema: DirectorySchema,
        initial: Optional[DirectoryInstance] = None,
        registry: Optional[AttributeRegistry] = None,
    ) -> "DirectoryStore":
        """Initialize a store directory with an (optionally empty)
        snapshot and an empty journal.

        Raises
        ------
        UpdateError
            If the directory already holds a store, or the initial
            instance is not legal w.r.t. the schema.
        """
        os.makedirs(directory, exist_ok=True)
        snapshot = cls._snapshot_path(directory)
        if os.path.exists(snapshot):
            raise UpdateError(f"{directory!r} already contains a store")
        instance = (
            initial
            if initial is not None
            else DirectoryInstance(attributes=registry)
        )
        guard = IncrementalChecker(schema, instance)  # validates baseline
        with open(snapshot, "w", encoding="utf-8") as handle:
            handle.write(serialize_ldif(instance))
        open(cls._journal_path(directory), "w", encoding="utf-8").close()
        return cls(directory, schema, instance, guard)

    @classmethod
    def open(
        cls,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
    ) -> "DirectoryStore":
        """Load the snapshot and replay the journal.

        A torn final journal record (no trailing commit marker) is
        discarded.  The recovered instance is legality-checked before
        the store accepts further updates.
        """
        with open(cls._snapshot_path(directory), "r", encoding="utf-8") as handle:
            instance = parse_ldif(handle.read(), attributes=registry)
        count = 0
        for block in cls._read_journal(directory):
            cls._apply_blind(instance, parse_changes(block))
            count += 1
        guard = IncrementalChecker(schema, instance)  # full check here
        store = cls(directory, schema, instance, guard)
        store._journal_count = count
        return store

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(self, transaction: UpdateTransaction) -> UpdateOutcome:
        """Run a transaction through the incremental checker; journal it
        when (and only when) it commits."""
        outcome = self._guard.apply_transaction(transaction)
        if outcome.applied:
            self._append_journal(transaction)
            self._journal_count += 1
        return outcome

    def check(self) -> LegalityReport:
        """A full legality report of the current contents."""
        return self._guard.full_recheck()

    def compact(self) -> None:
        """Fold the journal into a fresh snapshot (atomic rename)."""
        snapshot = self._snapshot_path(self._dir)
        temp = snapshot + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(serialize_ldif(self.instance))
        os.replace(temp, snapshot)
        open(self._journal_path(self._dir), "w", encoding="utf-8").close()
        self._journal_count = 0

    @property
    def journal_length(self) -> int:
        """Number of committed transactions since the last compaction."""
        return self._journal_count

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot_path(directory: str) -> str:
        return os.path.join(directory, "snapshot.ldif")

    @staticmethod
    def _journal_path(directory: str) -> str:
        return os.path.join(directory, "journal.ldif")

    def _append_journal(self, transaction: UpdateTransaction) -> None:
        with open(self._journal_path(self._dir), "a", encoding="utf-8") as handle:
            handle.write(serialize_changes(transaction))
            handle.write(f"\n{_COMMIT_MARKER}\n\n")
            handle.flush()
            os.fsync(handle.fileno())

    @classmethod
    def _read_journal(cls, directory: str) -> List[str]:
        path = cls._journal_path(directory)
        if not os.path.exists(path):
            return []
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        blocks: List[str] = []
        current: List[str] = []
        committed_upto = 0
        for line in text.splitlines():
            if line.strip() == _COMMIT_MARKER:
                blocks.append("\n".join(current))
                current = []
                committed_upto = len(blocks)
            else:
                current.append(line)
        # anything after the last commit marker is a torn record: drop it
        return blocks[:committed_upto]

    @staticmethod
    def _apply_blind(instance: DirectoryInstance, transaction: UpdateTransaction) -> None:
        """Replay a committed transaction without re-checking (it was
        checked before it reached the journal)."""
        from repro.updates.transactions import apply_subtree_update, decompose

        for step in decompose(transaction, instance):
            apply_subtree_update(instance, step)
