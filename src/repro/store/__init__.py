"""Crash-safe, schema-guarded directory storage (snapshot + WAL).

* :class:`DirectoryStore` — the store engine (locking, degraded mode);
* :mod:`repro.store.wal` — checksummed journal frames and the
  :class:`~repro.store.wal.StoreIO` indirection layer;
* :mod:`repro.store.recovery` — WAL scan, quarantine, verification;
* :mod:`repro.store.faults` — deterministic fault injection for tests.
"""

from repro.store.journal import DirectoryStore
from repro.store.recovery import RecoveryReport, recover
from repro.store.wal import StoreIO

__all__ = ["DirectoryStore", "RecoveryReport", "recover", "StoreIO"]
