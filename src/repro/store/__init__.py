"""Crash-safe, schema-guarded directory storage (snapshot + WAL).

* :class:`DirectoryStore` — the store engine (locking, degraded mode);
* :class:`StoreReader` — lock-free read-only views that follow the
  writer's WAL incrementally (:mod:`repro.store.reader`);
* :mod:`repro.store.wal` — checksummed journal frames and the
  :class:`~repro.store.wal.StoreIO` indirection layer;
* :mod:`repro.store.recovery` — WAL scan, quarantine, verification;
* :mod:`repro.store.manifest` — the writer's advisory publication file;
* :mod:`repro.store.faults` — deterministic fault injection for tests.
"""

from repro.store.journal import DirectoryStore
from repro.store.manifest import Manifest, read_manifest
from repro.store.reader import ReaderLag, RefreshResult, StoreReader
from repro.store.recovery import RecoveryReport, recover
from repro.store.wal import StoreIO

__all__ = [
    "DirectoryStore",
    "StoreReader",
    "RefreshResult",
    "ReaderLag",
    "Manifest",
    "read_manifest",
    "RecoveryReport",
    "recover",
    "StoreIO",
]
