"""Durable, schema-guarded directory storage (snapshot + journal)."""

from repro.store.journal import DirectoryStore

__all__ = ["DirectoryStore"]
