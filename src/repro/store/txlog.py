"""The cross-shard two-phase-commit coordinator log.

A sharded store needs one durable place that decides the fate of a
transaction spanning shard WALs.  ``txlog``, at the sharded store's
root, is that place: an append-only sequence of the same checksummed,
generation-stamped frames the per-shard journals use
(:mod:`repro.store.wal`), each carrying a small JSON decision record::

    #WAL seq=1 gen=1 len=64 crc=0x2f91c0aa
    {"participants": ["att", "labs"], "state": "begin", "txid": "tx-1"}
    #END

States, in protocol order:

* ``begin`` — the coordinator is about to send prepares; names the
  participants.
* ``commit`` — **the commit point**: every participant's prepare frame
  is durable and the composite check passed.  Fsynced before any
  participant's decide frame is written.
* ``abort`` — an explicit abort decision (a participant's guard or the
  composite check rejected the transaction).  Recorded best-effort:
  its *absence* also means abort.
* ``complete`` — every participant's decide frame landed; the
  transaction needs no recovery work.

The decision rule is **presumed abort**: a transaction is committed iff
a durable ``commit`` record names it; anything else — a bare ``begin``,
a torn frame, a missing log — is an abort.  That is sound because the
coordinator orders its writes: participants' prepare frames are all
fsynced *before* the commit record, and the commit record is fsynced
*before* any participant's decide frame, so an in-doubt participant
(prepared, undecided) can never belong to a transaction whose commit
decision was lost.

A torn tail is therefore safe to quarantine (the classic crash-mid-
append artifact of a coordinator dying inside :meth:`TxLog.begin` or
:meth:`TxLog.commit` before the fsync made the decision durable: no
participant saw a decide).  A *corrupt* log is different — a decision
may have existed and been damaged — so :meth:`TxLog.open` refuses with
:class:`~repro.errors.StoreError` rather than guessing; resolution of
in-doubt participants must not run until the operator intervenes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.store import wal
from repro.store.wal import StoreIO

__all__ = ["TXLOG_FILE", "TXLOG_QUARANTINE_FILE", "TxState", "TxLog"]

TXLOG_FILE = "txlog"
TXLOG_QUARANTINE_FILE = "txlog.quarantine"

_STATES = ("begin", "commit", "abort", "complete")


@dataclass
class TxState:
    """Everything the log knows about one transaction."""

    txid: str
    state: str  # latest of "begin" | "commit" | "abort" | "complete"
    participants: Tuple[str, ...] = ()
    history: List[str] = field(default_factory=list)

    @property
    def decided(self) -> bool:
        """Whether a durable decision (or retirement) record exists."""
        return self.state in ("commit", "abort", "complete")

    @property
    def verdict(self) -> str:
        """The participant-facing decision under presumed abort: only a
        durable ``commit`` (or a commit that reached ``complete``)
        commits; everything else aborts."""
        if self.state == "commit":
            return "commit"
        if self.state == "complete":
            return "commit" if "commit" in self.history else "abort"
        return "abort"


class TxLog:
    """The coordinator's write handle on the decision log.

    Opened (and exclusively owned) by the :class:`ShardedStore` writer —
    the per-shard advisory locks already serialize writers on the root,
    so the log itself needs no extra lock.  Readers never touch it:
    prepare invisibility (:func:`repro.store.wal.resolve_decided`) keeps
    in-doubt state out of every read surface without consulting the
    coordinator.
    """

    def __init__(
        self,
        root: str,
        io: StoreIO,
        generation: int,
        seq: int,
        states: Dict[str, TxState],
        next_txid: int,
    ) -> None:
        self._root = root
        self._io = io
        self._generation = generation
        self._seq = seq
        self._states = states
        self._next_txid = next_txid

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str, io: Optional[StoreIO] = None) -> "TxLog":
        """Load (or initialise) the coordinator log at ``root``.

        A torn tail is quarantined into ``txlog.quarantine`` and
        truncated — presumed abort makes that safe.  Corruption raises
        :class:`~repro.errors.StoreError`: decisions may be damaged, so
        nothing that depends on them may proceed.
        """
        io = io if io is not None else StoreIO()
        path = cls._path(root)
        if not os.path.exists(path):
            return cls(root, io, generation=1, seq=0, states={}, next_txid=1)
        data = io.read_bytes(path)
        scanned = wal.scan(data)
        if scanned.tail_state == "corrupt":
            raise StoreError(
                f"coordinator log {path!r} is corrupt at byte "
                f"{scanned.tail_offset} ({scanned.tail_reason}); 2PC "
                "decisions may be damaged — quarantine it manually before "
                "reopening the sharded store"
            )
        if scanned.tail_state == "torn":
            tail = data[scanned.tail_offset:]
            header = (
                f"# quarantined {len(tail)} bytes from {TXLOG_FILE} offset "
                f"{scanned.tail_offset} (torn tail: {scanned.tail_reason})\n"
            ).encode("utf-8")
            io.append_bytes(
                os.path.join(root, TXLOG_QUARANTINE_FILE), header + tail + b"\n"
            )
            io.write_file_atomic(path, data[:scanned.tail_offset])
        states: Dict[str, TxState] = {}
        max_txid = 0
        generation = 1
        for record in scanned.records:
            generation = record.generation
            txid, state, participants = cls._decode_payload(
                record.payload, record.offset, path
            )
            entry = states.get(txid)
            if entry is None:
                entry = TxState(txid, state, tuple(participants))
                states[txid] = entry
            else:
                entry.state = state
                if participants:
                    entry.participants = tuple(participants)
            entry.history.append(state)
            if txid.startswith("tx-"):
                try:
                    max_txid = max(max_txid, int(txid[3:]))
                except ValueError:
                    pass
        seq = scanned.records[-1].seq if scanned.records else 0
        return cls(root, io, generation, seq, states, max_txid + 1)

    # ------------------------------------------------------------------
    # the protocol surface
    # ------------------------------------------------------------------
    def begin(self, participants: Sequence[str]) -> str:
        """Record the start of a spanning transaction; returns its txid."""
        txid = f"tx-{self._next_txid}"
        self._next_txid += 1
        self._append(txid, "begin", participants)
        self._states[txid] = TxState(
            txid, "begin", tuple(participants), history=["begin"]
        )
        return txid

    def commit(self, txid: str) -> None:
        """THE commit point: durably decide ``txid`` as committed.
        Returns only after the record is fsynced."""
        self._record(txid, "commit")

    def abort(self, txid: str) -> None:
        """Record an explicit abort (redundant under presumed abort, but
        it lets ``complete`` retire the transaction)."""
        self._record(txid, "abort")

    def complete(self, txid: str) -> None:
        """Record that every participant's decide frame landed; the
        transaction needs no resolution work at the next open."""
        self._record(txid, "complete")

    def _record(self, txid: str, state: str) -> None:
        entry = self._states.get(txid)
        if entry is None:
            raise StoreError(f"coordinator log has no transaction {txid!r}")
        self._append(txid, state, ())
        entry.history.append(state)
        entry.state = state

    # ------------------------------------------------------------------
    # resolution / introspection
    # ------------------------------------------------------------------
    def verdict(self, txid: str) -> str:
        """The presumed-abort decision for ``txid``: ``"commit"`` iff a
        durable commit record names it, else ``"abort"`` — including for
        transactions the log has never heard of (their begin record was
        lost with the crash, which also means no commit was decided)."""
        entry = self._states.get(txid)
        if entry is None:
            return "abort"
        return entry.verdict

    def unfinished(self) -> Dict[str, TxState]:
        """Transactions with no ``complete`` record — the ones whose
        participants may still hold undecided prepares."""
        return {
            txid: entry
            for txid, entry in self._states.items()
            if entry.state != "complete"
        }

    def states(self) -> Dict[str, TxState]:
        """Every transaction the log knows about (read-only snapshot)."""
        return dict(self._states)

    def compact(self) -> None:
        """Rewrite the log keeping only unfinished transactions, under a
        bumped generation (the same write-new-then-replace idiom as the
        snapshot; a crash mid-compaction leaves the old log intact)."""
        survivors = self.unfinished()
        generation = self._generation + 1
        frames = []
        seq = 0
        for txid in sorted(survivors, key=_txid_sort_key):
            entry = survivors[txid]
            for state in entry.history:
                seq += 1
                frames.append(
                    wal.encode_record(
                        seq, generation,
                        self._encode_payload(
                            txid, state,
                            entry.participants if state == "begin" else (),
                        ),
                    )
                )
        self._io.write_file_atomic(self._path(self._root), b"".join(frames))
        self._generation = generation
        self._seq = seq
        self._states = survivors

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _path(root: str) -> str:
        return os.path.join(root, TXLOG_FILE)

    @staticmethod
    def _encode_payload(
        txid: str, state: str, participants: Sequence[str]
    ) -> str:
        body = {"txid": txid, "state": state}
        if participants:
            body["participants"] = list(participants)
        return json.dumps(body, sort_keys=True)

    @staticmethod
    def _decode_payload(
        payload: str, offset: int, path: str
    ) -> Tuple[str, str, List[str]]:
        try:
            body = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"coordinator log {path!r} frame at byte {offset} is not "
                f"valid JSON: {exc}"
            ) from exc
        txid = body.get("txid")
        state = body.get("state")
        participants = body.get("participants", [])
        if (
            not isinstance(txid, str)
            or state not in _STATES
            or not isinstance(participants, list)
        ):
            raise StoreError(
                f"coordinator log {path!r} frame at byte {offset} is "
                f"malformed: {payload[:80]!r}"
            )
        return txid, state, [str(p) for p in participants]

    def _append(self, txid: str, state: str, participants: Sequence[str]) -> None:
        self._seq += 1
        frame = wal.encode_record(
            self._seq, self._generation,
            self._encode_payload(txid, state, participants),
        )
        try:
            self._io.append_bytes(self._path(self._root), frame)
        except Exception as exc:
            self._seq -= 1
            raise StoreError(
                f"coordinator log append failed ({state} for {txid}): {exc}"
            ) from exc


def _txid_sort_key(txid: str):
    if txid.startswith("tx-"):
        try:
            return (0, int(txid[3:]), txid)
        except ValueError:
            pass
    return (1, 0, txid)


def inspect_txlog(root: str, io: Optional[StoreIO] = None) -> Optional[TxLog]:
    """Load the coordinator log read-only for tools (``fsck --shards``);
    ``None`` when the root has none.  Unlike :meth:`TxLog.open` this
    never rewrites anything: a torn tail is tolerated (its frames past
    the committed prefix are simply not loaded) and corruption still
    raises."""
    io = io if io is not None else StoreIO()
    path = os.path.join(root, TXLOG_FILE)
    if not os.path.exists(path):
        return None
    data = io.read_bytes(path)
    scanned = wal.scan(data)
    if scanned.tail_state == "corrupt":
        raise StoreError(
            f"coordinator log {path!r} is corrupt at byte "
            f"{scanned.tail_offset} ({scanned.tail_reason})"
        )
    states: Dict[str, TxState] = {}
    max_txid = 0
    generation = 1
    for record in scanned.records:
        generation = record.generation
        txid, state, participants = TxLog._decode_payload(
            record.payload, record.offset, path
        )
        entry = states.get(txid)
        if entry is None:
            entry = TxState(txid, state, tuple(participants))
            states[txid] = entry
        else:
            entry.state = state
            if participants:
                entry.participants = tuple(participants)
        entry.history.append(state)
        if txid.startswith("tx-"):
            try:
                max_txid = max(max_txid, int(txid[3:]))
            except ValueError:
                pass
    seq = scanned.records[-1].seq if scanned.records else 0
    return TxLog(root, io, generation, seq, states, max_txid + 1)
