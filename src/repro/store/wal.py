"""Write-ahead-log record format and the pluggable I/O layer.

The journal (``journal.ldif``) is a sequence of *framed* records.  Each
frame keeps the LDIF changes text human-readable while making torn and
corrupted writes detectable::

    #WAL seq=3 gen=2 len=124 crc=0x7a1b03f9
    dn: uid=nina,ou=theory,o=att
    changetype: add
    ...
    #END

* ``len`` is the exact byte length of the payload (length-prefixing: the
  scanner never guesses at record boundaries);
* ``crc`` is CRC32 over ``"{seq}:{gen}:"`` plus the payload bytes, so a
  flipped sequence or generation field is caught too;
* ``seq`` numbers records 1.. within a generation and must be contiguous
  (a gap means a lost or reordered record);
* ``gen`` is the store **generation id**, stamped into both the snapshot
  header and every record.  :meth:`~repro.store.journal.DirectoryStore.compact`
  bumps the generation when it folds the journal into a new snapshot, so
  a crash between the snapshot rename and the journal reset leaves
  old-generation records that recovery recognises as *stale* (already in
  the snapshot) instead of double-applying them.

:func:`scan` classifies the journal tail as

* ``"clean"`` — the file ends exactly at a frame boundary;
* ``"torn"`` — the trailing bytes are a *prefix* of a frame (the normal
  artifact of a crash mid-append; recovery quarantines and truncates it
  and the store stays writable);
* ``"corrupt"`` — a structurally complete frame fails its checksum or
  sequence check, or the tail is not something our own appends could
  have produced (bit rot / foreign writes; recovery degrades the store
  to read-only until an explicit ``recover`` run).

:class:`StoreIO` is the indirection point the fault-injection harness
(:mod:`repro.store.faults`) hooks into: every filesystem touch the store
makes goes through one of its methods.
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "WalRecord",
    "ScanResult",
    "StoreIO",
    "encode_record",
    "scan",
    "encode_snapshot",
    "decode_snapshot",
    "header_generation",
    "LEGACY_GENERATION",
]

_HEADER_RE = re.compile(
    rb"^#WAL seq=(\d+) gen=(\d+) len=(\d+) crc=0x([0-9a-f]{1,8})$"
)
_TRAILER = b"#END\n"
_SNAPSHOT_HEADER_RE = re.compile(r"^# repro-store snapshot gen=(\d+) format=1\s*$")

#: Generation reported for snapshots written before the WAL engine
#: existed (no header comment).  Their journals use the legacy
#: ``# commit`` marker format.
LEGACY_GENERATION = 0


def _crc(seq: int, generation: int, payload: bytes) -> int:
    return zlib.crc32(f"{seq}:{generation}:".encode("ascii") + payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class WalRecord:
    """One decoded journal frame."""

    seq: int
    generation: int
    payload: str
    offset: int  # byte offset of the frame's header line
    frame_length: int  # total frame size in bytes

    @property
    def end(self) -> int:
        """Byte offset just past this frame."""
        return self.offset + self.frame_length


@dataclass
class ScanResult:
    """Outcome of scanning a journal byte string."""

    records: List[WalRecord]
    tail_offset: int  # where the committed prefix ends
    tail_state: str  # "clean" | "torn" | "corrupt"
    tail_reason: Optional[str] = None
    total: int = 0

    @property
    def tail_bytes(self) -> int:
        """Bytes past the committed prefix (torn or damaged)."""
        return self.total - self.tail_offset


def encode_record(seq: int, generation: int, payload: str) -> bytes:
    """Frame one committed transaction's LDIF changes text."""
    body = payload.encode("utf-8")
    if not body.endswith(b"\n"):
        body += b"\n"
    header = (
        f"#WAL seq={seq} gen={generation} len={len(body)} "
        f"crc=0x{_crc(seq, generation, body):08x}\n"
    ).encode("ascii")
    return header + body + _TRAILER


def scan(data: bytes, expect_generation: Optional[int] = None) -> ScanResult:
    """Decode frames from ``data`` until the end, a torn tail, or damage.

    ``expect_generation`` does **not** reject other generations — stale
    (older-generation) records are a legitimate crash artifact that
    :mod:`repro.store.recovery` handles — but a *newer* generation than
    the snapshot's is flagged as corruption.
    """
    records: List[WalRecord] = []
    pos = 0
    expected_seq: Optional[int] = None
    current_gen: Optional[int] = None

    def result(state: str, reason: Optional[str] = None) -> ScanResult:
        return ScanResult(records, pos, state, reason, total=len(data))

    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            # No complete header line: can only be a torn header write.
            return result("torn", "incomplete frame header at end of journal")
        header = data[pos:newline]
        match = _HEADER_RE.match(header)
        if match is None:
            # A newline-terminated line our appender never writes: if it
            # is the very last line it may still be a torn foreign
            # append, but either way it is not a frame prefix of ours.
            return result(
                "corrupt",
                f"unrecognised journal header at byte {pos}: "
                f"{header[:60]!r}",
            )
        seq = int(match.group(1))
        generation = int(match.group(2))
        length = int(match.group(3))
        crc = int(match.group(4), 16)
        body_start = newline + 1
        body_end = body_start + length
        if body_end + len(_TRAILER) > len(data):
            return result("torn", "frame extends past end of journal")
        body = data[body_start:body_end]
        if data[body_end:body_end + len(_TRAILER)] != _TRAILER:
            return result(
                "corrupt", f"frame at byte {pos} has no #END trailer"
            )
        if _crc(seq, generation, body) != crc:
            return result(
                "corrupt", f"checksum mismatch in frame at byte {pos}"
            )
        if current_gen is not None and generation != current_gen:
            return result(
                "corrupt",
                f"generation changes mid-journal at byte {pos} "
                f"({current_gen} -> {generation})",
            )
        if expect_generation is not None and generation > expect_generation:
            return result(
                "corrupt",
                f"frame at byte {pos} has generation {generation} newer "
                f"than the snapshot's {expect_generation}",
            )
        if expected_seq is not None and seq != expected_seq:
            return result(
                "corrupt",
                f"sequence gap at byte {pos}: expected seq={expected_seq}, "
                f"found seq={seq}",
            )
        current_gen = generation
        expected_seq = seq + 1
        frame_length = (body_end + len(_TRAILER)) - pos
        records.append(
            WalRecord(seq, generation, body.decode("utf-8"), pos, frame_length)
        )
        pos = body_end + len(_TRAILER)
    return result("clean")


# ----------------------------------------------------------------------
# snapshot header
# ----------------------------------------------------------------------
def encode_snapshot(generation: int, ldif_text: str) -> str:
    """Prefix LDIF content with the generation header comment (the LDIF
    parser skips ``#`` lines, so the snapshot stays a valid LDIF file)."""
    return f"# repro-store snapshot gen={generation} format=1\n{ldif_text}"


def decode_snapshot(text: str) -> Tuple[int, str]:
    """Split a snapshot file into ``(generation, ldif_text)``.

    A snapshot without the header comment was written by the pre-WAL
    store: it reports :data:`LEGACY_GENERATION` and its journal is read
    with the legacy ``# commit`` marker scanner.
    """
    first, _, rest = text.partition("\n")
    match = _SNAPSHOT_HEADER_RE.match(first)
    if match is None:
        return LEGACY_GENERATION, text
    return int(match.group(1)), rest


def header_generation(first_line: str) -> int:
    """Generation id from a snapshot's first line (the O(1) probe a
    reader uses to notice a compaction without decoding the snapshot)."""
    match = _SNAPSHOT_HEADER_RE.match(first_line)
    return LEGACY_GENERATION if match is None else int(match.group(1))


# ----------------------------------------------------------------------
# the I/O layer (fault-injection seam)
# ----------------------------------------------------------------------
class StoreIO:
    """Every filesystem operation the store performs, as overridable
    methods.  :class:`repro.store.faults.FaultyIO` substitutes versions
    that crash, tear writes, or fail at planned points."""

    def open_bytes(self, path: str, mode: str):
        """Open ``path`` in binary ``mode``."""
        return open(path, mode)

    def open_text(self, path: str, mode: str):
        """Open ``path`` in text ``mode`` as UTF-8."""
        return open(path, mode, encoding="utf-8")

    def fsync(self, handle) -> None:
        """Flush and fsync an open file handle."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: str, dst: str) -> None:
        """Atomically replace ``dst`` with ``src``."""
        os.replace(src, dst)

    def rename(self, src: str, dst: str) -> None:
        """Rename ``src`` to ``dst`` (``dst`` must not exist)."""
        os.rename(src, dst)

    def fsync_dir(self, path: str) -> None:
        """Fsync a directory so renames within it are durable."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- convenience wrappers used by the store ------------------------
    def write_file_atomic(self, path: str, data: bytes) -> None:
        """Write ``data`` to ``path`` via a same-directory temp file and
        an atomic rename, fsyncing both file and directory."""
        temp = path + ".tmp"
        with self.open_bytes(temp, "wb") as handle:
            handle.write(data)
            self.fsync(handle)
        self.replace(temp, path)
        self.fsync_dir(os.path.dirname(path) or ".")

    def append_bytes(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path`` and fsync before returning."""
        with self.open_bytes(path, "ab") as handle:
            handle.write(data)
            self.fsync(handle)

    def read_bytes(self, path: str) -> bytes:
        """Read ``path`` fully as bytes."""
        with self.open_bytes(path, "rb") as handle:
            return handle.read()

    def read_bytes_from(self, path: str, offset: int) -> bytes:
        """Read ``path`` from byte ``offset`` to the end — the journal
        tail a reader follows, so refresh I/O is O(new bytes), not
        O(journal)."""
        with self.open_bytes(path, "rb") as handle:
            handle.seek(offset)
            return handle.read()

    def read_head(self, path: str) -> str:
        """The first line of ``path`` without its newline (the cheap
        snapshot-generation probe)."""
        with self.open_text(path, "r") as handle:
            return handle.readline().rstrip("\n")

    def read_text(self, path: str) -> str:
        """Read ``path`` fully as UTF-8 text."""
        with self.open_text(path, "r") as handle:
            return handle.read()
