"""Write-ahead-log record format and the pluggable I/O layer.

The journal (``journal.ldif``) is a sequence of *framed* records.  Each
frame keeps the LDIF changes text human-readable while making torn and
corrupted writes detectable::

    #WAL seq=3 gen=2 len=124 crc=0x7a1b03f9
    dn: uid=nina,ou=theory,o=att
    changetype: add
    ...
    #END

* ``len`` is the exact byte length of the payload (length-prefixing: the
  scanner never guesses at record boundaries);
* ``crc`` is CRC32 over ``"{seq}:{gen}:"`` plus the payload bytes, so a
  flipped sequence or generation field is caught too;
* ``seq`` numbers records 1.. within a generation and must be contiguous
  (a gap means a lost or reordered record);
* ``gen`` is the store **generation id**, stamped into both the snapshot
  header and every record.  :meth:`~repro.store.journal.DirectoryStore.compact`
  bumps the generation when it folds the journal into a new snapshot, so
  a crash between the snapshot rename and the journal reset leaves
  old-generation records that recovery recognises as *stale* (already in
  the snapshot) instead of double-applying them.

:func:`scan` classifies the journal tail as

* ``"clean"`` — the file ends exactly at a frame boundary;
* ``"torn"`` — the trailing bytes are a *prefix* of a frame (the normal
  artifact of a crash mid-append; recovery quarantines and truncates it
  and the store stays writable);
* ``"corrupt"`` — a structurally complete frame fails its checksum or
  sequence check, or the tail is not something our own appends could
  have produced (bit rot / foreign writes; recovery degrades the store
  to read-only until an explicit ``recover`` run).

Two-phase commit adds two frame kinds to the same journal.  A
``#PREPARE`` frame carries a transaction's changes durably but keeps
them *invisible*: neither recovery nor a reader applies the payload
until a matching ``#DECIDE`` frame records the coordinator's verdict::

    #PREPARE txid=tx-7 seq=4 gen=2 len=87 crc=0x1fe2a990
    dn: ou=ml,ou=attLabs
    changetype: add
    ...
    #END
    #DECIDE txid=tx-7 verdict=commit seq=5 gen=2 len=0 crc=0x9b2c0441
    #END

Every frame kind consumes the next sequence number, so the contiguity
check spans all three.  The appender never starts a new frame while a
prepare is undecided, so :func:`scan` treats a ``#PREPARE`` followed by
anything but its own ``#DECIDE`` as corruption; at most one undecided
prepare can exist, and only as the very last frame (the *in-doubt*
state that :mod:`repro.store.recovery` resolves from the coordinator
log).  :func:`resolve_decided` folds decided pairs into the replayable
record list all consumers share.

:class:`StoreIO` is the indirection point the fault-injection harness
(:mod:`repro.store.faults`) hooks into: every filesystem touch the store
makes goes through one of its methods — including :meth:`~StoreIO.fault_point`,
a no-op marker the 2PC coordinator drops at every protocol step so the
crash harness can kill it there by name.
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "WalRecord",
    "ScanResult",
    "StoreIO",
    "encode_record",
    "encode_prepare",
    "encode_decide",
    "scan",
    "resolve_decided",
    "encode_snapshot",
    "decode_snapshot",
    "header_generation",
    "LEGACY_GENERATION",
]

_HEADER_RE = re.compile(
    rb"^#WAL seq=(\d+) gen=(\d+) len=(\d+) crc=0x([0-9a-f]{1,8})$"
)
_PREPARE_RE = re.compile(
    rb"^#PREPARE txid=([0-9A-Za-z._-]+) seq=(\d+) gen=(\d+) len=(\d+) "
    rb"crc=0x([0-9a-f]{1,8})$"
)
_DECIDE_RE = re.compile(
    rb"^#DECIDE txid=([0-9A-Za-z._-]+) verdict=(commit|abort) seq=(\d+) "
    rb"gen=(\d+) len=(\d+) crc=0x([0-9a-f]{1,8})$"
)
_TRAILER = b"#END\n"
_SNAPSHOT_HEADER_RE = re.compile(r"^# repro-store snapshot gen=(\d+) format=1\s*$")

#: Generation reported for snapshots written before the WAL engine
#: existed (no header comment).  Their journals use the legacy
#: ``# commit`` marker format.
LEGACY_GENERATION = 0


def _crc(seq: int, generation: int, payload: bytes) -> int:
    return zlib.crc32(f"{seq}:{generation}:".encode("ascii") + payload) & 0xFFFFFFFF


def _crc_2pc(
    kind: str, txid: str, verdict: str, seq: int, generation: int,
    payload: bytes,
) -> int:
    """Checksum for the 2PC frame kinds: covers the protocol fields too,
    so a flipped txid or verdict is caught like a flipped seq."""
    prefix = f"{seq}:{generation}:{kind}:{txid}:{verdict}:"
    return zlib.crc32(prefix.encode("ascii") + payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class WalRecord:
    """One decoded journal frame."""

    seq: int
    generation: int
    payload: str
    offset: int  # byte offset of the frame's header line
    frame_length: int  # total frame size in bytes
    kind: str = "commit"  # "commit" | "prepare" | "decide"
    txid: Optional[str] = None  # 2PC transaction id (prepare/decide)
    verdict: Optional[str] = None  # "commit" | "abort" (decide only)

    @property
    def end(self) -> int:
        """Byte offset just past this frame."""
        return self.offset + self.frame_length


@dataclass
class ScanResult:
    """Outcome of scanning a journal byte string."""

    records: List[WalRecord]
    tail_offset: int  # where the committed prefix ends
    tail_state: str  # "clean" | "torn" | "corrupt"
    tail_reason: Optional[str] = None
    total: int = 0

    @property
    def tail_bytes(self) -> int:
        """Bytes past the committed prefix (torn or damaged)."""
        return self.total - self.tail_offset


def encode_record(seq: int, generation: int, payload: str) -> bytes:
    """Frame one committed transaction's LDIF changes text."""
    body = payload.encode("utf-8")
    if not body.endswith(b"\n"):
        body += b"\n"
    header = (
        f"#WAL seq={seq} gen={generation} len={len(body)} "
        f"crc=0x{_crc(seq, generation, body):08x}\n"
    ).encode("ascii")
    return header + body + _TRAILER


def encode_prepare(txid: str, seq: int, generation: int, payload: str) -> bytes:
    """Frame one prepared (durable, not yet visible) transaction."""
    body = payload.encode("utf-8")
    if not body.endswith(b"\n"):
        body += b"\n"
    crc = _crc_2pc("prepare", txid, "", seq, generation, body)
    header = (
        f"#PREPARE txid={txid} seq={seq} gen={generation} len={len(body)} "
        f"crc=0x{crc:08x}\n"
    ).encode("ascii")
    return header + body + _TRAILER


def encode_decide(txid: str, verdict: str, seq: int, generation: int) -> bytes:
    """Frame the coordinator's verdict for a prepared transaction."""
    if verdict not in ("commit", "abort"):
        raise ValueError(f"invalid 2PC verdict {verdict!r}")
    crc = _crc_2pc("decide", txid, verdict, seq, generation, b"")
    header = (
        f"#DECIDE txid={txid} verdict={verdict} seq={seq} gen={generation} "
        f"len=0 crc=0x{crc:08x}\n"
    ).encode("ascii")
    return header + _TRAILER


def scan(data: bytes, expect_generation: Optional[int] = None) -> ScanResult:
    """Decode frames from ``data`` until the end, a torn tail, or damage.

    ``expect_generation`` does **not** reject other generations — stale
    (older-generation) records are a legitimate crash artifact that
    :mod:`repro.store.recovery` handles — but a *newer* generation than
    the snapshot's is flagged as corruption.
    """
    records: List[WalRecord] = []
    pos = 0
    expected_seq: Optional[int] = None
    current_gen: Optional[int] = None
    pending_txid: Optional[str] = None

    def result(state: str, reason: Optional[str] = None) -> ScanResult:
        return ScanResult(records, pos, state, reason, total=len(data))

    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            # No complete header line: can only be a torn header write.
            return result("torn", "incomplete frame header at end of journal")
        header = data[pos:newline]
        kind = "commit"
        txid: Optional[str] = None
        verdict: Optional[str] = None
        match = _HEADER_RE.match(header)
        if match is not None:
            seq = int(match.group(1))
            generation = int(match.group(2))
            length = int(match.group(3))
            crc = int(match.group(4), 16)
        elif (match := _PREPARE_RE.match(header)) is not None:
            kind = "prepare"
            txid = match.group(1).decode("ascii")
            seq = int(match.group(2))
            generation = int(match.group(3))
            length = int(match.group(4))
            crc = int(match.group(5), 16)
        elif (match := _DECIDE_RE.match(header)) is not None:
            kind = "decide"
            txid = match.group(1).decode("ascii")
            verdict = match.group(2).decode("ascii")
            seq = int(match.group(3))
            generation = int(match.group(4))
            length = int(match.group(5))
            crc = int(match.group(6), 16)
        else:
            # A newline-terminated line our appender never writes: if it
            # is the very last line it may still be a torn foreign
            # append, but either way it is not a frame prefix of ours.
            return result(
                "corrupt",
                f"unrecognised journal header at byte {pos}: "
                f"{header[:60]!r}",
            )
        body_start = newline + 1
        body_end = body_start + length
        if body_end + len(_TRAILER) > len(data):
            return result("torn", "frame extends past end of journal")
        body = data[body_start:body_end]
        if data[body_end:body_end + len(_TRAILER)] != _TRAILER:
            return result(
                "corrupt", f"frame at byte {pos} has no #END trailer"
            )
        if kind == "commit":
            expected_crc = _crc(seq, generation, body)
        else:
            expected_crc = _crc_2pc(
                kind, txid or "", verdict or "", seq, generation, body
            )
        if expected_crc != crc:
            return result(
                "corrupt", f"checksum mismatch in frame at byte {pos}"
            )
        if current_gen is not None and generation != current_gen:
            return result(
                "corrupt",
                f"generation changes mid-journal at byte {pos} "
                f"({current_gen} -> {generation})",
            )
        if expect_generation is not None and generation > expect_generation:
            return result(
                "corrupt",
                f"frame at byte {pos} has generation {generation} newer "
                f"than the snapshot's {expect_generation}",
            )
        if expected_seq is not None and seq != expected_seq:
            return result(
                "corrupt",
                f"sequence gap at byte {pos}: expected seq={expected_seq}, "
                f"found seq={seq}",
            )
        # 2PC discipline: the appender never starts a new frame while a
        # prepare is undecided, so an undecided prepare can only be the
        # very last frame; a decide must answer the pending prepare.
        if kind == "decide":
            if pending_txid is None:
                return result(
                    "corrupt",
                    f"decide frame at byte {pos} has no pending prepare",
                )
            if txid != pending_txid:
                return result(
                    "corrupt",
                    f"decide frame at byte {pos} answers txid={txid}, but "
                    f"the pending prepare is txid={pending_txid}",
                )
            pending_txid = None
        else:
            if pending_txid is not None:
                return result(
                    "corrupt",
                    f"frame at byte {pos} follows an undecided prepare "
                    f"(txid={pending_txid})",
                )
            if kind == "prepare":
                pending_txid = txid
        current_gen = generation
        expected_seq = seq + 1
        frame_length = (body_end + len(_TRAILER)) - pos
        records.append(
            WalRecord(
                seq, generation, body.decode("utf-8"), pos, frame_length,
                kind, txid, verdict,
            )
        )
        pos = body_end + len(_TRAILER)
    return result("clean")


def resolve_decided(
    records: List[WalRecord],
) -> Tuple[List[WalRecord], Optional[WalRecord]]:
    """Fold 2PC pairs out of a scanned record list.

    Returns ``(visible, pending)``: ``visible`` is the list of records
    whose payloads a consumer should replay, in order — ordinary commit
    frames plus every prepare whose decide frame says ``commit`` —
    and ``pending`` is the trailing undecided prepare (``None`` when
    every frame is decided).  An aborted prepare and both halves' decide
    frames simply vanish from ``visible``.  :func:`scan` has already
    enforced that prepares and decides pair up, so this never guesses.
    """
    visible: List[WalRecord] = []
    pending: Optional[WalRecord] = None
    for record in records:
        if record.kind == "prepare":
            pending = record
        elif record.kind == "decide":
            if record.verdict == "commit" and pending is not None:
                visible.append(pending)
            pending = None
        else:
            visible.append(record)
    return visible, pending


def verify_stream(data: bytes, generation: int, start_seq: int) -> List[WalRecord]:
    """Validate raw frame bytes against the replication-stream contract.

    A frames batch shipped to a replica must be an exact byte slice of
    the primary's journal: a clean scan (no torn or corrupt tail, no
    trailing bytes), every frame stamped ``generation``, sequence
    numbers contiguous from ``start_seq``, and no undecided prepare —
    in-doubt 2PC state never leaves the primary, so a decided pair
    arrives as adjacent ``#PREPARE``/``#DECIDE`` frames or not at all.
    Returns the scanned records; raises :class:`ValueError` with the
    violated rule otherwise.
    """
    scanned = scan(data, expect_generation=generation)
    if scanned.tail_state != "clean":
        raise ValueError(
            f"stream batch is not a clean frame slice: {scanned.tail_state}"
            f" ({scanned.tail_reason})"
        )
    if not scanned.records:
        raise ValueError("stream batch carries no frames")
    first = scanned.records[0]
    if first.seq != start_seq:
        raise ValueError(
            f"stream batch starts at seq {first.seq}, expected {start_seq}"
        )
    for record in scanned.records:
        if record.generation != generation:
            raise ValueError(
                f"stream batch frame seq {record.seq} is generation"
                f" {record.generation}, expected {generation}"
            )
    _, pending = resolve_decided(scanned.records)
    if pending is not None:
        raise ValueError(
            f"stream batch ends in undecided prepare {pending.txid!r};"
            " in-doubt 2PC frames must stay on the primary"
        )
    return scanned.records


# ----------------------------------------------------------------------
# snapshot header
# ----------------------------------------------------------------------
def encode_snapshot(generation: int, ldif_text: str) -> str:
    """Prefix LDIF content with the generation header comment (the LDIF
    parser skips ``#`` lines, so the snapshot stays a valid LDIF file)."""
    return f"# repro-store snapshot gen={generation} format=1\n{ldif_text}"


def decode_snapshot(text: str) -> Tuple[int, str]:
    """Split a snapshot file into ``(generation, ldif_text)``.

    A snapshot without the header comment was written by the pre-WAL
    store: it reports :data:`LEGACY_GENERATION` and its journal is read
    with the legacy ``# commit`` marker scanner.
    """
    first, _, rest = text.partition("\n")
    match = _SNAPSHOT_HEADER_RE.match(first)
    if match is None:
        return LEGACY_GENERATION, text
    return int(match.group(1)), rest


def header_generation(first_line: str) -> int:
    """Generation id from a snapshot's first line (the O(1) probe a
    reader uses to notice a compaction without decoding the snapshot)."""
    match = _SNAPSHOT_HEADER_RE.match(first_line)
    return LEGACY_GENERATION if match is None else int(match.group(1))


# ----------------------------------------------------------------------
# the I/O layer (fault-injection seam)
# ----------------------------------------------------------------------
class StoreIO:
    """Every filesystem operation the store performs, as overridable
    methods.  :class:`repro.store.faults.FaultyIO` substitutes versions
    that crash, tear writes, or fail at planned points."""

    def open_bytes(self, path: str, mode: str):
        """Open ``path`` in binary ``mode``."""
        return open(path, mode)

    def open_text(self, path: str, mode: str):
        """Open ``path`` in text ``mode`` as UTF-8."""
        return open(path, mode, encoding="utf-8")

    def fsync(self, handle) -> None:
        """Flush and fsync an open file handle."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: str, dst: str) -> None:
        """Atomically replace ``dst`` with ``src``."""
        os.replace(src, dst)

    def rename(self, src: str, dst: str) -> None:
        """Rename ``src`` to ``dst`` (``dst`` must not exist)."""
        os.rename(src, dst)

    def fault_point(self, name: str) -> None:
        """A named protocol step (e.g. ``2pc:decision``): a no-op here,
        but :class:`repro.store.faults.FaultyIO` counts it as one
        operation and can crash exactly there, so the crash harness can
        kill the 2PC coordinator at every step *by name* instead of
        hunting for the right raw-I/O index."""

    def fsync_dir(self, path: str) -> None:
        """Fsync a directory so renames within it are durable."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- convenience wrappers used by the store ------------------------
    def write_file_atomic(self, path: str, data: bytes) -> None:
        """Write ``data`` to ``path`` via a same-directory temp file and
        an atomic rename, fsyncing both file and directory."""
        temp = path + ".tmp"
        with self.open_bytes(temp, "wb") as handle:
            handle.write(data)
            self.fsync(handle)
        self.replace(temp, path)
        self.fsync_dir(os.path.dirname(path) or ".")

    def append_bytes(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path`` and fsync before returning."""
        with self.open_bytes(path, "ab") as handle:
            handle.write(data)
            self.fsync(handle)

    def read_bytes(self, path: str) -> bytes:
        """Read ``path`` fully as bytes."""
        with self.open_bytes(path, "rb") as handle:
            return handle.read()

    def read_bytes_from(self, path: str, offset: int) -> bytes:
        """Read ``path`` from byte ``offset`` to the end — the journal
        tail a reader follows, so refresh I/O is O(new bytes), not
        O(journal)."""
        with self.open_bytes(path, "rb") as handle:
            handle.seek(offset)
            return handle.read()

    def read_head(self, path: str) -> str:
        """The first line of ``path`` without its newline (the cheap
        snapshot-generation probe)."""
        with self.open_text(path, "r") as handle:
            return handle.readline().rstrip("\n")

    def read_text(self, path: str) -> str:
        """Read ``path`` fully as UTF-8 text."""
        with self.open_text(path, "r") as handle:
            return handle.read()
