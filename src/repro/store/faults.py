"""Deterministic fault injection for the storage engine.

The store does all its filesystem work through
:class:`repro.store.wal.StoreIO`; :class:`FaultyIO` is a drop-in
replacement that executes a :class:`FaultPlan` — crash the "process" at
the N-th I/O operation (optionally tearing the in-flight write), fail a
specific ``fsync``, or run out of disk after a byte budget.  Because the
plan is a plain counter over a deterministic operation stream, a test
can *enumerate* every crash point: run the scenario once with a passive
plan to count operations, then re-run it once per operation index and
assert the recovered store is always a committed-prefix state
(``tests/test_store_faults.py``).

Simulated-crash semantics: a crash raises :class:`InjectedCrash` after
applying the planned *partial* effect of the current operation (a write
persists only a prefix of its buffer; an atomic ``replace`` either
happened or did not).  The in-memory store object is then abandoned,
exactly as a killed process would abandon its heap — the test releases
its advisory lock (the kernel would) and reopens from the on-disk files.

What is modelled: torn appends, interrupted renames, failed fsyncs,
``ENOSPC``.  What is not: the page cache (bytes written before a crash
are considered on disk even if never fsynced).  The crash-at-write
matrix covers the "write lost entirely" outcome that a cache model would
add, since tearing at fraction 0.0 persists none of the write.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.store.wal import StoreIO

__all__ = ["InjectedCrash", "InjectedIOError", "FaultPlan", "FaultyFile", "FaultyIO"]


class InjectedCrash(BaseException):
    """The simulated process died at a planned I/O boundary.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    that no ``except Exception`` handler in the store can "survive" a
    crash that a real process would not survive.
    """


class InjectedIOError(OSError):
    """A planned I/O failure (failed fsync, disk full) — the process
    survives and sees an ``OSError``, unlike :class:`InjectedCrash`."""


@dataclass
class FaultPlan:
    """A deterministic schedule of faults over the I/O operation stream.

    Operations are counted in execution order across *all* files the
    store touches: every ``write``, ``fsync``, ``replace`` and ``rename``
    increments the counter (reads are free — they cannot lose data).

    Parameters
    ----------
    crash_at_op:
        Raise :class:`InjectedCrash` at this 0-based operation index.
        If the operation is a write, ``torn_fraction`` of its bytes are
        persisted first; ``replace``/``rename`` crash *before* taking
        effect (crash-after is the next operation's crash-before).
    torn_fraction:
        Fraction (0.0–1.0) of the crashing write's buffer that reaches
        the file.  1.0 models "write completed, crash before returning".
    fail_fsync_at:
        Make the N-th ``fsync`` (0-based) raise :class:`InjectedIOError`
        with ``EIO`` instead of syncing.
    disk_budget:
        Total bytes writable before writes start failing with
        ``ENOSPC``; the failing write persists the bytes that still fit
        (a torn write is exactly what a full disk produces).
    """

    crash_at_op: Optional[int] = None
    torn_fraction: float = 1.0
    fail_fsync_at: Optional[int] = None
    disk_budget: Optional[int] = None
    #: Raise :class:`InjectedCrash` when the store announces this named
    #: protocol step via :meth:`~repro.store.wal.StoreIO.fault_point`
    #: (e.g. ``"2pc:decision"``).  Named points are also ticked as
    #: ordinary operations, so ``crash_at_op`` can hit them too.
    crash_at_point: Optional[str] = None

    # observability
    ops_executed: int = 0
    fsyncs_executed: int = 0
    bytes_written: int = 0
    trace: List[str] = field(default_factory=list)
    #: Every named fault point crossed, in order — run a scenario once
    #: with a passive plan to enumerate the points, then re-run it once
    #: per name with ``crash_at_point`` set.
    points: List[str] = field(default_factory=list)

    def _tick(self, kind: str, detail: str = "") -> bool:
        """Advance the counter; return True when this op must crash."""
        index = self.ops_executed
        self.ops_executed += 1
        self.trace.append(f"{index}:{kind}{':' if detail else ''}{detail}")
        return self.crash_at_op is not None and index == self.crash_at_op

    def on_write(self, data: bytes) -> int:
        """Return how many bytes of ``data`` to persist; raise when the
        plan says the write crashes or the disk is full."""
        crash = self._tick("write", str(len(data)))
        allowed = len(data)
        if self.disk_budget is not None:
            remaining = self.disk_budget - self.bytes_written
            if remaining < len(data):
                persist = max(0, remaining)
                self.bytes_written += persist
                raise InjectedIOError(
                    errno.ENOSPC,
                    f"no space left on device (injected after "
                    f"{self.bytes_written} bytes)",
                    persist,
                )
        if crash:
            persist = int(len(data) * self.torn_fraction)
            self.bytes_written += persist
            raise InjectedCrash(
                f"crash at op {self.crash_at_op} mid-write "
                f"({persist}/{len(data)} bytes persisted)"
            )
        self.bytes_written += allowed
        return allowed

    def on_fsync(self) -> None:
        """Account for one fsync; crash or fail it if planned."""
        crash = self._tick("fsync")
        index = self.fsyncs_executed
        self.fsyncs_executed += 1
        if crash:
            raise InjectedCrash(f"crash at op {self.crash_at_op} before fsync")
        if self.fail_fsync_at is not None and index == self.fail_fsync_at:
            raise InjectedIOError(errno.EIO, "fsync failed (injected)")

    def on_replace(self, src: str, dst: str) -> None:
        """Account for one atomic replace; crash before it if planned."""
        if self._tick("replace", dst):
            raise InjectedCrash(
                f"crash at op {self.crash_at_op} before replace -> {dst}"
            )

    def on_rename(self, src: str, dst: str) -> None:
        """Account for one rename; crash before it if planned."""
        if self._tick("rename", dst):
            raise InjectedCrash(
                f"crash at op {self.crash_at_op} before rename -> {dst}"
            )

    def on_fault_point(self, name: str) -> None:
        """Account for one named protocol step; crash there if planned
        (by name or by operation index)."""
        self.points.append(name)
        crash = self._tick("point", name)
        if crash:
            raise InjectedCrash(
                f"crash at op {self.crash_at_op} at fault point {name!r}"
            )
        if self.crash_at_point is not None and name == self.crash_at_point:
            raise InjectedCrash(f"crash at fault point {name!r}")


class FaultyFile:
    """Wraps a real writable file object, routing writes through the
    plan so they can be torn, fail with ``ENOSPC``, or crash."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan

    def write(self, data) -> int:
        """Write through the plan: may tear, fail, or crash mid-write."""
        if isinstance(data, str):
            encoded = data.encode("utf-8")
        else:
            encoded = bytes(data)
        try:
            allowed = self._plan.on_write(encoded)
        except InjectedCrash:
            persist = int(len(encoded) * self._plan.torn_fraction)
            self._write_raw(encoded[:persist])
            self._best_effort_close()
            raise
        except InjectedIOError as exc:
            persist = exc.args[2] if len(exc.args) > 2 else 0
            self._write_raw(encoded[:persist])
            raise InjectedIOError(exc.errno, exc.args[1]) from None
        self._write_raw(encoded[:allowed])
        return len(data)

    def _write_raw(self, encoded: bytes) -> None:
        if not encoded:
            return
        if "b" in getattr(self._inner, "mode", "b"):
            self._inner.write(encoded)
        else:
            self._inner.write(encoded.decode("utf-8"))
        self._inner.flush()

    def _best_effort_close(self) -> None:
        try:
            self._inner.close()
        except OSError:  # pragma: no cover
            pass

    def flush(self) -> None:
        """Flush the wrapped handle (no fault accounting)."""
        self._inner.flush()

    def fileno(self) -> int:
        """The wrapped handle's file descriptor."""
        return self._inner.fileno()

    def close(self) -> None:
        """Close the wrapped handle."""
        self._inner.close()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultyIO(StoreIO):
    """A :class:`~repro.store.wal.StoreIO` that executes a
    :class:`FaultPlan`.  Reads are passed through untouched."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()

    def open_bytes(self, path: str, mode: str):
        """Open binary; writable handles are wrapped in :class:`FaultyFile`."""
        handle = super().open_bytes(path, mode)
        if "r" in mode and "+" not in mode:
            return handle
        return FaultyFile(handle, self.plan)

    def open_text(self, path: str, mode: str):
        """Open text; writable handles are wrapped in :class:`FaultyFile`."""
        handle = super().open_text(path, mode)
        if "r" in mode and "+" not in mode:
            return handle
        return FaultyFile(handle, self.plan)

    def fsync(self, handle) -> None:
        """Fsync through the plan, then really fsync the inner handle."""
        self.plan.on_fsync()
        inner = handle._inner if isinstance(handle, FaultyFile) else handle
        inner.flush()
        os.fsync(inner.fileno())

    def replace(self, src: str, dst: str) -> None:
        """Atomic replace, charged to the plan as one op."""
        self.plan.on_replace(src, dst)
        super().replace(src, dst)

    def rename(self, src: str, dst: str) -> None:
        """Rename, charged to the plan as one op."""
        self.plan.on_rename(src, dst)
        super().rename(src, dst)

    def fault_point(self, name: str) -> None:
        """Cross a named protocol step, charged to the plan as one op;
        crashes here when the plan names this point."""
        self.plan.on_fault_point(name)
