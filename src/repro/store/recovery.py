"""Crash recovery: scan the WAL, quarantine damage, verify legality.

Recovery is the reader half of the durability contract.  Its job after
an unclean shutdown:

1. **Decode the snapshot** and its generation id.
2. **Scan the journal** (:func:`repro.store.wal.scan`): decode the
   committed prefix, classify the tail as clean / torn / corrupt.
3. **Discard stale generations**: records whose generation predates the
   snapshot's were already folded in by a compaction that crashed before
   resetting the journal — replaying them would double-apply every
   transaction (the seed store's bug).  They are dropped, not replayed.
4. **Replay blindly**: committed records re-apply without re-running the
   legality guard.  Theorem 4.1's modularity justifies this — each
   journaled transaction was checked subtree-by-subtree against the
   state it committed on, and replay reproduces exactly those states in
   exactly that order (see ``docs/paper_mapping.md``).
5. **Quarantine, never silently drop**: torn or corrupt tail bytes are
   appended to ``journal.quarantine`` and the journal is atomically
   truncated to the committed prefix, so a post-mortem can always see
   what was lost.
6. **Verify**: the recovered instance is checked against the schema; a
   violation (which blind replay should make impossible — its presence
   means on-disk damage the checksums did not catch) degrades the store
   to read-only rather than refusing to open.

A *torn* tail is the expected artifact of crash-during-append and is
repaired automatically; the store stays writable.  *Corruption* (a
checksum or sequence failure, foreign bytes mid-journal, a record that
fails to replay) degrades the store to read-only and leaves the journal
untouched until an explicit :func:`recover` run with ``force=True``
(CLI: ``recover``) quarantines the damage.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import (
    CorruptJournalError,
    DuplicateEntryError,
    LdifError,
    StaleJournalError,
    StoreError,
)
from repro.ldif.changes import parse_changes
from repro.ldif.reader import parse_ldif
from repro.legality.checker import LegalityChecker
from repro.model.attributes import AttributeRegistry
from repro.model.instance import DirectoryInstance
from repro.schema.directory_schema import DirectorySchema
from repro.store import wal
from repro.store.wal import StoreIO

__all__ = ["RecoveryReport", "scan_store", "recover", "replay_record"]

_LEGACY_COMMIT_MARKER = "# commit"

SNAPSHOT_FILE = "snapshot.ldif"
JOURNAL_FILE = "journal.ldif"
QUARANTINE_FILE = "journal.quarantine"
LOCK_FILE = "lock"
#: Warm-start verdict cache (best-effort sidecar, never authoritative):
#: a reopened store seeds its legality session's fingerprint cache from
#: it; a missing/stale/corrupt sidecar simply means a cold start.
SIDECAR_FILE = "verdicts.cache"
#: Secondary-index sidecar (same best-effort discipline): the persisted
#: attribute-level postings of :mod:`repro.store.index`.  Stamped with
#: the generation *and* journal position it was exported at; anything
#: else means a transparent rebuild, never a wrong answer.
INDEX_SIDECAR_FILE = "indexes.cache"
#: Replication-follower state (:mod:`repro.store.replicate`): upstream
#: address plus the last durably applied stream position.  Advisory like
#: the manifest — the snapshot/journal stay the single source of truth,
#: the state file only tells ``fsck`` and a restarted applier where the
#: copy came from.  ``promote`` removes it.
REPLICA_STATE_FILE = "replica.state"


@dataclass
class RecoveryReport:
    """Structured result of a recovery (or ``fsck`` dry-run) pass."""

    directory: str
    generation: int = 0
    committed: int = 0  # decodable current-generation records
    replayed: int = 0  # records actually re-applied onto the snapshot
    stale_discarded: int = 0  # old-generation records dropped (compaction crash)
    tail_state: str = "clean"  # "clean" | "torn" | "corrupt"
    tail_bytes: int = 0  # damaged bytes past the safe prefix
    quarantined_bytes: int = 0  # total bytes sitting in journal.quarantine
    repaired: bool = False  # files were rewritten (quarantine + truncate)
    read_only: bool = False  # damage requires operator attention
    legal: Optional[bool] = None  # None = not verified (no schema given)
    legacy_format: bool = False  # pre-WAL marker journal
    #: Sequence number of the last frame kept in the journal (0 when
    #: empty).  With 2PC pairs this is *frames*, not transactions:
    #: a decided prepare/decide pair advances it by two.
    last_seq: int = 0
    #: A prepared-but-undecided 2PC transaction at the journal tail —
    #: the in-doubt state only the coordinator log can resolve.
    in_doubt_txid: Optional[str] = None
    #: The in-doubt prepare's payload (LDIF changes), kept so resolution
    #: can replay it if the coordinator's decision was commit.
    in_doubt_payload: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """No damage found (torn/corrupt tail, stale records, illegality,
        in-doubt 2PC state)."""
        return (
            self.tail_state == "clean"
            and self.stale_discarded == 0
            and not self.read_only
            and self.legal is not False
            and self.in_doubt_txid is None
        )

    def summary(self) -> str:
        """Human-readable multi-line report (the ``fsck`` output)."""
        lines = [
            f"store: {self.directory}",
            f"format: {'legacy (pre-WAL)' if self.legacy_format else 'wal v1'}",
            f"generation: {self.generation}",
            f"committed records: {self.committed}",
            f"stale records discarded: {self.stale_discarded}",
            f"tail: {self.tail_state}"
            + (f" ({self.tail_bytes} bytes)" if self.tail_bytes else ""),
            f"quarantined bytes: {self.quarantined_bytes}",
            "legality: "
            + ("unverified (no schema)" if self.legal is None
               else "legal" if self.legal else "ILLEGAL"),
            f"mode: {'read-only (degraded)' if self.read_only else 'read-write'}",
        ]
        if self.in_doubt_txid is not None:
            lines.append(f"in-doubt 2PC transaction: {self.in_doubt_txid}")
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _paths(directory: str) -> Tuple[str, str, str]:
    return (
        os.path.join(directory, SNAPSHOT_FILE),
        os.path.join(directory, JOURNAL_FILE),
        os.path.join(directory, QUARANTINE_FILE),
    )


#: A journal payload is either an LDIF *changes* document (add/delete
#: frames) or an RFC 2849 *modify* document; the changetype line — which
#: the payload serializers always emit unfolded — tells them apart.
_MODIFY_PAYLOAD = re.compile(r"^changetype:\s*modify\s*$", re.MULTILINE)


def replay_record(instance: DirectoryInstance, record: wal.WalRecord) -> None:
    """Re-apply one committed journal record onto ``instance`` — blind
    replay, no legality guard (Theorem 4.1 modularity: the record was
    checked against exactly this state when it committed).  Shared by
    crash recovery and the incremental WAL-following reader
    (:mod:`repro.store.reader`), so both stop at the same frame on the
    same damage.

    Two payload forms exist: insert/delete transactions (the paper's
    update model, decomposed per Theorem 4.1) and in-place ``modify``
    records (this library's journaled extension, re-applied through
    :func:`repro.ldif.modify.apply_modify_blind`)."""
    from repro.updates.transactions import apply_subtree_update, decompose

    if _MODIFY_PAYLOAD.search(record.payload):
        from repro.ldif.modify import apply_modify_blind, parse_modifications

        for modify in parse_modifications(record.payload):
            apply_modify_blind(instance, modify)
        return
    transaction = parse_changes(record.payload)
    for step in decompose(transaction, instance):
        apply_subtree_update(instance, step)


def _scan_legacy(data: bytes) -> wal.ScanResult:
    """Scan a pre-WAL marker journal into a :class:`~repro.store.wal.ScanResult`.

    The marker is matched *exactly* as the legacy ``_append_journal``
    wrote it (a line that is precisely ``# commit``).  The seed reader's
    ``line.strip()`` match also fired on whitespace-variant lines —
    including LDIF continuation lines like ``" # commit"`` that belong
    to a record's *data* — silently splitting records it should have
    replayed whole.
    """
    text = data.decode("utf-8", errors="replace")
    records: List[wal.WalRecord] = []
    block_lines: List[str] = []
    offset = 0
    block_start = 0
    for line in text.splitlines(keepends=True):
        bare = line.rstrip("\n").rstrip("\r")
        line_end = offset + len(line.encode("utf-8"))
        if bare == _LEGACY_COMMIT_MARKER:
            records.append(
                wal.WalRecord(
                    seq=len(records) + 1,
                    generation=wal.LEGACY_GENERATION,
                    payload="".join(block_lines),
                    offset=block_start,
                    frame_length=line_end - block_start,
                )
            )
            block_lines = []
            block_start = line_end
        else:
            block_lines.append(line)
        offset = line_end
    committed_end = records[-1].end if records else 0
    tail = data[committed_end:]
    if tail.strip():
        return wal.ScanResult(
            records, committed_end, "torn",
            "bytes after the last commit marker", total=len(data),
        )
    return wal.ScanResult(records, len(data), "clean", total=len(data))


def scan_store(
    directory: str, io: Optional[StoreIO] = None
) -> Tuple[int, str, wal.ScanResult, bool, bytes]:
    """Read and decode the store's files without replaying anything.

    Returns ``(generation, snapshot_ldif, scan_result, legacy, journal_bytes)``.
    """
    io = io if io is not None else StoreIO()
    snapshot_path, journal_path, _ = _paths(directory)
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"{directory!r} is not a store directory")
    if not os.path.exists(snapshot_path):
        raise FileNotFoundError(f"{directory!r} has no {SNAPSHOT_FILE}")
    generation, ldif_text = wal.decode_snapshot(io.read_text(snapshot_path))
    legacy = generation == wal.LEGACY_GENERATION

    if not os.path.exists(journal_path):
        empty = wal.ScanResult([], 0, "clean", total=0)
        return generation, ldif_text, empty, legacy, b""

    data = io.read_bytes(journal_path)
    if legacy:
        return generation, ldif_text, _scan_legacy(data), True, data
    return generation, ldif_text, wal.scan(data, expect_generation=generation), False, data


def _quarantine_and_truncate(
    directory: str,
    io: StoreIO,
    journal_bytes: bytes,
    keep_upto: int,
    reason: str,
    report: RecoveryReport,
) -> None:
    """Move the bytes past the safe prefix into ``journal.quarantine``
    and atomically truncate the journal to that prefix."""
    _, journal_path, quarantine_path = _paths(directory)
    tail = journal_bytes[keep_upto:]
    if tail:
        header = (
            f"# quarantined {len(tail)} bytes from {JOURNAL_FILE} "
            f"offset {keep_upto} ({reason})\n"
        ).encode("utf-8")
        io.append_bytes(quarantine_path, header + tail + b"\n")
    io.write_file_atomic(journal_path, journal_bytes[:keep_upto])
    report.repaired = True
    report.notes.append(f"quarantined {len(tail)} byte(s): {reason}")


def recover(
    directory: str,
    schema: Optional[DirectorySchema] = None,
    registry: Optional[AttributeRegistry] = None,
    *,
    io: Optional[StoreIO] = None,
    repair: bool = True,
    force: bool = False,
    strict: bool = False,
) -> Tuple[DirectoryInstance, RecoveryReport]:
    """Recover a store directory to its last committed state.

    Parameters
    ----------
    repair:
        Rewrite the files (quarantine torn tails, reset stale
        journals).  ``repair=False`` is the ``fsck`` dry-run: report
        what recovery *would* do, touch nothing.
    force:
        Also repair *corrupt* (not merely torn) journals, keeping the
        replayable prefix.  Without it, corruption leaves the journal
        untouched as evidence and the report flags read-only mode.
    strict:
        Raise :class:`~repro.errors.CorruptJournalError` /
        :class:`~repro.errors.StaleJournalError` on damage instead of
        degrading.

    Returns the recovered instance and the :class:`RecoveryReport`.
    """
    io = io if io is not None else StoreIO()
    report = RecoveryReport(directory)
    generation, ldif_text, scanned, legacy, journal_bytes = scan_store(
        directory, io
    )
    report.generation = generation
    report.legacy_format = legacy
    report.tail_state = scanned.tail_state
    report.tail_bytes = scanned.tail_bytes

    # Partition records into replayable (current generation) and stale.
    replayable = [r for r in scanned.records if r.generation == generation]
    stale = [r for r in scanned.records if r.generation != generation]
    if stale and replayable:  # scan() forbids this; be defensive anyway
        report.tail_state = "corrupt"
        report.notes.append("journal mixes generations; replaying none of it")
        replayable = []
    # Fold 2PC pairs: only decided-commit prepares (and ordinary frames)
    # are visible; an undecided prepare at the tail is *in doubt* — its
    # bytes stay on disk and its payload is withheld until the
    # coordinator log resolves it.
    visible, pending = wal.resolve_decided(replayable)
    report.committed = len(visible)
    report.stale_discarded = len(stale)
    if stale:
        if strict:
            raise StaleJournalError(
                f"journal generation {stale[0].generation} predates snapshot "
                f"generation {generation}: a compaction crashed before "
                f"resetting the journal ({len(stale)} already-applied "
                "record(s) must be discarded, not replayed)"
            )
        report.notes.append(
            f"discarded {len(stale)} stale record(s) of generation "
            f"{stale[0].generation} (snapshot is at {generation}); they were "
            "already folded into the snapshot by a compaction that crashed "
            "before resetting the journal"
        )

    if scanned.tail_state == "corrupt" and strict:
        raise CorruptJournalError(
            f"journal damaged at byte {scanned.tail_offset}: "
            f"{scanned.tail_reason}",
            record_index=len(scanned.records),
            offset=scanned.tail_offset,
        )

    # Parse the snapshot.  A snapshot written before DN resolution
    # became case-insensitive can hold two DNs that differ only in
    # case — previously distinct entries that now collide.  Surface
    # that as an explicit migration error naming both spellings (the
    # DuplicateEntryError message carries them) instead of a generic
    # parse failure.
    try:
        instance = parse_ldif(ldif_text, attributes=registry)
    except LdifError as exc:
        if isinstance(exc.__cause__, DuplicateEntryError):
            raise StoreError(
                f"snapshot of {directory!r} holds entries whose DNs "
                f"collide under case-insensitive matching: "
                f"{exc.__cause__}.  This store predates case-folded DN "
                "resolution; migrate it by renaming one of the "
                f"colliding entries in {SNAPSHOT_FILE} before reopening."
            ) from exc
        raise

    # Blind replay of the committed prefix (Theorem 4.1 modularity).
    replay_failed_at: Optional[int] = None
    for index, record in enumerate(visible):
        try:
            replay_record(instance, record)
        except Exception as exc:
            if strict:
                raise CorruptJournalError(
                    f"journal record {index} failed to replay: {exc}",
                    record_index=index,
                    offset=record.offset,
                ) from exc
            replay_failed_at = index
            report.notes.append(
                f"record {index} failed to replay ({exc}); treating it and "
                "everything after it as corrupt"
            )
            if isinstance(exc, DuplicateEntryError):
                report.notes.append(
                    "the collision is between DN spellings that differ "
                    "only in case: this journal predates case-folded DN "
                    "resolution — rename one of the spellings named "
                    "above to migrate"
                )
            break
    if replay_failed_at is not None:
        report.tail_state = "corrupt"
        report.committed = replay_failed_at
        failed = visible[replay_failed_at]
        report.tail_bytes = scanned.total - failed.offset
        replayable = [r for r in replayable if r.end <= failed.offset]
        visible = visible[:replay_failed_at]
        pending = None  # anything undecided sits past the damage
    report.replayed = len(visible)

    # The journal prefix that is safe to keep on disk: every byte up to
    # the end of the last decodable frame — including an in-doubt
    # prepare, whose bytes must survive for the coordinator's decision
    # to land against (stale journals keep nothing — their content is
    # already in the snapshot).
    keep_upto = replayable[-1].end if replayable else 0
    report.last_seq = replayable[-1].seq if replayable else 0
    if pending is not None:
        report.in_doubt_txid = pending.txid
        report.in_doubt_payload = pending.payload
        report.notes.append(
            f"in-doubt 2PC transaction {pending.txid}: prepared but "
            "undecided; the coordinator log decides it (open the sharded "
            "store, or run `recover --shards` on its root)"
        )
    corrupt = report.tail_state == "corrupt"

    if repair:
        if stale and not corrupt:
            io.write_file_atomic(_paths(directory)[1], b"")
            report.repaired = True
            report.notes.append("journal reset (stale generation discarded)")
        elif report.tail_state == "torn":
            _quarantine_and_truncate(
                directory, io, journal_bytes, keep_upto,
                f"torn tail: {scanned.tail_reason}", report,
            )
        elif corrupt and force:
            _quarantine_and_truncate(
                directory, io, journal_bytes, keep_upto,
                f"corrupt tail: {scanned.tail_reason or 'replay failure'}",
                report,
            )
            report.notes.append(
                "corrupt tail quarantined by explicit recover; the store is "
                "writable again on next open"
            )
            corrupt = False

    report.read_only = corrupt

    # Verify the recovered instance when a schema is available.
    if schema is not None:
        verdict = LegalityChecker(schema).check(instance)
        report.legal = verdict.is_legal
        if not verdict.is_legal:
            report.read_only = True
            report.notes.append(
                f"recovered instance violates the schema "
                f"({len(verdict)} violation(s)); blind replay should make "
                "this impossible — suspect snapshot damage"
            )
            for violation in list(verdict)[:3]:
                report.notes.append(f"  {violation}")

    quarantine_path = _paths(directory)[2]
    if os.path.exists(quarantine_path):
        report.quarantined_bytes = os.path.getsize(quarantine_path)

    if os.path.exists(os.path.join(directory, REPLICA_STATE_FILE)):
        report.notes.append(
            "replica state present: this store is a replication follower "
            "(promote it before writing, or resume `replicate` to keep "
            "following)"
        )

    return instance, report
