"""WAL-shipping replication: log shipper, replica applier, promotion.

The primary streams its committed journal frames to followers in the
listener/notifier style UCS documents for OpenLDAP domains: a follower
receives the *same bytes* the primary's WAL holds, appends them to its
own local journal (fsynced), and replays them through the ordinary
:class:`~repro.store.reader.StoreReader` machinery — so a replica is a
``StoreReader``-grade follower whose view is, at every instant, a
committed prefix of the primary's history, byte for byte.

Three message kinds travel the stream (JSON objects, carried over the
PR 7 server protocol or fed directly in-process):

``snapshot``
    The primary's snapshot file, verbatim (generation header included).
    Installs a full base state; sent when a follower's position cannot
    be served incrementally (fresh replica, or the primary compacted
    past it).

``schema``
    Announces a generation: its schema fingerprint plus the sequence
    number the stream resumes at.  **Data frames are only legal after a
    schema frame announced their generation** — the schema-before-data
    ordering UCS mandates, and the discipline that keeps blind replay
    sound: Theorem 4.1 modularity licenses replaying a frame without
    re-checking only under the schema context it was checked against,
    so the context must land on the replica first.  A ``folds`` field
    marks a compaction fold: a follower standing exactly at the folded
    frontier compacts locally instead of re-downloading the snapshot.

``frames``
    A raw byte slice of the primary's journal: committed frames and
    *decided* 2PC pairs only.  An in-doubt ``#PREPARE`` never leaves
    the primary — only its coordinator log can decide it, so shipping
    it would manufacture in-doubt state on machines that cannot resolve
    it.  :func:`repro.store.wal.verify_stream` enforces the contract on
    both ends.

Promotion (:func:`promote`) turns a follower's local copy into a
writable primary: refuse if in-doubt 2PC state is visible, acquire the
advisory lock, recover the committed prefix, and compact — a genuine
generation bump that starts a new epoch, so frames from the old
primary's history are recognisably stale ever after.

Sharded stores replicate too (:class:`ShardedFrameSource` /
:class:`ShardedReplicaApplier`): one per-shard ``FrameSource`` each,
multiplexed under a single **coordinator cut**.  Every poll captures
the coordinator log's transaction states once, and each shard's stream
is gated to stop in front of any decided 2PC pair whose transaction is
not yet *complete* (all participants' decides durable) — the same
discipline ``CompositeReader._capture_txn_cut`` uses for local reads —
so a follower set never holds half a spanning transaction.  Two extra
message kinds carry the topology: ``shardmap`` ships the shard layout
once, and ``cut`` closes every batch with the frontier the follower
must reach before its composite view may be served.  Promotion of a
cohort (:func:`promote_shards`) inspects every shard against the last
replicated cut first and promotes all of them or none.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReplicaDivergedError, ReplicationError, StoreError
from repro.ldif.writer import serialize_ldif
from repro.model.attributes import AttributeRegistry
from repro.schema.directory_schema import DirectorySchema
from repro.schema.dsl import serialize_dsl
from repro.store import wal
from repro.store.journal import DirectoryStore
from repro.store.manifest import Manifest, read_manifest, write_manifest
from repro.store.reader import StoreReader
from repro.store.recovery import (
    JOURNAL_FILE,
    REPLICA_STATE_FILE,
    SNAPSHOT_FILE,
    recover,
)
from repro.store.shardmap import read_shard_map, shard_dir, shard_map_path
from repro.store.txlog import inspect_txlog
from repro.store.wal import StoreIO

__all__ = [
    "CUT_STATE_FILE",
    "FrameSource",
    "ReplicaApplier",
    "ShardedFrameSource",
    "ShardedReplicaApplier",
    "StreamMessage",
    "decode_stream_message",
    "encode_cut_message",
    "encode_frames_message",
    "encode_schema_message",
    "encode_shard_map_message",
    "encode_snapshot_message",
    "promote",
    "promote_shards",
    "pump",
    "read_cut_state",
    "read_replica_state",
    "schema_fingerprint",
]

#: Target byte size of one ``frames`` message.  Batches split at frame
#: boundaries (never between a prepare and its decide) and may exceed
#: this by one frame; it keeps every message far under the protocol's
#: ``MAX_FRAME_BYTES``.
STREAM_BATCH_BYTES = 1 << 20

_SNAPSHOT_RETRIES = 3  # compaction-race retries, same as reader bootstrap

#: A sharded follower's record of the last fully-applied coordinator
#: cut: ``{shard: [generation, seq]}``.  The composite view may only be
#: served (and the cohort only promoted) at a recorded cut — anything
#: between cuts could show half a spanning transaction.
CUT_STATE_FILE = "cut.state"


def schema_fingerprint(schema: DirectorySchema) -> int:
    """CRC32 over the schema's canonical DSL serialization.

    The replication stream carries it on every ``snapshot`` and
    ``schema`` message; a follower refuses frames checked under a
    schema it does not hold — the re-validation discipline that keeps
    a replica's legality verdicts trustworthy after catch-up.
    """
    return zlib.crc32(serialize_dsl(schema).encode("utf-8")) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# stream envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamMessage:
    """One decoded replication-stream message."""

    kind: str  # "snapshot" | "schema" | "frames" | "shardmap" | "cut"
    generation: int
    schema_crc: Optional[int] = None
    snapshot: Optional[str] = None  # snapshot: full file text
    base_seq: Optional[int] = None  # schema: seq the stream resumes at
    folds: Optional[int] = None  # schema: folded frontier (compaction)
    start_seq: Optional[int] = None  # frames: first frame's seq
    data: Optional[bytes] = None  # frames: raw journal byte slice
    records: Optional[List[wal.WalRecord]] = None  # frames: verified
    shard: Optional[str] = None  # sharded stream: the member shard
    shard_map: Optional[str] = None  # shardmap: the layout file, verbatim
    frontier: Optional[Dict[str, Tuple[int, int]]] = None  # cut


def _batch_crc(generation: int, start_seq: int, data: bytes) -> int:
    return zlib.crc32(f"{generation}:{start_seq}:".encode() + data) & 0xFFFFFFFF


def encode_snapshot_message(
    generation: int, schema_crc: int, snapshot_text: str
) -> dict:
    """A ``snapshot`` message: the primary's snapshot file, verbatim."""
    return {
        "op": "repl",
        "kind": "snapshot",
        "generation": generation,
        "schema_crc": schema_crc,
        "snapshot": snapshot_text,
    }


def encode_schema_message(
    generation: int,
    schema_crc: int,
    base_seq: int,
    folds: Optional[int] = None,
) -> dict:
    """A ``schema`` message announcing ``generation``: stream continues
    with data frames after ``base_seq``; ``folds`` marks a compaction
    fold of the previous generation's frontier."""
    message = {
        "op": "repl",
        "kind": "schema",
        "generation": generation,
        "schema_crc": schema_crc,
        "base_seq": base_seq,
    }
    if folds is not None:
        message["folds"] = folds
    return message


def encode_frames_message(generation: int, start_seq: int, data: bytes) -> dict:
    """A ``frames`` message: a raw committed slice of the journal."""
    return {
        "op": "repl",
        "kind": "frames",
        "generation": generation,
        "start_seq": start_seq,
        "data": data.decode("utf-8"),
        "crc": _batch_crc(generation, start_seq, data),
    }


def encode_shard_map_message(shard_map_text: str) -> dict:
    """A ``shardmap`` message: the sharded primary's layout file,
    verbatim, so a fresh follower can lay out its own shard cohort."""
    return {
        "op": "repl",
        "kind": "shardmap",
        "shard_map": shard_map_text,
        "crc": zlib.crc32(shard_map_text.encode("utf-8")) & 0xFFFFFFFF,
    }


def encode_cut_message(frontier: Dict[str, Tuple[int, int]]) -> dict:
    """A ``cut`` message closing one sharded batch: the coordinator-cut
    frontier every shard of the batch lands on."""
    return {
        "op": "repl",
        "kind": "cut",
        "frontier": {name: list(pos) for name, pos in frontier.items()},
    }


def decode_stream_message(message: dict) -> StreamMessage:
    """Validate and decode a stream message.

    Raises :class:`ReplicationError` on structural damage, checksum
    mismatch, or a ``frames`` payload violating the committed-slice
    contract (:func:`repro.store.wal.verify_stream`).
    """
    if not isinstance(message, dict) or message.get("op") != "repl":
        raise ReplicationError(f"not a replication stream message: {message!r}")
    kind = message.get("kind")
    shard = message.get("shard")
    if shard is not None and not isinstance(shard, str):
        raise ReplicationError(f"stream message carries bad shard {shard!r}")
    if kind == "shardmap":
        text = message.get("shard_map")
        crc = message.get("crc")
        if not isinstance(text, str) or not isinstance(crc, int) \
                or crc != zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF:
            raise ReplicationError("malformed shardmap message")
        return StreamMessage(kind="shardmap", generation=0, shard_map=text)
    if kind == "cut":
        frontier = message.get("frontier")
        if not isinstance(frontier, dict) or not all(
            isinstance(name, str)
            and isinstance(pos, (list, tuple))
            and len(pos) == 2
            and all(
                isinstance(p, int) and not isinstance(p, bool) and p >= 0
                for p in pos
            )
            for name, pos in frontier.items()
        ):
            raise ReplicationError("malformed cut message")
        return StreamMessage(
            kind="cut", generation=0,
            frontier={name: (pos[0], pos[1]) for name, pos in frontier.items()},
        )
    generation = message.get("generation")
    if not isinstance(generation, int) or generation < 1:
        raise ReplicationError(
            f"stream message carries bad generation {generation!r}"
        )
    if kind == "snapshot":
        text = message.get("snapshot")
        crc = message.get("schema_crc")
        if not isinstance(text, str) or not isinstance(crc, int):
            raise ReplicationError("malformed snapshot message")
        snap_generation, _ = wal.decode_snapshot(text)
        if snap_generation != generation:
            raise ReplicationError(
                f"snapshot header says generation {snap_generation}, "
                f"message says {generation}"
            )
        return StreamMessage(
            kind="snapshot", generation=generation, schema_crc=crc,
            snapshot=text, shard=shard,
        )
    if kind == "schema":
        base_seq = message.get("base_seq")
        crc = message.get("schema_crc")
        folds = message.get("folds")
        if not isinstance(base_seq, int) or base_seq < 0 \
                or not isinstance(crc, int) \
                or (folds is not None and not isinstance(folds, int)):
            raise ReplicationError("malformed schema message")
        return StreamMessage(
            kind="schema", generation=generation, schema_crc=crc,
            base_seq=base_seq, folds=folds, shard=shard,
        )
    if kind == "frames":
        start_seq = message.get("start_seq")
        text = message.get("data")
        crc = message.get("crc")
        if not isinstance(start_seq, int) or start_seq < 1 \
                or not isinstance(text, str) or not isinstance(crc, int):
            raise ReplicationError("malformed frames message")
        data = text.encode("utf-8")
        if crc != _batch_crc(generation, start_seq, data):
            raise ReplicationError("frames message checksum mismatch")
        try:
            records = wal.verify_stream(data, generation, start_seq)
        except ValueError as exc:
            raise ReplicationError(str(exc)) from exc
        return StreamMessage(
            kind="frames", generation=generation, start_seq=start_seq,
            data=data, records=records, shard=shard,
        )
    raise ReplicationError(f"unknown stream message kind {kind!r}")


# ----------------------------------------------------------------------
# primary side: the log shipper
# ----------------------------------------------------------------------
class FrameSource:
    """Stateful per-follower journal follower on the primary.

    Lock-free like :class:`StoreReader`: it reads the snapshot header
    (O(1)) and the journal tail past its own offset (O(|Δ|)) while the
    writer appends.  ``poll()`` returns the next stream messages — an
    empty list means the follower is caught up right now.

    It only ever ships the *committed* prefix: the cut stops in front
    of an undecided prepare exactly where a reader's view would, and a
    decided pair ships as one indivisible prepare+decide byte slice.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        *,
        io: Optional[StoreIO] = None,
        batch_bytes: int = STREAM_BATCH_BYTES,
        pair_gate: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._dir = directory
        self._schema_crc = schema_fingerprint(schema)
        self._io = io if io is not None else StoreIO()
        self._batch_bytes = batch_bytes
        #: When set, a decided 2PC pair only ships once the gate passes
        #: its txid — the sharded multiplexer's coordinator-cut hook.
        self._pair_gate = pair_gate
        self._generation: Optional[int] = None  # None → ship a snapshot
        self._seq = 0
        self._offset = 0
        self._pending_announce = False

    # -- public surface ------------------------------------------------
    @property
    def position(self) -> Tuple[int, int]:
        """``(generation, seq)`` of the last shipped frame (0, 0) while
        unattached."""
        return (self._generation or 0, self._seq)

    def attach(self, generation: int, seq: int) -> bool:
        """Position the stream at a follower's durable position.

        Returns ``True`` when the stream can continue incrementally (a
        ``schema`` resume announcement will precede data); ``False``
        when the follower needs a snapshot, which the next ``poll()``
        ships.  ``(0, 0)`` — a fresh follower — always snapshots.
        """
        self._generation = None
        self._pending_announce = False
        if generation < 1 or seq < 0:
            return False
        head = self._head_generation()
        if head != generation:
            # A follower standing exactly at a frontier the primary has
            # since folded (the survivor of a promotion) re-attaches
            # through the fold: the next poll announces it and the
            # follower compacts locally — no snapshot re-download.
            if head == generation + 1:
                manifest = read_manifest(self._dir, self._io)
                if (
                    manifest is not None
                    and manifest.generation == head
                    and manifest.folded_seq == seq
                ):
                    self._generation, self._seq, self._offset = (
                        generation, seq, 0
                    )
                    return True
            return False
        try:
            data = self._io.read_bytes(self._journal_path())
        except OSError:
            data = b""
        scanned = wal.scan(data, expect_generation=generation)
        records = scanned.records
        if seq == 0:
            offset = 0
        else:
            if not records or records[0].seq != 1:
                return False
            match = next((r for r in records if r.seq == seq), None)
            if match is None or match.kind == "prepare":
                return False
            offset = match.end
        # Close the compaction race: the journal we just scanned must
        # still belong to the generation we are attaching to.
        if self._head_generation() != generation:
            return False
        self._generation, self._seq, self._offset = generation, seq, offset
        self._pending_announce = True
        return True

    def poll(self) -> List[dict]:
        """The next stream messages (empty list = caught up)."""
        if self._generation is None:
            return self._snapshot_messages()
        head = self._head_generation()
        if head is None:
            return []  # snapshot mid-publish; retry next poll
        if head != self._generation:
            return self._resolve_generation_change(head)
        messages = []
        if self._pending_announce:
            messages.append(
                encode_schema_message(
                    self._generation, self._schema_crc, self._seq
                )
            )
            self._pending_announce = False
        try:
            data = self._io.read_bytes_from(self._journal_path(), self._offset)
        except OSError:
            return messages  # journal mid-swap; retry next poll
        if not data:
            return messages
        scanned = wal.scan(data, expect_generation=self._generation)
        cut_bytes, cut_seq = self._committed_cut(scanned)
        if cut_bytes < 0:
            # The bytes at our offset no longer continue our position:
            # the journal was swapped underneath us.  A compaction shows
            # up in the header; anything else forces a snapshot resync.
            head = self._head_generation()
            if head is not None and head != self._generation:
                return messages + self._resolve_generation_change(head)
            self._generation = None
            return messages + self._snapshot_messages()
        if cut_bytes == 0:
            return messages
        messages.extend(self._frame_messages(data[:cut_bytes], self._seq + 1))
        self._seq = cut_seq
        self._offset += cut_bytes
        return messages

    # -- internals -----------------------------------------------------
    def _snapshot_path(self) -> str:
        return os.path.join(self._dir, SNAPSHOT_FILE)

    def _journal_path(self) -> str:
        return os.path.join(self._dir, JOURNAL_FILE)

    def _head_generation(self) -> Optional[int]:
        try:
            return wal.header_generation(
                self._io.read_head(self._snapshot_path())
            )
        except OSError:
            return None

    def _snapshot_messages(self) -> List[dict]:
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                text = self._io.read_text(self._snapshot_path())
            except OSError:
                continue
            generation, _ = wal.decode_snapshot(text)
            if generation == wal.LEGACY_GENERATION:
                raise ReplicationError(
                    f"{self._dir} is a legacy (pre-WAL) store; open it "
                    "once with a writer to upgrade before replicating"
                )
            self._generation, self._seq, self._offset = generation, 0, 0
            self._pending_announce = False
            return [
                encode_snapshot_message(generation, self._schema_crc, text),
                encode_schema_message(generation, self._schema_crc, 0),
            ]
        return []

    def _committed_cut(self, scanned: wal.ScanResult) -> Tuple[int, int]:
        """Bytes/seq of the shippable prefix of a tail scan.

        Returns ``(-1, 0)`` when the tail does not continue this
        source's position (journal swapped), ``(0, seq)`` when nothing
        new is committed yet, else the byte length up to — and the seq
        of — the last frame whose 2PC fate is decided.
        """
        records = scanned.records
        if not records:
            # A torn tail is the writer mid-append: wait.  A corrupt
            # first byte means we are reading a different file.
            if scanned.tail_state == "corrupt":
                return -1, 0
            return 0, self._seq
        if records[0].seq != self._seq + 1 \
                or records[0].generation != self._generation:
            return -1, 0
        if self._pair_gate is not None:
            # Stop in front of the first 2PC pair the gate withholds —
            # a decided pair whose spanning transaction is not complete
            # on every sibling shard yet ships with a later cut.
            for record in records:
                if record.kind == "prepare" \
                        and not self._pair_gate(record.txid):
                    if record is records[0]:
                        return 0, self._seq
                    return record.offset, record.seq - 1
        _, pending = wal.resolve_decided(records)
        if pending is not None:
            if pending is records[0]:
                return 0, self._seq
            return pending.offset, pending.seq - 1
        return records[-1].end, records[-1].seq

    def _frame_messages(self, raw: bytes, start_seq: int) -> List[dict]:
        """Split a committed slice into batches at decided boundaries."""
        assert self._generation is not None
        scanned = wal.scan(raw, expect_generation=self._generation)
        messages = []
        begin, first_seq = 0, start_seq
        pending = False
        for record in scanned.records:
            if record.kind == "prepare":
                pending = True
            elif record.kind == "decide":
                pending = False
            if pending:
                continue  # never cut between a prepare and its decide
            if record.end - begin >= self._batch_bytes:
                messages.append(
                    encode_frames_message(
                        self._generation, first_seq, raw[begin:record.end]
                    )
                )
                begin, first_seq = record.end, record.seq + 1
        if begin < len(raw):
            messages.append(
                encode_frames_message(self._generation, first_seq, raw[begin:])
            )
        return messages

    def _resolve_generation_change(self, head: int) -> List[dict]:
        """The primary compacted.  Fold if provable, else resync.

        A fold is provable when the new manifest records the folded
        frontier and it equals everything we shipped, or when the old
        journal still sits on disk (the crash window between snapshot
        publish and journal reset) and scans as a complete decided
        history we can finish shipping.
        """
        self._pending_announce = False
        if head == self._generation + 1:
            manifest = read_manifest(self._dir, self._io)
            if (
                manifest is not None
                and manifest.generation == head
                and manifest.folded_seq == self._seq
            ):
                self._generation, self._seq, self._offset = head, 0, 0
                return [
                    encode_schema_message(
                        head, self._schema_crc, 0, folds=manifest.folded_seq
                    )
                ]
            messages = self._finish_old_generation(head)
            if messages is not None:
                return messages
        self._generation = None
        return self._snapshot_messages()

    def _finish_old_generation(self, head: int) -> Optional[List[dict]]:
        try:
            data = self._io.read_bytes(self._journal_path())
        except OSError:
            return None
        if not data or self._offset > len(data):
            return None
        scanned = wal.scan(data, expect_generation=self._generation)
        records = scanned.records
        if (
            scanned.tail_state != "clean"
            or not records
            or records[0].seq != 1
            or any(r.generation != self._generation for r in records)
        ):
            return None
        _, pending = wal.resolve_decided(records)
        if pending is not None or records[-1].seq < self._seq:
            return None
        boundary = 0 if self._seq == 0 else next(
            (r.end for r in records if r.seq == self._seq), None
        )
        if boundary != self._offset:
            return None
        remainder = data[self._offset:]
        messages = []
        if remainder:
            messages.extend(self._frame_messages(remainder, self._seq + 1))
        fold_seq = records[-1].seq
        messages.append(
            encode_schema_message(head, self._schema_crc, 0, folds=fold_seq)
        )
        self._generation, self._seq, self._offset = head, 0, 0
        return messages


# ----------------------------------------------------------------------
# primary side, sharded: per-shard sources under one coordinator cut
# ----------------------------------------------------------------------
class ShardedFrameSource:
    """Multiplex per-shard :class:`FrameSource` streams under one
    coordinator cut.

    Every ``poll()`` first captures the coordinator log's transaction
    states (PR 7's ``_capture_txn_cut`` discipline, applied to
    shipping): each shard's stream is then gated to stop in front of
    any decided 2PC pair whose transaction the captured cut does not
    show *complete* — all participants' decides durable.  Because every
    decide is durable before the coordinator's ``complete`` record, a
    transaction the cut completes is shippable from **every** shard in
    the same batch, so the batch — closed by a ``cut`` message carrying
    the landing frontier — is atomic across the follower set: no
    follower ever holds half a spanning transaction.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        *,
        io: Optional[StoreIO] = None,
        batch_bytes: int = STREAM_BATCH_BYTES,
    ) -> None:
        from repro.legality.scope import analyze_shard_scope, shard_local_schema

        self._dir = directory
        self._io = io if io is not None else StoreIO()
        shard_map = read_shard_map(directory)
        local_schema = shard_local_schema(
            schema, analyze_shard_scope(schema, shard_map)
        )
        self._sources: Dict[str, FrameSource] = {
            spec.name: FrameSource(
                shard_dir(directory, spec.name),
                local_schema,
                io=self._io,
                batch_bytes=batch_bytes,
                pair_gate=self._gate,
            )
            for spec in shard_map
        }
        self._shard_map_text = self._io.read_text(shard_map_path(directory))
        self._sent_shard_map = False
        self._txn_states: Dict[str, object] = {}

    @property
    def position(self) -> Dict[str, Tuple[int, int]]:
        """``{shard: (generation, seq)}`` of the last shipped frames."""
        return {name: source.position for name, source in self._sources.items()}

    def attach(self, positions: Optional[Dict[str, Tuple[int, int]]]) -> bool:
        """Position every shard stream at the follower's durable cut;
        a shard that cannot resume incrementally snapshots on the next
        poll.  Returns ``True`` iff every shard resumes incrementally."""
        positions = positions or {}
        resumed = True
        for name, source in self._sources.items():
            pos = positions.get(name, (0, 0))
            resumed = source.attach(pos[0], pos[1]) and resumed
        return resumed

    def poll(self) -> List[dict]:
        """The next batch: shard-tagged stream messages closed by one
        ``cut`` message (empty list = every shard caught up)."""
        try:
            log = inspect_txlog(self._dir, io=self._io)
        except StoreError:
            return []  # coordinator log mid-write; retry next poll
        self._txn_states = dict(log.states()) if log is not None else {}
        body: List[dict] = []
        for name, source in self._sources.items():
            for message in source.poll():
                tagged = dict(message)
                tagged["shard"] = name
                body.append(tagged)
        if not body:
            return []
        messages: List[dict] = []
        if not self._sent_shard_map:
            messages.append(encode_shard_map_message(self._shard_map_text))
            self._sent_shard_map = True
        messages.extend(body)
        messages.append(
            encode_cut_message(
                {name: source.position
                 for name, source in self._sources.items()}
            )
        )
        return messages

    def _gate(self, txid: Optional[str]) -> bool:
        """Ship a decided pair iff its transaction is *complete* at the
        captured cut.  An absent txid means the coordinator already
        retired it (``complete`` precedes retirement), which is equally
        proof every participant's decide is durable."""
        if txid is None:
            return True
        state = self._txn_states.get(txid)
        return state is None or state.state == "complete"


# ----------------------------------------------------------------------
# replica side: the applier
# ----------------------------------------------------------------------
class ReplicaApplier:
    """A follower's local copy: its own WAL, fed by the stream.

    Owns the store directory (advisory lock held while open — two
    appliers scribbling one journal would corrupt it), appends shipped
    frames to the local journal with fsync, and replays them through an
    embedded :class:`StoreReader` — the identical bootstrap/replay path
    every reader uses, so the replica's view *is* a reader's view.  A
    restarted applier recovers its durable position (torn tail
    truncated exactly like any crashed store) and resumes from there.

    The full read surface is the embedded reader: ``instance`` for
    search/check, ``position()``/``lag()``/``status()`` for
    introspection.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
        upstream: Optional[str] = None,
    ) -> None:
        self.directory = directory
        self._schema = schema
        self._registry = registry
        self._io = io if io is not None else StoreIO()
        self.schema_crc = schema_fingerprint(schema)
        self.upstream = upstream
        self.reader: Optional[StoreReader] = None
        self._announced: Optional[int] = None
        self._closed = False
        #: Last known primary frontier ``(generation, seq)`` — updated
        #: by whoever drives the stream; lag introspection only.
        self.frontier: Optional[Tuple[int, int]] = None
        self.frames_applied = 0
        self.bytes_applied = 0
        self.snapshots_installed = 0
        os.makedirs(directory, exist_ok=True)
        self._lock = DirectoryStore._acquire_lock(directory)
        try:
            if os.path.exists(os.path.join(directory, SNAPSHOT_FILE)):
                # Truncate a torn tail from a crashed append before
                # tailing again: appending past torn bytes would turn a
                # benign crash into a corrupt journal.
                recover(directory, io=self._io, repair=True)
                self.reader = StoreReader.open(
                    directory, schema, registry, io=self._io
                )
            state = read_replica_state(directory)
            if state is not None and self.upstream is None:
                self.upstream = state.get("upstream")
        except BaseException:
            DirectoryStore._release_lock(self._lock)
            raise

    # -- read surface --------------------------------------------------
    @property
    def instance(self):
        """The replica's current directory instance (read surface)."""
        self._ensure_open()
        if self.reader is None:
            raise StoreError(
                f"replica {self.directory} holds no state yet; it needs "
                "a snapshot from its primary"
            )
        return self.reader.instance

    def position(self) -> Tuple[int, int]:
        """``(generation, seq)`` durably applied — ``(0, 0)`` before
        the first snapshot lands."""
        if self.reader is None:
            return (0, 0)
        return self.reader.position()

    def lag_frames(self) -> Optional[int]:
        """Frames behind the last known primary frontier (``None``
        until a frontier was observed or across a generation switch)."""
        if self.frontier is None:
            return None
        generation, seq = self.position()
        if generation != self.frontier[0]:
            return None
        return max(0, self.frontier[1] - seq)

    def status(self) -> dict:
        """Introspection snapshot for CLI/fsck reporting."""
        generation, seq = self.position()
        return {
            "directory": self.directory,
            "upstream": self.upstream,
            "generation": generation,
            "seq": seq,
            "frontier": self.frontier,
            "lag_frames": self.lag_frames(),
            "frames_applied": self.frames_applied,
            "bytes_applied": self.bytes_applied,
            "snapshots_installed": self.snapshots_installed,
        }

    # -- stream application --------------------------------------------
    def apply_message(self, message) -> StreamMessage:
        """Apply one stream message durably; returns the decoded form.

        Raises :class:`ReplicationError` on contract violations —
        notably data frames whose generation no schema frame announced
        (the schema-before-data ordering is *enforced*, not assumed) —
        and :class:`ReplicaDivergedError` when the local position
        cannot align with the stream (resync from a snapshot).
        """
        self._ensure_open()
        decoded = (
            message
            if isinstance(message, StreamMessage)
            else decode_stream_message(message)
        )
        if decoded.kind == "snapshot":
            self._install_snapshot(decoded)
        elif decoded.kind == "schema":
            self._handle_schema(decoded)
        else:
            self._apply_frames(decoded)
        self._save_state()
        return decoded

    def close(self) -> None:
        """Release the reader and the advisory lock (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.reader is not None:
            self.reader.close()
            self.reader = None
        DirectoryStore._release_lock(self._lock)

    def __enter__(self) -> "ReplicaApplier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError(f"replica applier for {self.directory} is closed")

    def _check_schema(self, decoded: StreamMessage) -> None:
        if decoded.schema_crc != self.schema_crc:
            raise ReplicationError(
                f"schema fingerprint mismatch: primary streams under "
                f"0x{decoded.schema_crc:08x}, replica holds "
                f"0x{self.schema_crc:08x}; frames checked under a "
                "different schema cannot be blindly replayed"
            )

    def _install_snapshot(self, decoded: StreamMessage) -> None:
        self._check_schema(decoded)
        assert decoded.snapshot is not None
        self._io.fault_point("repl:snapshot-install")
        self._io.write_file_atomic(
            os.path.join(self.directory, SNAPSHOT_FILE),
            decoded.snapshot.encode("utf-8"),
        )
        self._io.fault_point("repl:journal-reset")
        self._io.write_file_atomic(
            os.path.join(self.directory, JOURNAL_FILE), b""
        )
        self._publish_manifest(decoded.generation)
        # A snapshot installs state but does not license data frames:
        # the stream must still announce the generation (schema first).
        self._announced = None
        if self.reader is not None:
            self.reader.close()
        self.reader = StoreReader.open(
            self.directory, self._schema, self._registry, io=self._io
        )
        if self.reader.position() != (decoded.generation, 0):
            raise ReplicationError(
                f"installed snapshot generation {decoded.generation} but "
                f"the local view bootstrapped at {self.reader.position()}"
            )
        self.snapshots_installed += 1

    def _handle_schema(self, decoded: StreamMessage) -> None:
        self._check_schema(decoded)
        assert decoded.base_seq is not None
        pos = self.position()
        if pos == (decoded.generation, decoded.base_seq):
            self._announced = decoded.generation
            return
        if (
            decoded.folds is not None
            and decoded.base_seq == 0
            and pos == (decoded.generation - 1, decoded.folds)
        ):
            self._fold(decoded.generation, decoded.folds)
            self._announced = decoded.generation
            return
        raise ReplicaDivergedError(
            f"replica at {pos} cannot align with announced generation "
            f"{decoded.generation} (base seq {decoded.base_seq}, folds "
            f"{decoded.folds}); resync from a snapshot"
        )

    def _fold(self, generation: int, folded_seq: int) -> None:
        """Compact locally: our state at the folded frontier *is* the
        new generation's snapshot, so write it from our own instance
        instead of re-downloading — same serialization the primary's
        ``compact()`` used, hence byte-identical."""
        assert self.reader is not None
        text = wal.encode_snapshot(
            generation, serialize_ldif(self.reader.instance)
        )
        self._io.fault_point("repl:fold-snapshot")
        self._io.write_file_atomic(
            os.path.join(self.directory, SNAPSHOT_FILE), text.encode("utf-8")
        )
        self._io.fault_point("repl:fold-journal")
        self._io.write_file_atomic(
            os.path.join(self.directory, JOURNAL_FILE), b""
        )
        self._publish_manifest(generation, folded_seq=folded_seq)
        result = self.reader.refresh()
        if self.reader.position() != (generation, 0):
            raise ReplicationError(
                f"local fold to generation {generation} left the view at "
                f"{self.reader.position()} ({result.note or 'no note'})"
            )

    def _apply_frames(self, decoded: StreamMessage) -> None:
        assert decoded.records is not None and decoded.data is not None
        if self._announced != decoded.generation:
            raise ReplicationError(
                f"data frames for generation {decoded.generation} arrived "
                f"before a schema frame announced it (announced: "
                f"{self._announced}); schema frames must precede data"
            )
        assert self.reader is not None
        generation, seq = self.position()
        if generation != decoded.generation:
            raise ReplicaDivergedError(
                f"replica at generation {generation} received frames for "
                f"generation {decoded.generation}"
            )
        last_seq = decoded.records[-1].seq
        if last_seq <= seq:
            return  # duplicate delivery (reconnect overlap): idempotent
        if decoded.start_seq != seq + 1:
            raise ReplicaDivergedError(
                f"replica at seq {seq} received frames starting at "
                f"{decoded.start_seq}; the stream has a gap"
            )
        self._io.fault_point("repl:frames-append")
        self._io.append_bytes(
            os.path.join(self.directory, JOURNAL_FILE), decoded.data
        )
        result = self.reader.refresh()
        if self.reader.position() != (generation, last_seq):
            raise ReplicationError(
                f"appended frames through seq {last_seq} but the view "
                f"stands at {self.reader.position()} "
                f"({result.note or 'no note'})"
            )
        self.frames_applied += len(decoded.records)
        self.bytes_applied += len(decoded.data)

    def _publish_manifest(
        self, generation: int, folded_seq: Optional[int] = None
    ) -> None:
        current = read_manifest(self.directory, self._io)
        if current is None:
            manifest = Manifest(
                version=1, generation=generation, role="replica",
                folded_seq=folded_seq,
            )
        else:
            manifest = dataclasses.replace(
                current.bump(generation=generation),
                role="replica", folded_seq=folded_seq,
            )
        self._io.fault_point("repl:manifest")
        write_manifest(self.directory, manifest, self._io)

    def _save_state(self) -> None:
        generation, seq = self.position()
        payload = {
            "upstream": self.upstream,
            "generation": generation,
            "seq": seq,
            "schema_crc": self.schema_crc,
        }
        self._io.fault_point("repl:state")
        self._io.write_file_atomic(
            os.path.join(self.directory, REPLICA_STATE_FILE),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )


def read_replica_state(directory: str) -> Optional[dict]:
    """The advisory ``replica.state`` file, or ``None`` when absent or
    damaged (it never gates anything; the WAL is the truth)."""
    path = os.path.join(directory, REPLICA_STATE_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


# ----------------------------------------------------------------------
# replica side, sharded: the cohort applier
# ----------------------------------------------------------------------
class ShardedReplicaApplier:
    """A follower *set*: one :class:`ReplicaApplier` per shard, batches
    applied atomically at ``cut`` boundaries.

    Shard-tagged messages buffer until the batch's ``cut`` message
    arrives; the whole batch then applies under :attr:`lock` — the same
    lock a composite read surface must hold while refreshing — so no
    reader ever observes one shard past a spanning transaction and a
    sibling short of it.  After each batch the landing frontier is
    checked against the cut and recorded durably (``cut.state``); a
    restarted cohort is :meth:`consistent` only when every shard
    recovers to exactly the recorded cut, and must not serve (or be
    promoted) until a new cut lands otherwise.
    """

    def __init__(
        self,
        directory: str,
        schema: DirectorySchema,
        registry: Optional[AttributeRegistry] = None,
        *,
        io: Optional[StoreIO] = None,
        upstream: Optional[str] = None,
    ) -> None:
        self.directory = directory
        self._schema = schema
        self._registry = registry
        self._io = io if io is not None else StoreIO()
        self.upstream = upstream
        self.lock = threading.Lock()
        self._appliers: Dict[str, ReplicaApplier] = {}
        self._pending: List[StreamMessage] = []
        self._cut: Optional[Dict[str, Tuple[int, int]]] = None
        self._closed = False
        os.makedirs(directory, exist_ok=True)
        try:
            if os.path.exists(shard_map_path(directory)):
                self._open_shards()
            if self._appliers:
                state = read_cut_state(directory)
                if state is not None:
                    self._cut = state
            persisted = read_replica_state(directory)
            if persisted is not None and self.upstream is None:
                self.upstream = persisted.get("upstream")
        except BaseException:
            self.close()
            raise

    # -- introspection -------------------------------------------------
    @property
    def frames_applied(self) -> int:
        """Total frames applied across the cohort's shard appliers."""
        return sum(a.frames_applied for a in self._appliers.values())

    @property
    def bytes_applied(self) -> int:
        """Total frame bytes applied across the cohort."""
        return sum(a.bytes_applied for a in self._appliers.values())

    @property
    def snapshots_installed(self) -> int:
        """Total bootstrap snapshots installed across the cohort."""
        return sum(a.snapshots_installed for a in self._appliers.values())

    @property
    def instance(self):
        """A stitched composite instance of the cohort (read surface).

        Opens a fresh lock-free composite reader per call, under
        :attr:`lock` so the stitch never straddles a batch apply."""
        from repro.store.sharded import CompositeReader

        self._ensure_open()
        if not self._appliers:
            raise StoreError(
                f"sharded replica {self.directory} holds no state yet; "
                "it needs a shard map and snapshots from its primary"
            )
        with self.lock:
            reader = CompositeReader.open(
                self.directory, self._schema, self._registry
            )
            try:
                return reader.instance
            finally:
                reader.close()

    def position(self) -> Dict[str, Tuple[int, int]]:
        """``{shard: (generation, seq)}`` durably applied — ``{}``
        before the shard map lands."""
        return {name: a.position() for name, a in self._appliers.items()}

    def consistent(self) -> bool:
        """Whether every shard stands exactly at the last replicated
        cut — the only states in which the composite view is whole."""
        return self._cut is not None and self.position() == self._cut

    def status(self) -> dict:
        """Per-shard applier status plus the last replicated cut."""
        return {
            "directory": self.directory,
            "upstream": self.upstream,
            "shards": {
                name: a.status() for name, a in self._appliers.items()
            },
            "cut": None if self._cut is None else {
                name: list(pos) for name, pos in self._cut.items()
            },
            "consistent": self.consistent(),
            "frames_applied": self.frames_applied,
            "bytes_applied": self.bytes_applied,
            "snapshots_installed": self.snapshots_installed,
        }

    # -- stream application --------------------------------------------
    def apply_message(self, message) -> StreamMessage:
        """Buffer shard-tagged messages; a ``cut`` applies the whole
        batch atomically under :attr:`lock` and records the frontier."""
        self._ensure_open()
        decoded = (
            message
            if isinstance(message, StreamMessage)
            else decode_stream_message(message)
        )
        if decoded.kind == "shardmap":
            self._install_shard_map(decoded)
            return decoded
        if decoded.kind == "cut":
            self._apply_cut(decoded)
            return decoded
        if decoded.shard is None:
            raise ReplicationError(
                f"sharded stream message of kind {decoded.kind!r} "
                "carries no shard tag"
            )
        if decoded.shard not in self._appliers:
            raise ReplicationError(
                f"stream message for unknown shard {decoded.shard!r} "
                "(shard map not installed, or layouts diverge)"
            )
        self._pending.append(decoded)
        return decoded

    def close(self) -> None:
        """Close every shard applier (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for applier in self._appliers.values():
            applier.close()

    def __enter__(self) -> "ShardedReplicaApplier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError(
                f"sharded replica applier for {self.directory} is closed"
            )

    def _open_shards(self) -> None:
        from repro.legality.scope import analyze_shard_scope, shard_local_schema

        shard_map = read_shard_map(self.directory)
        local_schema = shard_local_schema(
            self._schema, analyze_shard_scope(self._schema, shard_map)
        )
        for spec in shard_map:
            self._appliers[spec.name] = ReplicaApplier(
                shard_dir(self.directory, spec.name),
                local_schema,
                self._registry,
                io=self._io,
            )

    def _install_shard_map(self, decoded: StreamMessage) -> None:
        assert decoded.shard_map is not None
        path = shard_map_path(self.directory)
        if self._appliers:
            try:
                current = self._io.read_text(path)
            except OSError:
                current = None
            if current != decoded.shard_map:
                raise ReplicationError(
                    "primary ships a different shard layout than this "
                    "follower holds; a re-sharded primary needs a fresh "
                    "follower directory"
                )
            return
        self._io.write_file_atomic(
            path, decoded.shard_map.encode("utf-8")
        )
        self._open_shards()

    def _apply_cut(self, decoded: StreamMessage) -> None:
        assert decoded.frontier is not None
        with self.lock:
            for message in self._pending:
                self._appliers[message.shard].apply_message(message)
            self._pending = []
            landed = self.position()
            if landed != decoded.frontier:
                raise ReplicationError(
                    f"batch landed the cohort at {landed}, but the cut "
                    f"says {decoded.frontier}; the stream and the "
                    "follower set diverge"
                )
            self._cut = dict(decoded.frontier)
            self._save_cut_state()
            self._save_state()

    def _save_cut_state(self) -> None:
        assert self._cut is not None
        payload = {name: list(pos) for name, pos in self._cut.items()}
        self._io.fault_point("repl:cut-state")
        self._io.write_file_atomic(
            os.path.join(self.directory, CUT_STATE_FILE),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    def _save_state(self) -> None:
        payload = {
            "upstream": self.upstream,
            "shards": {
                name: list(pos) for name, pos in self.position().items()
            },
            "schema_crc": schema_fingerprint(self._schema),
        }
        self._io.write_file_atomic(
            os.path.join(self.directory, REPLICA_STATE_FILE),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )


def read_cut_state(directory: str) -> Optional[Dict[str, Tuple[int, int]]]:
    """The follower set's last recorded cut, or ``None`` when absent or
    damaged (the per-shard WALs are the truth; the cut only gates
    serving and promotion)."""
    path = os.path.join(directory, CUT_STATE_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    cut: Dict[str, Tuple[int, int]] = {}
    for name, pos in payload.items():
        if not (
            isinstance(name, str)
            and isinstance(pos, list)
            and len(pos) == 2
            and all(isinstance(p, int) and not isinstance(p, bool) for p in pos)
        ):
            return None
        cut[name] = (pos[0], pos[1])
    return cut


def pump(source: FrameSource, applier: ReplicaApplier, limit: int = 1000) -> int:
    """Drain ``source`` into ``applier`` until a poll comes back empty.

    The in-process transport: the crash matrix and the lag bench drive
    replication through the identical message objects the server ships
    over its sockets.  Returns the number of messages applied.
    """
    applied = 0
    for _ in range(limit):
        batch = source.poll()
        if not batch:
            return applied
        for message in batch:
            applier.apply_message(message)
            applied += 1
    raise ReplicationError(
        f"pump did not converge within {limit} polls; the source keeps "
        "producing messages"
    )


# ----------------------------------------------------------------------
# promotion
# ----------------------------------------------------------------------
def promote(
    directory: str,
    schema: DirectorySchema,
    registry: Optional[AttributeRegistry] = None,
    *,
    io: Optional[StoreIO] = None,
) -> DirectoryStore:
    """Promote a follower's local copy to a writable primary.

    Steps, each behind a named fault point so the failover crash
    matrix can kill between any two:

    1. ``promote:inspect`` — a read-only recovery pass; refuse with a
       clear error if an in-doubt 2PC prepare is visible (only the old
       primary's coordinator log can decide it) or the copy is
       corrupt beyond its committed prefix.
    2. ``promote:open`` — open as a writer: acquires the advisory
       lock, recovers the committed prefix, truncates a torn tail.
    3. ``promote:compact`` — compact: a genuine generation bump that
       starts a new epoch, so any frame the old primary might still
       ship is recognisably stale.
    4. ``promote:state`` — drop the advisory ``replica.state`` marker.

    Returns the open, writable store; the caller owns closing it.
    A crash at any point leaves a copy that recovers to the same
    committed prefix and can be promoted again.
    """
    io = io if io is not None else StoreIO()
    io.fault_point("promote:inspect")
    _, report = recover(directory, schema, registry, io=io, repair=False)
    if report.in_doubt_txid is not None:
        raise StoreError(
            f"refusing to promote {directory}: in-doubt 2PC transaction "
            f"{report.in_doubt_txid} is visible at the replication "
            "frontier; only the old primary's coordinator log can decide "
            "it — resolve it there (recover --shards) or discard the "
            "prepare explicitly before promoting"
        )
    if report.read_only:
        raise StoreError(
            f"refusing to promote {directory}: recovery found damage "
            "beyond the committed prefix (corrupt tail); run `recover "
            "--force` and inspect the quarantine first"
        )
    io.fault_point("promote:open")
    store = DirectoryStore.open(directory, schema, registry, io=io)
    try:
        io.fault_point("promote:compact")
        store.compact()
        io.fault_point("promote:state")
        state_path = os.path.join(directory, REPLICA_STATE_FILE)
        if os.path.exists(state_path):
            os.unlink(state_path)
    except BaseException:
        store.close()
        raise
    return store


def promote_shards(
    directory: str,
    schema: DirectorySchema,
    registry: Optional[AttributeRegistry] = None,
    *,
    io: Optional[StoreIO] = None,
):
    """Promote a sharded follower set to a writable sharded primary —
    the whole cohort, or none of it.

    The inspection pass runs over **every** shard before anything is
    promoted: each must recover cleanly (no in-doubt 2PC prepare, no
    damage beyond the committed prefix) *and* stand exactly at the last
    replicated cut — a shard ahead of or behind the cut means the
    follower set holds a torn composite (a crash mid-batch), which
    promotion must never freeze into a primary.  Only then is each
    shard promoted (generation bump per member), the cut marker
    dropped, and the cohort reopened as a
    :class:`~repro.store.sharded.ShardedStore`.
    """
    from repro.legality.scope import analyze_shard_scope, shard_local_schema
    from repro.store.sharded import ShardedStore

    io = io if io is not None else StoreIO()
    cut = read_cut_state(directory)
    if cut is None:
        raise StoreError(
            f"refusing to promote {directory}: no replicated cut is "
            "recorded — the follower set never reached a coordinator-cut "
            "boundary it could be served (or promoted) at"
        )
    shard_map = read_shard_map(directory)
    local_schema = shard_local_schema(
        schema, analyze_shard_scope(schema, shard_map)
    )
    io.fault_point("promote-shards:inspect")
    already_promoted = set()
    for spec in shard_map:
        member = shard_dir(directory, spec.name)
        _, report = recover(member, local_schema, registry, io=io, repair=False)
        if report.in_doubt_txid is not None:
            raise StoreError(
                f"refusing to promote {directory}: shard {spec.name!r} "
                f"holds in-doubt 2PC transaction {report.in_doubt_txid}; "
                "only the old primary's coordinator log can decide it"
            )
        if report.read_only:
            raise StoreError(
                f"refusing to promote {directory}: shard {spec.name!r} "
                "has damage beyond its committed prefix "
                f"({report.summary()})"
            )
        position = (report.generation, report.last_seq)
        if spec.name in cut and position == cut[spec.name]:
            continue
        # A member a crashed promote_shards already bumped sits one
        # generation past its cut entry with an empty journal and a
        # non-replica manifest; re-running must finish the cohort, not
        # refuse it.
        manifest = read_manifest(member, io)
        if (
            spec.name in cut
            and position == (cut[spec.name][0] + 1, 0)
            and manifest is not None
            and manifest.role != "replica"
        ):
            already_promoted.add(spec.name)
            continue
        raise StoreError(
            f"refusing to promote {directory}: shard {spec.name!r} "
            f"stands at {position} but the last replicated cut "
            f"records {cut.get(spec.name)}; the cohort promotes "
            "atomically or not at all"
        )
    for spec in shard_map:
        if spec.name in already_promoted:
            continue
        io.fault_point("promote-shards:member")
        promote(
            shard_dir(directory, spec.name), local_schema, registry, io=io
        ).close()
    io.fault_point("promote-shards:cut-state")
    cut_path = os.path.join(directory, CUT_STATE_FILE)
    if os.path.exists(cut_path):
        os.unlink(cut_path)
    state_path = os.path.join(directory, REPLICA_STATE_FILE)
    if os.path.exists(state_path):
        os.unlink(state_path)
    return ShardedStore.open(directory, schema, registry)
