"""Random schemas, forests, and corruptions.

Three generator families used across the test suite and benchmarks:

* :func:`random_schema` — random bounding-schemas of tunable size with
  controllable consistency (``consistent`` by rejection sampling against
  the inference system, or deliberately ``cyclic`` / ``contradictory``
  by injecting a Section 5 pattern at a random location);
* :func:`random_forest` — random directory forests with random class
  sets drawn from a label pool, for differential testing of the naive
  vs. query-reduction structure checkers (their verdicts must agree on
  *any* instance, legal or not);
* :func:`corrupt` — given a legal instance and its schema, apply one
  random legality-breaking mutation and report which Definition 2.7
  clause it breaks, for checker-sensitivity tests.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.axes import Axis
from repro.model.instance import DirectoryInstance
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import TOP, ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.structure_schema import StructureSchema

__all__ = ["random_schema", "random_forest", "corrupt"]

_REQUIRED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.PARENT, Axis.ANCESTOR)
_FORBIDDEN_AXES = (Axis.CHILD, Axis.DESCENDANT)


def _random_class_schema(rng: random.Random, n_classes: int, max_depth: int) -> ClassSchema:
    schema = ClassSchema()
    names = [f"k{i}" for i in range(n_classes)]
    for name in names:
        # Sorted so the draw is reproducible across processes (set
        # iteration order depends on the interpreter's hash seed).
        parents = [TOP] + sorted(
            c for c in schema.core_classes()
            if c != TOP and len(schema.superclasses(c)) < max_depth
        )
        schema.add_core(name, parent=rng.choice(parents))
    return schema


def random_schema(
    n_classes: int = 6,
    n_required: int = 4,
    n_forbidden: int = 2,
    n_required_classes: int = 2,
    seed: int = 0,
    mode: str = "consistent",
    max_depth: int = 3,
    max_attempts: int = 200,
) -> DirectorySchema:
    """Generate a random bounding-schema.

    ``mode``:

    * ``"consistent"`` — rejection-samples random schemas until the
      inference system accepts one (raises ``RuntimeError`` after
      ``max_attempts``; keep edge counts moderate relative to
      ``n_classes``);
    * ``"cyclic"`` — consistent base plus an injected required-edge
      cycle through a populated class (the Section 5.1 pattern);
    * ``"contradictory"`` — consistent base plus an injected
      required/forbidden direct conflict (the Section 5.2 pattern);
    * ``"any"`` — first sample, no filtering (verdict unknown).
    """
    from repro.consistency.engine import close  # local import: avoid cycle

    if mode not in ("consistent", "cyclic", "contradictory", "any"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = random.Random(seed)
    for _ in range(max_attempts):
        classes = _random_class_schema(rng, n_classes, max_depth)
        pool = sorted(classes.core_classes() - {TOP})
        structure = StructureSchema()
        for name in rng.sample(pool, min(n_required_classes, len(pool))):
            structure.require_class(name)
        for _ in range(n_required):
            structure.require(
                rng.choice(pool), rng.choice(_REQUIRED_AXES), rng.choice(pool)
            )
        for _ in range(n_forbidden):
            structure.forbid(
                rng.choice(pool), rng.choice(_FORBIDDEN_AXES), rng.choice(pool)
            )
        schema = DirectorySchema(AttributeSchema(), classes, structure)

        if mode == "any":
            return schema
        consistent = close(schema.all_elements()).consistent
        if mode == "consistent":
            if consistent:
                return schema
            continue
        if not consistent:
            continue  # need a consistent base to inject into
        if mode == "cyclic":
            a, b = rng.choice(pool), rng.choice(pool)
            structure.require_class(a)
            structure.require_descendant(a, b)
            structure.require_descendant(b, a)
            return schema
        assert mode == "contradictory"
        a, b = rng.choice(pool), rng.choice(pool)
        structure.require_class(a)
        structure.require_descendant(a, b)
        structure.forbid_descendant(a, b)
        return schema
    raise RuntimeError(
        f"could not sample a {mode} schema in {max_attempts} attempts; "
        "reduce edge counts relative to n_classes"
    )


def random_forest(
    n_entries: int = 50,
    labels: Optional[List[str]] = None,
    max_classes_per_entry: int = 3,
    root_probability: float = 0.15,
    seed: int = 0,
) -> DirectoryInstance:
    """A random forest with random class sets — no legality guarantees.

    Used to differential-test checkers, whose *verdicts* must agree on
    arbitrary instances.
    """
    rng = random.Random(seed)
    labels = labels if labels is not None else [f"k{i}" for i in range(6)]
    instance = DirectoryInstance()
    entries = []
    for i in range(n_entries):
        upper = min(max_classes_per_entry, len(labels))
        classes = set(rng.sample(labels, rng.randrange(1, upper + 1)))
        classes.add(TOP)
        if not entries or rng.random() < root_probability:
            parent = None
        else:
            parent = rng.choice(entries)
        entries.append(instance.add_entry(parent, f"id=n{i}", classes))
    return instance


def corrupt(
    instance: DirectoryInstance,
    schema: DirectorySchema,
    seed: int = 0,
) -> Tuple[str, str]:
    """Apply one random legality-breaking mutation in place.

    Returns ``(kind, dn)`` where ``kind`` names the expected violation
    kind (a :class:`repro.legality.report.Kind` constant) and ``dn`` the
    mutated entry.  Raises ``RuntimeError`` when no applicable mutation
    exists (tiny instances only).
    """
    from repro.legality.report import Kind  # local import: avoid cycle

    rng = random.Random(seed)
    entries = list(instance)
    rng.shuffle(entries)
    class_schema = schema.class_schema
    attribute_schema = schema.attribute_schema

    mutations = []

    def drop_required(entry) -> Optional[str]:
        for object_class in sorted(entry.classes):
            for attribute in sorted(attribute_schema.required(object_class)):
                if entry.has_attribute(attribute):
                    for value in entry.values(attribute):
                        entry.remove_value(attribute, value)
                    return Kind.MISSING_REQUIRED_ATTRIBUTE
        return None

    def add_disallowed(entry) -> Optional[str]:
        candidates = sorted(
            attribute_schema.attributes()
            - {a for c in entry.classes for a in attribute_schema.allowed(c)}
            - {"objectClass"}
        )
        if not candidates:
            return None
        if schema.extras is not None and schema.extras.is_extensible(entry.classes):
            return None
        attribute = candidates[0]
        value: object = "illegal-value"
        registry = instance.attributes
        if registry is not None and attribute in registry:
            type_name = registry.tau(attribute).name
            value = {
                "integer": 99, "boolean": True,
                "telephone": "+1 555 0199", "uri": "http://illegal.example/",
                "dn": "cn=illegal",
            }.get(type_name, "illegal-value")
        entry.add_value(attribute, value)
        return Kind.DISALLOWED_ATTRIBUTE

    def add_unknown_class(entry) -> Optional[str]:
        entry.add_class("no-such-class")
        return Kind.UNKNOWN_CLASS

    def add_incomparable(entry) -> Optional[str]:
        cores = [c for c in entry.classes if class_schema.is_core(c)]
        for candidate in sorted(class_schema.core_classes()):
            if all(class_schema.incomparable(candidate, c) or candidate == c
                   for c in cores) and candidate not in entry.classes and any(
                class_schema.incomparable(candidate, c) for c in cores
            ):
                entry.add_class(candidate)
                return Kind.INCOMPARABLE_CORE_CLASSES
        return None

    def add_disallowed_aux(entry) -> Optional[str]:
        allowed = set()
        for c in entry.classes:
            if class_schema.is_core(c):
                allowed |= class_schema.aux(c)
        for aux in sorted(class_schema.auxiliary_classes() - allowed):
            entry.add_class(aux)
            return Kind.DISALLOWED_AUXILIARY
        return None

    mutations = [
        drop_required,
        add_disallowed,
        add_unknown_class,
        add_incomparable,
        add_disallowed_aux,
    ]
    rng.shuffle(mutations)
    for entry in entries:
        for mutation in mutations:
            kind = mutation(entry)
            if kind is not None:
                return kind, str(entry.dn)
    raise RuntimeError("no applicable corruption found")
