"""Workload generators: scalable instances, schemas, and update streams."""

from repro.workloads.den import (
    den_registry,
    den_schema,
    den_schema_overconstrained,
    generate_den,
)
from repro.workloads.randoms import corrupt, random_forest, random_schema
from repro.workloads.update_streams import (
    deletable_units,
    insertion_points,
    make_person_subtree,
    make_unit_subtree,
    random_insertions,
    random_transaction,
)
from repro.workloads.whitepages import (
    figure1_instance,
    generate_whitepages,
    whitepages_registry,
    whitepages_schema,
)

__all__ = [
    "figure1_instance",
    "generate_whitepages",
    "whitepages_registry",
    "whitepages_schema",
    "den_registry",
    "den_schema",
    "den_schema_overconstrained",
    "generate_den",
    "random_schema",
    "random_forest",
    "corrupt",
    "make_unit_subtree",
    "make_person_subtree",
    "insertion_points",
    "deletable_units",
    "random_insertions",
    "random_transaction",
]
