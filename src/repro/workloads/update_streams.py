"""Update-stream generation for the white-pages workload.

Produces legality-preserving subtree insertions/deletions and whole
transactions against instances of
:func:`repro.workloads.whitepages.generate_whitepages`, for the FIG5 and
THM41 benchmarks and the update property tests.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.model.dn import DN
from repro.model.instance import DirectoryInstance
from repro.updates.operations import UpdateTransaction

__all__ = [
    "make_unit_subtree",
    "make_person_subtree",
    "insertion_points",
    "deletable_units",
    "random_insertions",
    "random_transaction",
]

_counter = [0]


def _next_id(rng: random.Random) -> str:
    _counter[0] += 1
    return f"x{_counter[0]}-{rng.randrange(10 ** 6)}"


def make_person_subtree(
    rng: random.Random, attributes=None
) -> DirectoryInstance:
    """A single-person Δ (always content-legal for the white-pages
    schema)."""
    uid = _next_id(rng)
    delta = DirectoryInstance(attributes=attributes)
    delta.add_entry(
        None,
        f"uid={uid}",
        ["person", "top"],
        {"uid": [uid], "name": [f"gen {uid}"]},
    )
    return delta


def make_unit_subtree(
    rng: random.Random,
    persons: int = 2,
    attributes=None,
) -> DirectoryInstance:
    """A Δ consisting of one orgUnit with ``persons`` person children —
    the Section 4.1/4.2 example shape (legal wherever an orgGroup entry
    can accept children)."""
    ou = _next_id(rng)
    delta = DirectoryInstance(attributes=attributes)
    unit = delta.add_entry(
        None, f"ou={ou}", ["orgUnit", "orgGroup", "top"], {"ou": [ou]}
    )
    for _ in range(max(1, persons)):
        uid = _next_id(rng)
        delta.add_entry(
            unit,
            f"uid={uid}",
            ["person", "top"],
            {"uid": [uid], "name": [f"gen {uid}"]},
        )
    return delta


def insertion_points(instance: DirectoryInstance) -> List[str]:
    """DNs of entries that may receive orgUnit children (orgGroup
    entries)."""
    return [
        str(instance.dn_of(eid))
        for eid in sorted(instance.entries_with_class("orgGroup"))
    ]


def deletable_units(instance: DirectoryInstance) -> List[str]:
    """DNs of orgUnit subtrees whose deletion preserves legality: units
    whose parent still has another person-containing branch.

    Conservative approximation: units whose *parent* directly employs a
    person or has another unit child; callers should still expect the
    incremental checker to reject some candidates.
    """
    result = []
    for eid in sorted(instance.entries_with_class("orgUnit")):
        entry = instance.entry(eid)
        parent = instance.parent_of(entry)
        if parent is None:
            continue
        siblings = instance.children_of(parent)
        person_siblings = [s for s in siblings if s.belongs_to("person")]
        unit_siblings = [
            s for s in siblings if s.belongs_to("orgUnit") and s.eid != eid
        ]
        if person_siblings or unit_siblings:
            result.append(str(instance.dn_of(eid)))
    return result


def random_insertions(
    instance: DirectoryInstance,
    count: int,
    seed: int = 0,
    unit_probability: float = 0.5,
) -> Iterator[Tuple[Optional[str], DirectoryInstance]]:
    """Yield ``count`` (parent-dn, Δ) insertion candidates."""
    rng = random.Random(seed)
    points = insertion_points(instance)
    for _ in range(count):
        parent = rng.choice(points)
        if rng.random() < unit_probability:
            yield parent, make_unit_subtree(rng, persons=rng.randrange(1, 4),
                                            attributes=instance.attributes)
        else:
            yield parent, make_person_subtree(rng, attributes=instance.attributes)


def random_transaction(
    instance: DirectoryInstance,
    inserts: int = 3,
    seed: int = 0,
) -> UpdateTransaction:
    """A transaction of single-entry insert operations building
    ``inserts`` new units (each with one person), exercising the
    Theorem 4.1 decomposition."""
    rng = random.Random(seed)
    points = insertion_points(instance)
    transaction = UpdateTransaction()
    for _ in range(max(1, inserts)):
        parent = rng.choice(points)
        ou = _next_id(rng)
        unit_dn = f"ou={ou},{parent}"
        transaction.insert(unit_dn, ["orgUnit", "orgGroup", "top"], {"ou": [ou]})
        uid = _next_id(rng)
        transaction.insert(
            f"uid={uid},{unit_dn}",
            ["person", "top"],
            {"uid": [uid], "name": [f"gen {uid}"]},
        )
    return transaction
