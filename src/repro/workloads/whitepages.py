"""The corporate white-pages workload (Figures 1-3 of the paper).

Three artifacts:

* :func:`whitepages_schema` — the bounding-schema of the running example:
  the Figure 2 class schema (core hierarchy ``top / orgGroup / person``
  with ``organization``/``orgUnit`` under ``orgGroup`` and
  ``staffMember``/``researcher`` under ``person``, plus the auxiliary
  classes in braces), the attribute schema sketched after Definition 2.2,
  and the Figure 3 structure schema.
* :func:`figure1_instance` — the exact directory fragment of Figure 1
  (``o=att`` down to ``uid=suciu``), legal w.r.t. the schema.
* :func:`generate_whitepages` — a scalable generator producing legal
  instances of the same shape with the heterogeneity the paper's
  introduction motivates (zero/one/many e-mail addresses, optional
  auxiliary classes, optional phone numbers), for the FIG1/THM31
  benchmarks.

Structure-schema reading (Figure 3 plus the uses in Sections 3.2/4.2):

* ``orgGroup →→ person`` — every organizational group must (directly or
  indirectly) employ a person;
* ``organization → orgUnit`` — every organization has a direct
  organizational unit;
* ``orgGroup ← orgUnit`` — every unit sits directly under a group
  (the relationship the Section 4.2 example violates by inserting an
  orgUnit below a person);
* ``person ↛ top`` — persons are leaves;
* ``top ↛ organization`` — organizations are roots (no entry of any
  class, i.e. ``top``, has an organization child);
* required classes ``organization □``, ``orgUnit □``, ``person □``
  (Section 3.2 uses ``orgUnit □`` as its example).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.model.attributes import AttributeRegistry
from repro.model.instance import DirectoryInstance
from repro.model.types import URI
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.structure_schema import StructureSchema

__all__ = [
    "whitepages_registry",
    "whitepages_schema",
    "figure1_instance",
    "generate_whitepages",
]

_FIRST_NAMES = [
    "amy", "dan", "laks", "divesh", "maria", "chen", "ravi", "elena",
    "john", "jack", "mary", "wei", "ana", "tomas", "nina", "omar",
]
_LAST_NAMES = [
    "stone", "suciu", "lakshmanan", "rivera", "zhang", "patel", "kim",
    "novak", "garcia", "mori", "ali", "brown", "silva", "kovacs",
]
_UNIT_NAMES = [
    "databases", "networking", "security", "systems", "theory", "ml",
    "compilers", "graphics", "hci", "oss", "infra", "qa", "sales",
    "support", "legal", "finance",
]


def whitepages_registry() -> AttributeRegistry:
    """The attribute registry (``tau``) of the white-pages deployment."""
    registry = AttributeRegistry()
    registry.declare_all(["o", "ou", "uid", "name", "mail", "location"])
    registry.declare("uri", URI)
    registry.declare("telephoneNumber", "telephone")
    registry.declare("cellularPhone", "telephone")
    return registry


def whitepages_schema(extras: bool = False) -> DirectorySchema:
    """The full bounding-schema of the running example (Figures 2-3).

    With ``extras=True``, additionally declares ``uid`` as a
    directory-wide key (Section 6.1).
    """
    classes = (
        ClassSchema()
        .add_core("orgGroup")
        .add_core("person")
        .add_core("organization", parent="orgGroup")
        .add_core("orgUnit", parent="orgGroup")
        .add_core("staffMember", parent="person")
        .add_core("researcher", parent="person")
        .add_auxiliary("online")
        .add_auxiliary("manager")
        .add_auxiliary("secretary")
        .add_auxiliary("consultant")
        .add_auxiliary("facultyMember")
        .allow_auxiliary("orgGroup", "online")
        .allow_auxiliary("person", "online")
        .allow_auxiliary("staffMember", "manager", "secretary", "consultant")
        .allow_auxiliary("researcher", "manager", "consultant", "facultyMember")
    )

    attributes = (
        AttributeSchema()
        .declare("top")
        .declare("organization", required=("o",))
        .declare("orgGroup")
        .declare("orgUnit", required=("ou",), allowed=("location",))
        .declare("person", required=("name", "uid"),
                 allowed=("telephoneNumber", "cellularPhone"))
        .declare("staffMember")
        .declare("researcher")
        .declare("online", allowed=("mail", "uri"))
        .declare("manager")
        .declare("secretary")
        .declare("consultant")
        .declare("facultyMember")
    )

    structure = (
        StructureSchema()
        .require_class("organization", "orgUnit", "person")
        .require_descendant("orgGroup", "person")
        .require_child("organization", "orgUnit")
        .require_parent("orgUnit", "orgGroup")
        .forbid_child("person", "top")
        .forbid_child("top", "organization")
    )

    schema = DirectorySchema(attributes, classes, structure, whitepages_registry())
    if extras:
        from repro.schema.extras import SchemaExtras

        schema.extras = SchemaExtras().declare_key("uid")
    return schema.validate()


def figure1_instance(registry: Optional[AttributeRegistry] = None) -> DirectoryInstance:
    """The exact directory fragment of Figure 1."""
    directory = DirectoryInstance(
        attributes=registry if registry is not None else whitepages_registry()
    )
    att = directory.add_entry(
        None,
        "o=att",
        ["organization", "orgGroup", "online", "top"],
        {"o": ["att"], "uri": ["http://www.att.com/"]},
    )
    attlabs = directory.add_entry(
        att,
        "ou=attLabs",
        ["orgUnit", "orgGroup", "top"],
        {"ou": ["attLabs"], "location": ["FP"]},
    )
    directory.add_entry(
        att,
        "uid=armstrong",
        ["staffMember", "person", "top"],
        {"uid": ["armstrong"], "name": ["m armstrong"]},
    )
    databases = directory.add_entry(
        attlabs,
        "ou=databases",
        ["orgUnit", "orgGroup", "top"],
        {"ou": ["databases"]},
    )
    directory.add_entry(
        databases,
        "uid=laks",
        ["researcher", "facultyMember", "person", "online", "top"],
        {
            "uid": ["laks"],
            "name": ["laks lakshmanan"],
            "mail": ["laks@cs.concordia.ca", "laks@cse.iitb.ernet.in"],
        },
    )
    directory.add_entry(
        databases,
        "uid=suciu",
        ["researcher", "person", "top"],
        {"uid": ["suciu"], "name": ["dan suciu"]},
    )
    return directory


def _add_person(
    directory: DirectoryInstance,
    parent,
    uid: str,
    rng: random.Random,
) -> None:
    """Add one heterogeneous person entry (the paper's john/jack/mary
    motif: zero, one, or many e-mail addresses; optional phone; optional
    role auxiliaries)."""
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    classes = ["person", "top"]
    attributes = {"uid": [uid], "name": [f"{first} {last}"]}

    specialization = rng.random()
    if specialization < 0.45:
        classes.insert(0, "staffMember")
        if rng.random() < 0.25:
            classes.append(rng.choice(["manager", "secretary", "consultant"]))
    elif specialization < 0.8:
        classes.insert(0, "researcher")
        if rng.random() < 0.4:
            classes.append(rng.choice(["manager", "consultant", "facultyMember"]))

    mail_count = rng.choice([0, 0, 1, 1, 1, 2, 3])
    if mail_count:
        classes.append("online")
        attributes["mail"] = [
            f"{uid}@{rng.choice(['example.com', 'labs.example.com', 'research.example.org'])}"
            if i == 0
            else f"{uid}{i}@example.net"
            for i in range(mail_count)
        ]
    if rng.random() < 0.3:
        attributes["telephoneNumber"] = [f"+1 973 555 {rng.randrange(10000):04d}"]
    if rng.random() < 0.15:
        attributes["cellularPhone"] = [f"+1 201 555 {rng.randrange(10000):04d}"]

    directory.add_entry(parent, f"uid={uid}", classes, attributes)


def _add_unit_tree(
    directory: DirectoryInstance,
    parent,
    prefix: str,
    depth: int,
    units_per_level: int,
    persons_per_unit: int,
    rng: random.Random,
    counter: List[int],
) -> None:
    for u in range(units_per_level):
        ou = f"{rng.choice(_UNIT_NAMES)}-{prefix}{u}"
        attributes = {"ou": [ou]}
        if rng.random() < 0.5:
            attributes["location"] = [rng.choice(["FP", "MH", "NYC", "SF"])]
        unit = directory.add_entry(
            parent, f"ou={ou}", ["orgUnit", "orgGroup", "top"], attributes
        )
        if depth > 1:
            _add_unit_tree(
                directory, unit, f"{prefix}{u}.", depth - 1,
                units_per_level, persons_per_unit, rng, counter,
            )
        # Every unit employs at least one person directly, which keeps
        # ``orgGroup →→ person`` satisfied at every level.
        for _ in range(max(1, persons_per_unit)):
            counter[0] += 1
            _add_person(directory, unit, f"u{counter[0]}", rng)


def generate_whitepages(
    orgs: int = 1,
    units_per_level: int = 3,
    depth: int = 2,
    persons_per_unit: int = 4,
    seed: int = 0,
    registry: Optional[AttributeRegistry] = None,
) -> DirectoryInstance:
    """Generate a legal white-pages instance of tunable size.

    The result contains ``orgs`` organization roots, each with a
    ``depth``-level tree of orgUnits (``units_per_level`` branching) and
    roughly ``persons_per_unit`` heterogeneous persons per unit.  The
    instance is legal w.r.t. :func:`whitepages_schema` for every
    parameter combination (asserted by tests).
    """
    rng = random.Random(seed)
    directory = DirectoryInstance(
        attributes=registry if registry is not None else whitepages_registry()
    )
    counter = [0]
    for o in range(orgs):
        org = directory.add_entry(
            None,
            f"o=org{o}",
            ["organization", "orgGroup", "online", "top"],
            {"o": [f"org{o}"], "uri": [f"http://org{o}.example.com/"]},
        )
        _add_unit_tree(
            directory, org, f"{o}.", max(1, depth), units_per_level,
            persons_per_unit, rng, counter,
        )
        # Organizations may also employ persons directly (Figure 1's
        # armstrong sits right under o=att).
        if rng.random() < 0.7:
            counter[0] += 1
            _add_person(directory, org, f"u{counter[0]}", rng)
    return directory
