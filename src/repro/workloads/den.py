"""A directory-enabled-networks (DEN) workload.

The paper's introduction names DEN — keeping network resources and
policies in LDAP directories [1] — as the other motivating application
("More sophisticated directories, such as those for directory-enabled
network (DEN) applications, also exhibit similar needs for
bounding-schemas", Section 1.2).  This module provides a DEN-flavoured
bounding-schema and generator:

* sites contain network elements; interfaces hang off devices;
* every router carries at least one interface;
* policy domains contain policies; policies are leaves;
* sites and devices do not nest.

It exercises schema shapes the white-pages workload does not: a deeper
core hierarchy (``netElement / device / router``), required-child and
required-ancestor elements, integer-typed required attributes, and
self-forbidding classes (``site ↛↛ site``).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.model.attributes import AttributeRegistry
from repro.model.instance import DirectoryInstance
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.structure_schema import StructureSchema

__all__ = ["den_registry", "den_schema", "generate_den"]


def den_registry() -> AttributeRegistry:
    """The attribute registry of the DEN deployment."""
    registry = AttributeRegistry()
    registry.declare_all(
        ["siteName", "hostname", "location", "routingProtocol", "domainName",
         "policyName", "snmpCommunity", "ipAddress"]
    )
    registry.declare("ifIndex", "integer")
    registry.declare("priority", "integer")
    registry.declare("qosLimit", "integer")
    return registry


def den_schema() -> DirectorySchema:
    """The DEN bounding-schema."""
    classes = (
        ClassSchema()
        .add_core("site")
        .add_core("netElement")
        .add_core("device", parent="netElement")
        .add_core("router", parent="device")
        .add_core("switch", parent="device")
        .add_core("interface", parent="netElement")
        .add_core("policyDomain")
        .add_core("policy")
        .add_auxiliary("managed")
        .add_auxiliary("qosEnabled")
        .allow_auxiliary("device", "managed")
        .allow_auxiliary("interface", "qosEnabled")
        .allow_auxiliary("policy", "qosEnabled")
    )

    attributes = (
        AttributeSchema()
        .declare("top")
        .declare("site", required=("siteName",))
        .declare("netElement")
        .declare("device", required=("hostname",), allowed=("location",))
        .declare("router", allowed=("routingProtocol",))
        .declare("switch")
        .declare("interface", required=("ifIndex",), allowed=("ipAddress",))
        .declare("policyDomain", required=("domainName",))
        .declare("policy", required=("policyName", "priority"))
        .declare("managed", required=("snmpCommunity",))
        .declare("qosEnabled", allowed=("qosLimit",))
    )

    structure = (
        StructureSchema()
        .require_class("site", "router", "policyDomain")
        .require_parent("interface", "device")
        .require_ancestor("device", "site")
        .require_child("router", "interface")
        .require_descendant("policyDomain", "policy")
        .forbid_child("policy", "top")
        .forbid_descendant("site", "site")
        .forbid_descendant("device", "device")
    )

    return DirectorySchema(attributes, classes, structure, den_registry()).validate()


def den_schema_overconstrained() -> DirectorySchema:
    """The DEN schema with a realistic authoring mistake: forbidding
    policies from being anyone's child (``top ↛ policy``, intended to
    mean "policies live under domains only") contradicts
    ``policyDomain →→ policy`` — policies could never be placed at all.
    The consistency checker derives ``∅ □`` from it; used by tests and
    the schema-workbench example."""
    schema = den_schema()
    schema.structure_schema.forbid_child("top", "policy")
    return schema


def generate_den(
    sites: int = 2,
    devices_per_site: int = 4,
    interfaces_per_device: int = 3,
    domains: int = 2,
    policies_per_domain: int = 5,
    seed: int = 0,
    registry: Optional[AttributeRegistry] = None,
) -> DirectoryInstance:
    """Generate a legal DEN instance of tunable size."""
    rng = random.Random(seed)
    directory = DirectoryInstance(
        attributes=registry if registry is not None else den_registry()
    )
    for s in range(sites):
        site = directory.add_entry(
            None, f"siteName=site{s}", ["site", "top"], {"siteName": [f"site{s}"]}
        )
        for d in range(max(1, devices_per_site)):
            is_router = d == 0 or rng.random() < 0.5
            kind = "router" if is_router else "switch"
            classes = [kind, "device", "netElement", "top"]
            attributes = {"hostname": [f"{kind}-{s}-{d}.example.net"]}
            if rng.random() < 0.4:
                classes.append("managed")
                attributes["snmpCommunity"] = ["public"]
            if is_router and rng.random() < 0.6:
                attributes["routingProtocol"] = [rng.choice(["ospf", "bgp", "isis"])]
            device = directory.add_entry(
                site, f"hostname={kind}-{s}-{d}", classes, attributes
            )
            interface_count = max(1, interfaces_per_device) if is_router else (
                interfaces_per_device if rng.random() < 0.8 else 0
            )
            for i in range(interface_count):
                if_classes = ["interface", "netElement", "top"]
                if_attributes = {"ifIndex": [i + 1]}
                if rng.random() < 0.7:
                    if_attributes["ipAddress"] = [
                        f"10.{s}.{d}.{i + 1}"
                    ]
                if rng.random() < 0.25:
                    if_classes.append("qosEnabled")
                    if_attributes["qosLimit"] = [rng.choice([10, 100, 1000])]
                directory.add_entry(
                    device, f"ifIndex={i + 1}", if_classes, if_attributes
                )
    for p in range(domains):
        domain = directory.add_entry(
            None,
            f"domainName=domain{p}",
            ["policyDomain", "top"],
            {"domainName": [f"domain{p}"]},
        )
        for q in range(max(1, policies_per_domain)):
            classes = ["policy", "top"]
            attributes = {
                "policyName": [f"policy-{p}-{q}"],
                "priority": [rng.randrange(1, 100)],
            }
            if rng.random() < 0.3:
                classes.append("qosEnabled")
            directory.add_entry(domain, f"policyName=policy-{p}-{q}", classes, attributes)
    return directory
