"""Instance statistics.

Directory administrators (and this library's own benchmarks) need quick
structural summaries: how classes are populated, how deep the forest
runs, how heterogeneous attribute usage is — the heterogeneity the
paper's introduction motivates bounding-schemas with (person entries
with zero, one, or many ``mail`` values) becomes directly visible in the
``value_cardinality`` histogram.

:func:`collect_stats` makes one pass over the instance; the result
renders as a compact text report (``str()``) used by the ``stats`` CLI
command.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.model.attributes import OBJECT_CLASS
from repro.model.instance import DirectoryInstance

__all__ = ["InstanceStats", "collect_stats"]


@dataclass
class InstanceStats:
    """One-pass structural summary of a directory instance."""

    entries: int = 0
    roots: int = 0
    max_depth: int = 0
    leaves: int = 0
    class_population: Dict[str, int] = field(default_factory=dict)
    classes_per_entry: Dict[int, int] = field(default_factory=dict)
    depth_histogram: Dict[int, int] = field(default_factory=dict)
    attribute_population: Dict[str, int] = field(default_factory=dict)
    #: attribute → {value-count → number of entries holding that many}
    value_cardinality: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def heterogeneity(self, attribute: str) -> Tuple[int, ...]:
        """The distinct per-entry value counts observed for
        ``attribute`` (a singleton tuple means homogeneous usage)."""
        return tuple(sorted(self.value_cardinality.get(attribute, {})))

    def __str__(self) -> str:
        lines = [
            f"entries: {self.entries} ({self.roots} roots, "
            f"{self.leaves} leaves, max depth {self.max_depth})",
            "classes:",
        ]
        for name, count in sorted(
            self.class_population.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {name}: {count}")
        lines.append("attributes:")
        for name, count in sorted(
            self.attribute_population.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            cardinalities = self.value_cardinality.get(name, {})
            spread = ", ".join(
                f"{k}×{v}" for k, v in sorted(cardinalities.items())
            )
            lines.append(f"  {name}: {count} entries (values per entry: {spread})")
        return "\n".join(lines)


def collect_stats(instance: DirectoryInstance) -> InstanceStats:
    """Collect :class:`InstanceStats` in one pass over ``instance``."""
    stats = InstanceStats()
    stats.entries = len(instance)
    stats.roots = len(instance.root_ids())
    stats.max_depth = instance.max_depth()

    class_population: Counter = Counter()
    classes_per_entry: Counter = Counter()
    depth_histogram: Counter = Counter()
    attribute_population: Counter = Counter()
    cardinality: Dict[str, Counter] = {}

    for entry in instance:
        if not instance.children_ids(entry.eid):
            stats.leaves += 1
        depth_histogram[instance.depth_of(entry)] += 1
        classes_per_entry[len(entry.classes)] += 1
        for name in entry.classes:
            class_population[name] += 1
        for name in entry.attribute_names():
            if name == OBJECT_CLASS:
                continue
            attribute_population[name] += 1
            cardinality.setdefault(name, Counter())[len(entry.values(name))] += 1

    stats.class_population = dict(class_population)
    stats.classes_per_entry = dict(classes_per_entry)
    stats.depth_histogram = dict(depth_histogram)
    stats.attribute_population = dict(attribute_population)
    stats.value_cardinality = {k: dict(v) for k, v in cardinality.items()}
    return stats
