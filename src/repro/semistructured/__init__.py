"""Bounding-schemas for semi-structured data (Section 6.3)."""

from repro.semistructured.bridge import (
    constraints_to_structure_schema,
    graph_to_instance,
    instance_to_graph,
)
from repro.semistructured.constraints import GraphConstraints, GraphValidator
from repro.semistructured.graph import DataGraph

__all__ = [
    "DataGraph",
    "GraphConstraints",
    "GraphValidator",
    "graph_to_instance",
    "instance_to_graph",
    "constraints_to_structure_schema",
]
