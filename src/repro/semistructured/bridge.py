"""Bridging tree-shaped data graphs and directory instances.

Section 6.3's closing point is that the LDAP machinery carries over to
semi-structured data.  For *tree-shaped* data graphs the transfer is
literal: labels become object classes, graph edges become the directory
forest, and the full Section 3 query-reduction checker applies.  This
module provides the two directions of that embedding, plus the
translation from :class:`~repro.semistructured.constraints.GraphConstraints`
to a :class:`~repro.schema.structure_schema.StructureSchema` — used by
the SEC63 benchmark to cross-validate the graph checker against the
directory checker.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.errors import ModelError
from repro.model.instance import DirectoryInstance
from repro.schema.structure_schema import StructureSchema
from repro.semistructured.constraints import GraphConstraints
from repro.semistructured.graph import DataGraph

__all__ = [
    "graph_to_instance",
    "instance_to_graph",
    "constraints_to_structure_schema",
]


def graph_to_instance(graph: DataGraph) -> DirectoryInstance:
    """Embed a tree-shaped data graph into a directory instance.

    Each node becomes an entry whose classes are ``{label, "top"}`` and
    whose RDN encodes the node id.

    Raises
    ------
    ModelError
        If the graph has sharing or cycles (not forest-shaped).
    """
    if not graph.is_tree_shaped():
        raise ModelError("only tree-shaped data graphs embed into directories")
    instance = DirectoryInstance()

    def build(node: Hashable, parent_entry) -> None:
        label = graph.label(node)
        classes = {label, "top"}
        entry = instance.add_entry(parent_entry, f"id={node}", classes)
        for child in graph.children(node):
            build(child, entry)

    for root in graph.roots():
        build(root, None)
    return instance


def instance_to_graph(instance: DirectoryInstance) -> DataGraph:
    """Project a directory instance onto a data graph.

    Graph nodes are single-labeled, so each entry's label is a
    deterministic representative of its class set: the lexicographically
    smallest class other than ``top`` (or ``top`` for entries belonging
    only to it).
    """
    graph = DataGraph()
    ids: Dict[int, str] = {}
    for entry in instance:
        candidates = sorted(c for c in entry.classes if c != "top") or ["top"]
        node_id = f"e{entry.eid}"
        ids[entry.eid] = node_id
        graph.add_node(node_id, candidates[0])
    for entry in instance:
        parent = instance.parent_of(entry)
        if parent is not None:
            graph.add_edge(ids[parent.eid], ids[entry.eid])
    return graph


def constraints_to_structure_schema(constraints: GraphConstraints) -> StructureSchema:
    """Reinterpret graph constraints as a directory structure schema
    (labels read as core object classes)."""
    schema = StructureSchema()
    for label in constraints.required_labels:
        schema.require_class(label)
    for axis, source, target in constraints.required:
        schema.require(source, axis, target)
    for axis, source, target in constraints.forbidden:
        schema.forbid(source, axis, target)
    return schema
