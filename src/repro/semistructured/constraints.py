"""Bounding constraints on data graphs (Section 6.3).

The structural schema elements of Definition 2.4, transplanted from
object classes to node labels and from forest edges to graph
reachability:

* ``label □`` — at least one node carries the label;
* ``l1 → l2`` / ``l1 →→ l2`` — every ``l1`` node has an ``l2`` child /
  descendant (the paper's "each *person* node must have a (descendant)
  *name* node, without having to fix the length of the path");
* ``l2 ← l1`` / ``l2 ←← l1`` — every ``l1`` node has an ``l2`` parent /
  ancestor;
* ``l1 ↛ l2`` / ``l1 ↛↛ l2`` — no ``l2`` node is a child / descendant
  of an ``l1`` node (the paper's "forbid a *country* node to be a
  descendant of another *country* node", which still allows
  country→corporation→country chains to any depth... no — it forbids
  them precisely; what stays allowed is corporation nesting).

Because graphs may share nodes and contain cycles, "descendant" means
proper reachability; everything else carries over verbatim, which is
exactly the point of Section 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.axes import Axis
from repro.errors import SchemaError
from repro.legality.report import Kind, LegalityReport, Violation
from repro.semistructured.graph import DataGraph

__all__ = ["GraphConstraints", "GraphValidator"]


@dataclass
class GraphConstraints:
    """A bounding-constraint set over node labels."""

    required_labels: Set[str] = field(default_factory=set)
    required: Set[tuple] = field(default_factory=set)   # (axis, source, target)
    forbidden: Set[tuple] = field(default_factory=set)  # (axis, source, target)

    # ------------------------------------------------------------------
    # builders (mirroring StructureSchema)
    # ------------------------------------------------------------------
    def require_label(self, *labels: str) -> "GraphConstraints":
        """Require at least one node per label."""
        self.required_labels.update(labels)
        return self

    def require_child(self, source: str, target: str) -> "GraphConstraints":
        """Every ``source`` node has a ``target`` child."""
        self.required.add((Axis.CHILD, source, target))
        return self

    def require_descendant(self, source: str, target: str) -> "GraphConstraints":
        """Every ``source`` node reaches some ``target`` node."""
        self.required.add((Axis.DESCENDANT, source, target))
        return self

    def require_parent(self, source: str, target: str) -> "GraphConstraints":
        """Every ``source`` node has a ``target`` parent."""
        self.required.add((Axis.PARENT, source, target))
        return self

    def require_ancestor(self, source: str, target: str) -> "GraphConstraints":
        """Every ``source`` node is reached by some ``target`` node."""
        self.required.add((Axis.ANCESTOR, source, target))
        return self

    def forbid_child(self, source: str, target: str) -> "GraphConstraints":
        """No ``target`` node is a child of a ``source`` node."""
        self.forbidden.add((Axis.CHILD, source, target))
        return self

    def forbid_descendant(self, source: str, target: str) -> "GraphConstraints":
        """No ``target`` node is reachable from a ``source`` node."""
        self.forbidden.add((Axis.DESCENDANT, source, target))
        return self

    def validate(self) -> "GraphConstraints":
        """Check the Definition 2.4 axis restriction on ``forbidden``."""
        for axis, _, _ in self.forbidden:
            if not axis.downward:
                raise SchemaError(
                    "forbidden graph constraints use child/descendant axes only"
                )
        return self


class GraphValidator:
    """Checks data graphs against a :class:`GraphConstraints` set.

    The checker evaluates descendant/ancestor constraints through one
    reachability pass per constraint (``O(|constraints| * (V + E))``),
    the graph analogue of Theorem 3.1's per-element linear cost.
    """

    def __init__(self, constraints: GraphConstraints) -> None:
        self.constraints = constraints.validate()

    def check(self, graph: DataGraph) -> LegalityReport:
        """All constraint violations of ``graph``."""
        report = LegalityReport()
        for label in sorted(self.constraints.required_labels):
            if not graph.nodes_with_label(label):
                report.add(
                    Violation(
                        Kind.MISSING_REQUIRED_CLASS,
                        f"no node carries required label {label!r}",
                        element=f"{label} □",
                    )
                )
        for axis, source, target in sorted(self.constraints.required, key=str):
            for node in sorted(graph.nodes_with_label(source), key=str):
                if not self._has_related(graph, node, axis, target):
                    report.add(
                        Violation(
                            Kind.REQUIRED_RELATIONSHIP,
                            f"node {node!r} violates {source} {axis.arrow} {target}",
                            dn=str(node),
                            element=f"{source} {axis.arrow} {target}",
                        )
                    )
        for axis, source, target in sorted(self.constraints.forbidden, key=str):
            slash = "↛" if axis is Axis.CHILD else "↛↛"
            for node in sorted(graph.nodes_with_label(source), key=str):
                if self._has_related(graph, node, axis, target):
                    report.add(
                        Violation(
                            Kind.FORBIDDEN_RELATIONSHIP,
                            f"node {node!r} participates in {source} {slash} {target}",
                            dn=str(node),
                            element=f"{source} {slash} {target}",
                        )
                    )
        return report

    def is_legal(self, graph: DataGraph) -> bool:
        """Yes/no verdict."""
        return self.check(graph).is_legal

    @staticmethod
    def _has_related(graph: DataGraph, node, axis: Axis, label: str) -> bool:
        if axis is Axis.CHILD:
            related = graph.children(node)
        elif axis is Axis.PARENT:
            related = graph.parents(node)
        elif axis is Axis.DESCENDANT:
            related = graph.descendants(node)
        else:
            related = graph.ancestors(node)
        return any(graph.label(r) == label for r in related)
