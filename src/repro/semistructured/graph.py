"""Semi-structured data graphs (Section 6.3 substrate).

Section 6.3 argues bounding-schemas apply beyond LDAP forests to
semi-structured databases — rooted, labeled graphs in the style of OEM /
UnQL, where existing path-constraint formalisms (Buneman-Fan-Weinstein
fixed-length paths; Abiteboul-Vianu regular path constraints on
destinations) cannot express "every *person* node has a *name* node
somewhere below it" or "no *country* node below another *country* node".

:class:`DataGraph` is a minimal such model: labeled nodes, unlabeled
parent→child edges, arbitrary graph shape (sharing and cycles allowed —
descendant/ancestor mean proper reachability).  It wraps a
:mod:`networkx` digraph, which supplies reachability.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import ModelError

__all__ = ["DataGraph"]


class DataGraph:
    """A rooted, node-labeled directed graph.

    Nodes carry a *label* (the analogue of an object class) and optional
    (attribute, value) pairs.  Edges are parent→child.  Unlike the LDAP
    forest, sharing (in-degree > 1) and cycles are allowed.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._by_label: Dict[str, Set[Hashable]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: Hashable,
        label: str,
        value: Optional[object] = None,
    ) -> Hashable:
        """Add a labeled node; returns the node id.

        Raises
        ------
        ModelError
            If the node already exists.
        """
        if node in self._graph:
            raise ModelError(f"node {node!r} already exists")
        self._graph.add_node(node, label=label, value=value)
        self._by_label.setdefault(label, set()).add(node)
        return node

    def add_edge(self, parent: Hashable, child: Hashable) -> None:
        """Add a parent→child edge between existing nodes."""
        if parent not in self._graph or child not in self._graph:
            raise ModelError("both endpoints must exist before adding an edge")
        self._graph.add_edge(parent, child)

    def add_child(
        self,
        parent: Hashable,
        node: Hashable,
        label: str,
        value: Optional[object] = None,
    ) -> Hashable:
        """Convenience: add a node and an edge from ``parent`` to it."""
        self.add_node(node, label, value)
        self.add_edge(parent, node)
        return node

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def label(self, node: Hashable) -> str:
        """The label of ``node``."""
        return self._graph.nodes[node]["label"]

    def value(self, node: Hashable) -> Optional[object]:
        """The value attached to ``node`` (``None`` when absent)."""
        return self._graph.nodes[node].get("value")

    def nodes_with_label(self, label: str) -> Set[Hashable]:
        """All nodes carrying ``label``."""
        return set(self._by_label.get(label, ()))

    def labels(self) -> Set[str]:
        """All labels in use."""
        return set(self._by_label)

    def children(self, node: Hashable) -> List[Hashable]:
        """Direct successors of ``node``."""
        return list(self._graph.successors(node))

    def parents(self, node: Hashable) -> List[Hashable]:
        """Direct predecessors of ``node``."""
        return list(self._graph.predecessors(node))

    def descendants(self, node: Hashable) -> Set[Hashable]:
        """All nodes properly reachable from ``node`` (non-empty path).

        In a cyclic graph a node can be its own proper descendant — a
        cycle through it — matching the path semantics of Section 6.3.
        ``networkx.descendants`` always excludes the source, so the
        cycle case is patched up explicitly.
        """
        reached = nx.descendants(self._graph, node)
        if any(
            child == node or node in nx.descendants(self._graph, child)
            for child in self._graph.successors(node)
        ):
            reached.add(node)
        return reached

    def ancestors(self, node: Hashable) -> Set[Hashable]:
        """All nodes that properly reach ``node`` (non-empty path)."""
        reached = nx.ancestors(self._graph, node)
        if any(
            parent == node or node in nx.ancestors(self._graph, parent)
            for parent in self._graph.predecessors(node)
        ):
            reached.add(node)
        return reached

    def roots(self) -> List[Hashable]:
        """Nodes with no incoming edges."""
        return [n for n in self._graph if self._graph.in_degree(n) == 0]

    def is_tree_shaped(self) -> bool:
        """Whether the graph is a forest (every node has at most one
        parent and there are no cycles) — the shape that embeds into an
        LDAP directory instance."""
        if any(self._graph.in_degree(n) > 1 for n in self._graph):
            return False
        return nx.is_directed_acyclic_graph(self._graph)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._graph.nodes)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, node: Hashable) -> bool:
        return node in self._graph

    def edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """All parent→child edges."""
        return iter(self._graph.edges)

    @property
    def nx_graph(self) -> nx.DiGraph:
        """The underlying :class:`networkx.DiGraph` (read-only use)."""
        return self._graph
