"""Parser for the hierarchical-query surface syntax.

The paper writes hierarchical selection queries in the s-expression
style of [9]::

    (σ⁻ (objectClass=orgGroup) (d (objectClass=orgGroup) (objectClass=person)))
    (c (objectClass=person) (objectClass=top))
    (objectClass=orgUnit)

This module parses that syntax (accepting ``?``, ``minus``, and
``sigma-`` as ASCII spellings of ``σ⁻``) back into the
:mod:`repro.query.ast` algebra, making ``parse_query`` the inverse of
``str()`` on scope-free queries.  Atomic selections may be any RFC 2254
filter, not just ``(objectClass=c)``.

Grammar::

    query  := atomic | hsel | minus
    hsel   := "(" axis query query ")"        axis ∈ {c, p, d, a}
    minus  := "(" ("σ⁻" | "?" | "minus" | "sigma-") query query ")"
    atomic := an RFC 2254 filter, e.g. "(&(objectClass=person)(mail=*))"
"""

from __future__ import annotations

from typing import Tuple

from repro.axes import Axis
from repro.errors import QueryError
from repro.query.ast import HSelect, Minus, Query, Select
from repro.query.filter_parser import parse_filter

__all__ = ["parse_query"]

_MINUS_TOKENS = ("σ⁻", "?", "minus", "sigma-")
_AXIS_TOKENS = {axis.value for axis in Axis}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> QueryError:
        return QueryError(f"{message} at position {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def parse(self) -> Query:
        self.skip_ws()
        node = self.parse_query()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters after query")
        return node

    def parse_query(self) -> Query:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != "(":
            raise self.error("expected '('")
        # Look ahead past the '(' for an operator token.
        operator, after = self._peek_operator()
        if operator in _MINUS_TOKENS:
            self.pos = after
            outer = self.parse_query()
            inner = self.parse_query()
            self.skip_ws()
            self._expect(")")
            return Minus(outer, inner)
        if operator in _AXIS_TOKENS:
            self.pos = after
            outer = self.parse_query()
            inner = self.parse_query()
            self.skip_ws()
            self._expect(")")
            return HSelect(Axis(operator), outer, inner)
        return self._parse_atomic()

    def _peek_operator(self) -> Tuple[str, int]:
        """The token right after the current '(' and the position past
        it — only when followed by whitespace (so ``(c=1)`` stays a
        filter while ``(c (...) (...))`` is an axis)."""
        cursor = self.pos + 1
        while cursor < len(self.text) and self.text[cursor].isspace():
            cursor += 1
        start = cursor
        while cursor < len(self.text) and not self.text[cursor].isspace() and (
            self.text[cursor] not in "()"
        ):
            cursor += 1
        token = self.text[start:cursor]
        if cursor < len(self.text) and self.text[cursor].isspace():
            return token, cursor
        return "", self.pos

    def _parse_atomic(self) -> Select:
        # Consume one balanced parenthesized filter expression.
        depth = 0
        start = self.pos
        cursor = self.pos
        while cursor < len(self.text):
            ch = self.text[cursor]
            if ch == "\\":
                cursor += 2
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    cursor += 1
                    break
            cursor += 1
        if depth != 0:
            raise self.error("unbalanced parentheses in filter")
        raw = self.text[start:cursor]
        self.pos = cursor
        return Select(parse_filter(raw))

    def _expect(self, ch: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1


def parse_query(text: str) -> Query:
    """Parse hierarchical-query surface syntax into the AST.

    Raises
    ------
    QueryError
        On malformed query structure (filter-level syntax errors raise
        :class:`~repro.errors.FilterSyntaxError`).
    """
    return _Parser(text).parse()
