"""Schema-aware query optimization — the paper's stated future work.

The conclusion of the paper observes that "query optimization is
facilitated using schema".  This module cashes that in: given the
deductive closure of a bounding-schema (Section 5), hierarchical
selection queries can be *constant-folded* using facts every legal
instance must satisfy:

``empty-class``
    ``(objectClass=c)`` where the closure proves ``c`` unpopulatable
    (``c →de ∅`` / ``c →an ∅``) folds to the empty selection.
``forbidden-edge``
    ``(x (objectClass=ci) (objectClass=cj))`` folds to empty when a
    forbidden element rules the relationship out — ``ci ↛ cj`` for the
    child axis, ``ci ↛↛ cj`` for child/descendant, and the inverted
    forms for parent/ancestor.
``required-edge``
    ``(x (objectClass=ci) (objectClass=cj))`` folds to plain
    ``(objectClass=ci)`` when the closure contains the required element
    ``ci →x cj`` — the inner test is a tautology on legal instances.
``minus-required``
    Consequently the Figure 4 violation query
    ``(σ⁻ ci (x ci cj))`` folds to the empty selection, and
    ``(σ⁻ A ∅)`` folds to ``A``.

**Soundness contract**: the rewrites preserve results on instances that
are *legal* w.r.t. the schema (that is the point of schema-aware
optimization).  On illegal instances results may differ — never use the
optimizer inside the legality checkers themselves.  Queries carrying
evaluation scopes (the Figure 5 Δ-queries) are left untouched: their
whole purpose is to detect not-yet-established legality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.axes import Axis
from repro.consistency.engine import Closure, close
from repro.model.attributes import OBJECT_CLASS
from repro.query.ast import HSelect, Minus, Query, Select
from repro.query.filters import FALSE_FILTER, Equals
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import ForbiddenEdge, RequiredEdge

__all__ = ["OptimizationResult", "SchemaAwareOptimizer", "EMPTY_SELECT"]

#: The canonical provably-empty query.
EMPTY_SELECT = Select(FALSE_FILTER)


@dataclass
class OptimizationResult:
    """A rewritten query plus an explanation of every fold applied."""

    query: Query
    notes: List[str] = field(default_factory=list)

    @property
    def provably_empty(self) -> bool:
        """Whether the whole query folded to the empty selection."""
        return self.query == EMPTY_SELECT

    @property
    def changed(self) -> bool:
        """Whether any rewrite fired."""
        return bool(self.notes)


def _class_of(node: Query) -> Optional[str]:
    """The class name of an unscoped ``(objectClass=c)`` selection."""
    if (
        isinstance(node, Select)
        and node.scope is None
        and isinstance(node.filter, Equals)
        and node.filter.attribute == OBJECT_CLASS
    ):
        return node.filter.value
    return None


class SchemaAwareOptimizer:
    """Folds queries using the closure of a bounding-schema.

    Parameters
    ----------
    schema:
        The bounding-schema legal instances satisfy.
    closure:
        Optionally a precomputed closure (else computed here).
    """

    def __init__(
        self,
        schema: DirectorySchema,
        closure: Optional[Closure] = None,
    ) -> None:
        self.schema = schema
        self.closure = (
            closure
            if closure is not None
            else close(
                schema.all_elements(),
                universe=schema.class_schema.core_classes(),
            )
        )
        self._empty = self.closure.empty_classes()

    # ------------------------------------------------------------------
    # fact lookups
    # ------------------------------------------------------------------
    def _edge_forbidden(self, axis: Axis, source: str, target: str) -> Optional[str]:
        """The forbidden element ruling out (axis, source, target), if
        any, as display text."""
        if axis.downward:
            checks: Tuple[ForbiddenEdge, ...] = (
                ForbiddenEdge(Axis.DESCENDANT, source, target),
            )
            if axis is Axis.CHILD:
                checks += (ForbiddenEdge(Axis.CHILD, source, target),)
        else:
            # source's parent/ancestor in target ⇔ target has source
            # child/descendant
            checks = (ForbiddenEdge(Axis.DESCENDANT, target, source),)
            if axis is Axis.PARENT:
                checks += (ForbiddenEdge(Axis.CHILD, target, source),)
        for element in checks:
            if element in self.closure:
                return str(element)
        return None

    def _edge_required(self, axis: Axis, source: str, target: str) -> Optional[str]:
        """The required element making (axis, source, target) a
        tautology, if any."""
        element = RequiredEdge(axis, source, target)
        if element in self.closure:
            return str(element)
        # A required child also witnesses a descendant test (and parent
        # an ancestor test).
        if axis in (Axis.DESCENDANT, Axis.ANCESTOR):
            tighter = RequiredEdge(
                Axis.CHILD if axis is Axis.DESCENDANT else Axis.PARENT,
                source,
                target,
            )
            if tighter in self.closure:
                return str(tighter)
        return None

    # ------------------------------------------------------------------
    # rewriting
    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> OptimizationResult:
        """Bottom-up constant folding; returns the rewritten query and
        the reasons for each fold."""
        notes: List[str] = []
        rewritten = self._fold(query, notes)
        return OptimizationResult(rewritten, notes)

    def _fold(self, node: Query, notes: List[str]) -> Query:
        if isinstance(node, Select):
            name = _class_of(node)
            if name is not None and name in self._empty:
                notes.append(
                    f"empty-class: (objectClass={name}) folded to ∅ — the "
                    f"closure proves {name!r} unpopulatable"
                )
                return EMPTY_SELECT
            return node

        if isinstance(node, Minus):
            if node.scope is not None:
                return node
            outer = self._fold(node.outer, notes)
            inner = self._fold(node.inner, notes)
            if outer == EMPTY_SELECT:
                notes.append("minus: empty outer folds the difference to ∅")
                return EMPTY_SELECT
            if inner == EMPTY_SELECT:
                notes.append("minus: empty inner folds the difference to its outer")
                return outer
            if inner == outer:
                # Typically the Figure 4 shape after a required-edge fold:
                # (σ⁻ A (x A B)) → (σ⁻ A A) → ∅.
                notes.append("minus-identical: A − A folded to ∅")
                return EMPTY_SELECT
            # Figure 4 shape: (σ⁻ A (x A B)) with A →x B required.
            if (
                isinstance(inner, HSelect)
                and inner.outer == outer
                and _class_of(outer) is not None
            ):
                target = _class_of(inner.inner)
                if target is not None:
                    reason = self._edge_required(
                        inner.axis, _class_of(outer), target
                    )
                    if reason is not None:
                        notes.append(
                            f"minus-required: violation query folded to ∅ — "
                            f"legal instances satisfy {reason}"
                        )
                        return EMPTY_SELECT
            return Minus(outer, inner) if (outer, inner) != (node.outer, node.inner) else node

        if isinstance(node, HSelect):
            if node.scope is not None:
                return node
            outer = self._fold(node.outer, notes)
            inner = self._fold(node.inner, notes)
            if outer == EMPTY_SELECT or inner == EMPTY_SELECT:
                notes.append("hselect: empty operand folds the selection to ∅")
                return EMPTY_SELECT
            source = _class_of(outer)
            target = _class_of(inner)
            if source is not None and target is not None:
                reason = self._edge_forbidden(node.axis, source, target)
                if reason is not None:
                    notes.append(
                        f"forbidden-edge: ({node.axis.value} "
                        f"(objectClass={source}) (objectClass={target})) "
                        f"folded to ∅ — legal instances satisfy {reason}"
                    )
                    return EMPTY_SELECT
                reason = self._edge_required(node.axis, source, target)
                if reason is not None:
                    notes.append(
                        f"required-edge: inner test dropped — legal "
                        f"instances satisfy {reason}"
                    )
                    return outer
            if (outer, inner) != (node.outer, node.inner):
                return HSelect(node.axis, outer, inner)
            return node

        return node
