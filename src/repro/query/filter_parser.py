"""Recursive-descent parser for RFC 2254/4515 LDAP search filters.

Supports the full grammar used by LDAP clients: ``&``, ``|``, ``!``
combinators, equality, presence (``=*``), substrings
(``=initial*any*final``), ordering (``>=``, ``<=``), and approximate
matching (``~=``), with ``\\XX`` hex escapes in values.

Escaping follows RFC 4515 in *every* comparator: ``\\2a`` ``\\28``
``\\29`` ``\\5c`` are the escaped forms of ``*`` ``(`` ``)`` ``\\``, and
an escaped ``*`` inside an equality or substring value is a literal
asterisk, never a wildcard — only *raw* ``*`` characters delimit
substring components.

:func:`render_filter` is the inverse: ``parse_filter(render_filter(f))``
is structurally equal to ``f`` for every canonical filter ``f`` (see the
function's docstring for what canonical rules out), and
``render_filter(parse_filter(s))`` round-trips for every valid filter
string ``s`` up to canonicalization of degenerate substring patterns
(``(cn=**)`` and ``(cn=*)`` both mean presence and both parse to
:class:`~repro.query.filters.Present`).
"""

from __future__ import annotations

from typing import List

from repro.errors import FilterSyntaxError
from repro.query.filters import (
    And,
    Approx,
    Equals,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)

__all__ = ["parse_filter", "render_filter"]


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> FilterSyntaxError:
        return FilterSyntaxError(f"{message} at position {self.pos} in {self.text!r}")

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("unexpected end of filter")
        return self.text[self.pos]

    def expect(self, ch: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def parse(self) -> Filter:
        node = self.parse_filter()
        if self.pos != len(self.text):
            raise self.error("trailing characters after filter")
        return node

    def parse_filter(self) -> Filter:
        self.expect("(")
        ch = self.peek()
        if ch == "&":
            self.pos += 1
            node: Filter = And(tuple(self.parse_list()))
        elif ch == "|":
            self.pos += 1
            node = Or(tuple(self.parse_list()))
        elif ch == "!":
            self.pos += 1
            node = Not(self.parse_filter())
        else:
            node = self.parse_item()
        self.expect(")")
        return node

    def parse_list(self) -> List[Filter]:
        items: List[Filter] = []
        while self.pos < len(self.text) and self.text[self.pos] == "(":
            items.append(self.parse_filter())
        return items

    def parse_item(self) -> Filter:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "=<>~()":
            self.pos += 1
        attribute = self.text[start:self.pos].strip()
        if not attribute:
            raise self.error("empty attribute name")
        ch = self.peek()
        if ch == ">":
            self.pos += 1
            self.expect("=")
            return GreaterOrEqual(attribute, self._unescape(self.read_value()))
        if ch == "<":
            self.pos += 1
            self.expect("=")
            return LessOrEqual(attribute, self._unescape(self.read_value()))
        if ch == "~":
            self.pos += 1
            self.expect("=")
            return Approx(attribute, self._unescape(self.read_value()))
        if ch == "=":
            self.pos += 1
            raw = self.read_value()
            if raw == "*":
                return Present(attribute)
            if "*" in raw:
                return self._substring(attribute, raw)
            return Equals(attribute, self._unescape(raw))
        raise self.error(f"unexpected character {ch!r}")

    def read_value(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] != ")":
            if self.text[self.pos] == "(":
                raise self.error("unescaped '(' in value")
            self.pos += 1
        return self.text[start:self.pos]

    def _substring(self, attribute: str, raw: str) -> Filter:
        # Split on RAW asterisks only: escaped ones (\2a) are still the
        # three-character escape sequence here, so they survive the
        # split and become literal '*' characters after unescaping.
        parts = raw.split("*")
        initial = self._unescape(parts[0])
        final = self._unescape(parts[-1])
        middle = tuple(self._unescape(p) for p in parts[1:-1] if p != "")
        if not initial and not middle and not final:
            # Degenerate patterns of nothing but wildcards ('**', '***',
            # ...) assert only that the attribute has a value — exactly
            # the presence test, which is also how they render, so the
            # parse->render->parse round trip stays the identity.
            return Present(attribute)
        return Substring(attribute, initial, middle, final)

    def _unescape(self, raw: str) -> str:
        out: List[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch == "\\":
                if i + 3 > len(raw):
                    raise self.error("truncated escape sequence")
                hex_pair = raw[i + 1:i + 3]
                try:
                    out.append(chr(int(hex_pair, 16)))
                except ValueError:
                    raise self.error(f"invalid escape \\{hex_pair}") from None
                i += 3
            else:
                out.append(ch)
                i += 1
        return "".join(out)


def parse_filter(text: str) -> Filter:
    """Parse an RFC 2254 filter string into a :class:`Filter`.

    Raises
    ------
    FilterSyntaxError
        On any syntax error; the message includes the failing position.
    """
    return _Parser(text.strip()).parse()


def render_filter(node: Filter) -> str:
    """Render a filter AST as its RFC 2254/4515 string.

    The exact inverse of :func:`parse_filter` on canonical filters:
    ``parse_filter(render_filter(f)) == f`` whenever every
    :class:`~repro.query.filters.Substring` in ``f`` has no empty
    ``any_parts`` entry and at least one non-empty component (the RFC
    4515 grammar cannot express empty ``any`` components, and an
    all-empty substring pattern is the presence test
    :class:`~repro.query.filters.Present` — degenerate shapes render to
    their canonical equivalent instead).  Literal ``* ( ) \\`` and NUL
    characters in values are escaped as ``\\2a \\28 \\29 \\5c \\00``, so
    a literal asterisk never comes back as a wildcard.
    """
    return str(node)
