"""Attribute filters — the atomic-selection predicates of [9].

Atomic selections in the directory query language of Jagadish et al. [9]
select entries by boolean combinations of conditions on individual
attributes; LDAP expresses the same conditions as RFC 2254 search filters
(e.g. ``(&(objectClass=person)(mail=*))``).  This module provides the
filter AST with LDAP-compatible semantics:

* a comparison matches when *some* value of the (multi-valued) attribute
  satisfies it,
* ``Present`` matches entries holding at least one value,
* ``Substring`` implements ``initial*any*...*final`` patterns, and
* ``And``/``Or``/``Not`` compose filters.

``str()`` of any filter is its RFC 2254 string, and
:func:`repro.query.filter_parser.parse_filter` is its inverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.model.entry import Entry

__all__ = [
    "Filter",
    "escape_filter_value",
    "Equals",
    "Present",
    "Substring",
    "GreaterOrEqual",
    "LessOrEqual",
    "Approx",
    "And",
    "Or",
    "Not",
    "TRUE_FILTER",
]

_ESCAPES = {"*": "\\2a", "(": "\\28", ")": "\\29", "\\": "\\5c", "\x00": "\\00"}


def escape_filter_value(text: str) -> str:
    """Escape a literal value for embedding in an RFC 2254 filter string."""
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


class Filter:
    """Base class of all filters.  Subclasses implement :meth:`matches`."""

    def matches(self, entry: Entry) -> bool:
        """Whether ``entry`` satisfies the filter."""
        raise NotImplementedError

    def __and__(self, other: "Filter") -> "Filter":
        return And((self, other))

    def __or__(self, other: "Filter") -> "Filter":
        return Or((self, other))

    def __invert__(self) -> "Filter":
        return Not(self)


def _comparable(value: Any, operand: Any) -> Optional[Tuple[Any, Any]]:
    """Coerce ``value``/``operand`` into a comparable pair or ``None``."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if isinstance(operand, (int, float)) and not isinstance(operand, bool):
            return value, operand
        try:
            return value, type(value)(operand)
        except (TypeError, ValueError):
            return None
    if isinstance(value, str) and isinstance(operand, str):
        return value, operand
    return None


@dataclass(frozen=True)
class Equals(Filter):
    """``(attribute=value)`` — some value of the attribute equals
    ``value`` (string comparison also matches the string form of a
    non-string stored value, mirroring LDAP's string-oriented matching)."""

    attribute: str
    value: Any

    def matches(self, entry: Entry) -> bool:
        for stored in entry.values(self.attribute):
            if stored == self.value:
                return True
            if isinstance(self.value, str) and not isinstance(stored, str):
                if str(stored) == self.value:
                    return True
        return False

    def __str__(self) -> str:
        text = self.value if isinstance(self.value, str) else str(self.value)
        return f"({self.attribute}={escape_filter_value(text)})"


@dataclass(frozen=True)
class Present(Filter):
    """``(attribute=*)`` — the attribute has at least one value."""

    attribute: str

    def matches(self, entry: Entry) -> bool:
        return entry.has_attribute(self.attribute)

    def __str__(self) -> str:
        return f"({self.attribute}=*)"


@dataclass(frozen=True)
class Substring(Filter):
    """``(attribute=initial*any1*...*final)`` substring matching."""

    attribute: str
    initial: str = ""
    any_parts: Tuple[str, ...] = ()
    final: str = ""

    def _match_text(self, text: str) -> bool:
        cursor = 0
        if self.initial:
            if not text.startswith(self.initial):
                return False
            cursor = len(self.initial)
        for part in self.any_parts:
            index = text.find(part, cursor)
            if index < 0:
                return False
            cursor = index + len(part)
        if self.final:
            remaining = text[cursor:]
            if not remaining.endswith(self.final):
                return False
        return True

    def matches(self, entry: Entry) -> bool:
        for stored in entry.values(self.attribute):
            text = stored if isinstance(stored, str) else str(stored)
            if self._match_text(text):
                return True
        return False

    def __str__(self) -> str:
        middle = "*".join(escape_filter_value(p) for p in self.any_parts)
        pattern = escape_filter_value(self.initial) + "*"
        if middle:
            pattern += middle + "*"
        pattern += escape_filter_value(self.final)
        return f"({self.attribute}={pattern})"


@dataclass(frozen=True)
class GreaterOrEqual(Filter):
    """``(attribute>=value)`` ordering comparison."""

    attribute: str
    value: Any

    def matches(self, entry: Entry) -> bool:
        for stored in entry.values(self.attribute):
            pair = _comparable(stored, self.value)
            if pair is not None and pair[0] >= pair[1]:
                return True
        return False

    def __str__(self) -> str:
        text = self.value if isinstance(self.value, str) else str(self.value)
        return f"({self.attribute}>={escape_filter_value(text)})"


@dataclass(frozen=True)
class LessOrEqual(Filter):
    """``(attribute<=value)`` ordering comparison."""

    attribute: str
    value: Any

    def matches(self, entry: Entry) -> bool:
        for stored in entry.values(self.attribute):
            pair = _comparable(stored, self.value)
            if pair is not None and pair[0] <= pair[1]:
                return True
        return False

    def __str__(self) -> str:
        text = self.value if isinstance(self.value, str) else str(self.value)
        return f"({self.attribute}<={escape_filter_value(text)})"


@dataclass(frozen=True)
class Approx(Filter):
    """``(attribute~=value)`` — approximate match, implemented as
    case-insensitive, whitespace-normalized string equality."""

    attribute: str
    value: str

    @staticmethod
    def _normalize(text: str) -> str:
        return " ".join(text.lower().split())

    def matches(self, entry: Entry) -> bool:
        wanted = self._normalize(self.value)
        for stored in entry.values(self.attribute):
            text = stored if isinstance(stored, str) else str(stored)
            if self._normalize(text) == wanted:
                return True
        return False

    def __str__(self) -> str:
        return f"({self.attribute}~={escape_filter_value(self.value)})"


@dataclass(frozen=True)
class And(Filter):
    """``(&(f1)(f2)...)`` conjunction; the empty conjunction is true."""

    operands: Tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return all(op.matches(entry) for op in self.operands)

    def __str__(self) -> str:
        return "(&" + "".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Filter):
    """``(|(f1)(f2)...)`` disjunction; the empty disjunction is false."""

    operands: Tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return any(op.matches(entry) for op in self.operands)

    def __str__(self) -> str:
        return "(|" + "".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Filter):
    """``(!(f))`` negation."""

    operand: Filter

    def matches(self, entry: Entry) -> bool:
        return not self.operand.matches(entry)

    def __str__(self) -> str:
        return f"(!{self.operand})"


#: A filter matched by every entry (the empty conjunction).
TRUE_FILTER = And(())

#: A filter matched by no entry (the empty disjunction).  Used by the
#: schema-aware optimizer to constant-fold provably-empty selections;
#: the evaluator short-circuits it without scanning.
FALSE_FILTER = Or(())
