"""Figure 4: translating structure-schema elements to queries.

The complete set of translations from required/forbidden structural
relationships and required classes to hierarchical selection queries, as
given in Figure 4 of the paper:

====================  =====================================================
Schema element        Hierarchical selection query
====================  =====================================================
``ci → cj``           ``(σ⁻ (oc=ci) (c (oc=ci) (oc=cj)))``
``cj ← ci``           ``(σ⁻ (oc=ci) (p (oc=ci) (oc=cj)))``
``ci →→ cj``          ``(σ⁻ (oc=ci) (d (oc=ci) (oc=cj)))``
``cj ←← ci``          ``(σ⁻ (oc=ci) (a (oc=ci) (oc=cj)))``
``ci ↛ cj``           ``(c (oc=ci) (oc=cj))``
``ci ↛↛ cj``          ``(d (oc=ci) (oc=cj))``
``c □``               ``(oc=c)``
====================  =====================================================

For the six relationship forms the instance is legal iff the query result
is **empty**; for required classes iff it is **non-empty**.  The
:class:`TranslatedCheck` wrapper packages a query with its emptiness
polarity so checkers can treat all elements uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.errors import QueryError
from repro.model.attributes import OBJECT_CLASS
from repro.model.instance import DirectoryInstance
from repro.query.ast import HSelect, Minus, Query, Select
from repro.query.evaluator import QueryEvaluator
from repro.query.filters import Equals
from repro.schema.elements import (
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    SchemaElement,
)

__all__ = ["class_selection", "TranslatedCheck", "translate_element"]


def class_selection(object_class: str) -> Select:
    """The atomic selection ``(objectClass=c)``."""
    return Select(Equals(OBJECT_CLASS, object_class))


@dataclass(frozen=True)
class TranslatedCheck:
    """A schema element together with its Figure 4 query.

    ``legal_when_empty`` records the polarity: relationship elements are
    satisfied when the query result is empty, required-class elements when
    it is non-empty.
    """

    element: SchemaElement
    query: Query
    legal_when_empty: bool

    def is_legal(self, instance: DirectoryInstance) -> bool:
        """Whether ``instance`` satisfies the element, via the query."""
        result = QueryEvaluator(instance).evaluate(self.query)
        return (not result) if self.legal_when_empty else bool(result)

    def witnesses(self, instance: DirectoryInstance) -> Set[int]:
        """Entry ids witnessing a violation (empty set when legal, and
        also empty for a violated required-class element, which has no
        witnessing entry)."""
        result = QueryEvaluator(instance).evaluate(self.query)
        if self.legal_when_empty:
            return result
        return set()

    def __str__(self) -> str:
        polarity = "empty" if self.legal_when_empty else "non-empty"
        return f"{self.element}  ⟿  {self.query}  (legal iff {polarity})"


def translate_element(element: SchemaElement) -> TranslatedCheck:
    """Translate one structure-schema element per Figure 4.

    Raises
    ------
    QueryError
        For element kinds that have no Figure 4 row (``Subclass`` and
        ``Disjoint`` belong to the content schema and are checked
        per-entry instead).
    """
    if isinstance(element, RequiredEdge):
        source = class_selection(element.source)
        target = class_selection(element.target)
        query: Query = Minus(source, HSelect(element.axis, source, target))
        return TranslatedCheck(element, query, legal_when_empty=True)
    if isinstance(element, ForbiddenEdge):
        query = HSelect(
            element.axis,
            class_selection(element.source),
            class_selection(element.target),
        )
        return TranslatedCheck(element, query, legal_when_empty=True)
    if isinstance(element, RequiredClass):
        return TranslatedCheck(
            element, class_selection(element.object_class), legal_when_empty=False
        )
    raise QueryError(
        f"element {element} has no Figure 4 translation (content-schema element)"
    )
