"""Evaluation of hierarchical selection queries.

The evaluator realizes the efficiency contract of [9] that Theorem 3.1
builds on: every hierarchical selection query ``Q`` evaluates in
``O(|Q| * |D|)`` when entries are sorted.  Entries here are kept in
document (preorder) order with ``(pre, post)`` interval numbers, so each
hierarchical operator costs at most one linear pass:

* ``c`` (child):     result = outer ∩ parents(inner) — O(|outer| + |inner|).
* ``p`` (parent):    check each outer entry's parent — O(|outer|).
* ``d`` (descendant) and ``a`` (ancestor): either a single flag-propagation
  pass over the forest (O(|D|)), or — when both operand sets are small, as
  in the Δ-scoped queries of Figure 5 — an interval/bisect strategy whose
  cost depends only on the operand sizes, not on |D|.  The evaluator picks
  the cheaper strategy per node, which is what makes incremental legality
  checking (Section 4) asymptotically cheaper than re-checking.

Scope labels on AST nodes restrict which entries a sub-expression may
*select*; structural relationships are always judged in the full forest,
matching Figure 5 where e.g. ``(objectClass=c)[Δ]`` selects Δ-entries
inside the updated instance ``D + Δ``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Mapping, Optional, Set

from repro.axes import Axis
from repro.errors import QueryError
from repro.model.attributes import OBJECT_CLASS
from repro.model.instance import DirectoryInstance
from repro.query.ast import HSelect, Minus, Query, Select
from repro.query.filters import (
    FALSE_FILTER,
    And,
    Equals,
    Filter,
    Or,
    Present,
    Substring,
)

__all__ = [
    "QueryEvaluator",
    "FilterPlanner",
    "evaluate",
    "SEMIJOIN_FACTOR",
    "prefers_semi_join",
    "descendant_prefers_flags",
    "ancestor_prefers_flags",
]

#: A semi-join direction is taken when the probing side is at least this
#: many times smaller than the side it probes against.
SEMIJOIN_FACTOR = 8


def prefers_semi_join(probe_estimate: int, against_estimate: int) -> bool:
    """Whether an adaptive evaluator would semi-join from the side whose
    estimated size is ``probe_estimate`` instead of materializing the
    ``against_estimate``-sized operand."""
    return probe_estimate * SEMIJOIN_FACTOR < against_estimate


def descendant_prefers_flags(n_outer: int, n_inner: int, n_total: int) -> bool:
    """Whether a materialized descendant join of the given operand sizes
    would run the whole-forest flag pass rather than the interval/bisect
    strategy.  Shared with the batched structure engine, which collects
    exactly these checks into one combined pass."""
    return (n_outer + n_inner) * max(1, int(math.log2(n_inner + 1))) >= n_total


def ancestor_prefers_flags(n_outer: int, depth: int, n_total: int) -> bool:
    """Whether a materialized ancestor join would run the whole-forest
    forward flag pass rather than per-entry upward walks."""
    return n_outer * max(1, depth) >= n_total


class QueryEvaluator:
    """Evaluates queries against one instance, with optional scopes.

    Parameters
    ----------
    instance:
        The directory instance to evaluate against (for incremental
        checking this is the *updated* instance).
    scopes:
        Mapping from scope label to the set of entry ids that label
        denotes.  Nodes with an unknown label raise :class:`QueryError`.

    Attributes
    ----------
    cost:
        A machine-independent work counter (entries touched), used by the
        benchmarks to measure complexity *shape* without timing noise.
        It accumulates across :meth:`evaluate` calls for the lifetime of
        the evaluator.
    last_cost:
        The work done by the most recent :meth:`evaluate` call alone.
        Interleaved callers sharing one evaluator should read this (or
        call :meth:`reset_cost` between queries) instead of diffing
        ``cost`` themselves — the cumulative counter silently blends
        their work together.
    """

    def __init__(
        self,
        instance: DirectoryInstance,
        scopes: Optional[Mapping[str, Set[int]]] = None,
        adaptive: bool = True,
    ) -> None:
        self.instance = instance
        self.scopes = dict(scopes) if scopes else {}
        self.cost = 0
        self.last_cost = 0
        #: When false, the evaluator always materializes both operands
        #: and uses whole-forest flag passes — the non-adaptive baseline
        #: measured by the strategy-ablation benchmark.
        self.adaptive = adaptive

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, query: Query) -> Set[int]:
        """Evaluate ``query`` and return the selected entry ids.

        The work this call performed (alone) is captured in
        :attr:`last_cost`; :attr:`cost` keeps the running total.
        """
        before = self.cost
        result = self._eval(query)
        self.last_cost = self.cost - before
        return result

    def reset_cost(self) -> None:
        """Zero both work counters (per-caller cost attribution)."""
        self.cost = 0
        self.last_cost = 0

    # ------------------------------------------------------------------
    # node dispatch
    # ------------------------------------------------------------------
    def _eval(self, query: Query) -> Set[int]:
        if isinstance(query, Select):
            result = self._eval_select(query)
        elif isinstance(query, Minus):
            result = self._eval(query.outer) - self._eval(query.inner)
        elif isinstance(query, HSelect):
            result = self._eval_hselect(query)
        else:
            raise QueryError(f"unknown query node {query!r}")
        if query.scope is not None and not isinstance(query, Select):
            result &= self._scope_set(query.scope)
        return result

    def _scope_set(self, label: str) -> Set[int]:
        try:
            return self.scopes[label]
        except KeyError:
            raise QueryError(f"no entry set bound to scope label {label!r}") from None

    # ------------------------------------------------------------------
    # atomic selection
    # ------------------------------------------------------------------
    def _eval_select(self, node: Select) -> Set[int]:
        if node.filter == FALSE_FILTER:
            return set()
        scope = None if node.scope is None else self._scope_set(node.scope)
        fast = self._fast_class_lookup(node.filter)
        if fast is not None:
            if scope is None:
                self.cost += len(fast)
                return fast
            # Intersect from the smaller side, so a Δ-scoped selection
            # costs O(|Δ|) regardless of how populous the class is.
            small, large = (scope, fast) if len(scope) <= len(fast) else (fast, scope)
            self.cost += len(small)
            return {eid for eid in small if eid in large}
        if scope is not None:
            self.cost += len(scope)
            return {
                eid for eid in scope if node.filter.matches(self.instance.entry(eid))
            }
        self.cost += len(self.instance)
        return {e.eid for e in self.instance if node.filter.matches(e)}

    def _fast_class_lookup(self, filt: Filter) -> Optional[Set[int]]:
        """Index fast-path for ``(objectClass=c)`` — the only atomic shape
        the Figure 4 reduction emits."""
        if isinstance(filt, Equals) and filt.attribute == OBJECT_CLASS:
            return self.instance.entries_with_class(filt.value)
        return None

    # ------------------------------------------------------------------
    # hierarchical selection
    # ------------------------------------------------------------------
    def _estimate(self, node: Query) -> int:
        """Cheap upper bound on a node's result size (used to pick a
        semi-join direction without materializing both sides)."""
        if isinstance(node, Select):
            if node.scope is not None:
                return len(self._scope_set(node.scope))
            fast = self._fast_class_lookup(node.filter)
            if fast is not None:
                return len(fast)
        return len(self.instance)

    def _select_predicate(self, node: Select):
        """A per-entry membership test for an atomic selection, for
        semi-join evaluation (each call counts one unit of work)."""
        scope = None if node.scope is None else self._scope_set(node.scope)

        def test(eid: int) -> bool:
            self.cost += 1
            if scope is not None and eid not in scope:
                return False
            return node.filter.matches(self.instance.entry(eid))

        return test

    def _eval_hselect(self, node: HSelect) -> Set[int]:
        outer_estimate = self._estimate(node.outer)
        inner_estimate = self._estimate(node.inner)

        # Semi-join from the small side keeps Δ-scoped queries (Figure 5)
        # independent of |D|: the large operand is never materialized,
        # only probed as a predicate with early exit.
        if (
            self.adaptive
            and isinstance(node.inner, Select)
            and prefers_semi_join(outer_estimate, inner_estimate)
        ):
            outer = self._eval(node.outer)
            if not outer:
                return set()
            return self._semi_join_from_outer(node.axis, outer, node.inner)
        if (
            self.adaptive
            and isinstance(node.outer, Select)
            and prefers_semi_join(inner_estimate, outer_estimate)
            and node.axis in (Axis.CHILD, Axis.DESCENDANT)
        ):
            inner = self._eval(node.inner)
            if not inner:
                return set()
            return self._semi_join_from_inner(node.axis, node.outer, inner)

        outer = self._eval(node.outer)
        inner = self._eval(node.inner)
        if not outer or not inner:
            return set()
        if node.axis is Axis.CHILD:
            return self._axis_child(outer, inner)
        if node.axis is Axis.PARENT:
            return self._axis_parent(outer, inner)
        if node.axis is Axis.DESCENDANT:
            return self._axis_descendant(outer, inner)
        if node.axis is Axis.ANCESTOR:
            return self._axis_ancestor(outer, inner)
        raise QueryError(f"unknown axis {node.axis!r}")  # pragma: no cover

    def _semi_join_from_outer(
        self, axis: Axis, outer: Set[int], inner_node: Select
    ) -> Set[int]:
        """For each (small) outer entry, probe its axis-related entries
        against the inner predicate, stopping at the first hit."""
        instance = self.instance
        test = self._select_predicate(inner_node)
        result = set()
        for eid in outer:
            if axis is Axis.PARENT:
                parent = instance.parent_id(eid)
                if parent is not None and test(parent):
                    result.add(eid)
            elif axis is Axis.ANCESTOR:
                cursor = instance.parent_id(eid)
                while cursor is not None:
                    if test(cursor):
                        result.add(eid)
                        break
                    cursor = instance.parent_id(cursor)
            elif axis is Axis.CHILD:
                if any(test(c) for c in instance.children_ids(eid)):
                    result.add(eid)
            else:  # DESCENDANT — early-exit subtree walk
                stack = list(instance.children_ids(eid))
                while stack:
                    candidate = stack.pop()
                    if test(candidate):
                        result.add(eid)
                        break
                    stack.extend(instance.children_ids(candidate))
        return result

    def _semi_join_from_inner(
        self, axis: Axis, outer_node: Select, inner: Set[int]
    ) -> Set[int]:
        """Candidates are the inverse-axis relatives of the (small)
        inner set — parents for the child axis, ancestor chains for the
        descendant axis — filtered by the outer predicate."""
        instance = self.instance
        test = self._select_predicate(outer_node)
        result = set()
        seen = set()
        for eid in inner:
            cursor = instance.parent_id(eid)
            if axis is Axis.CHILD:
                if cursor is not None and cursor not in seen:
                    seen.add(cursor)
                    if test(cursor):
                        result.add(cursor)
                continue
            while cursor is not None and cursor not in seen:
                seen.add(cursor)
                if test(cursor):
                    result.add(cursor)
                cursor = instance.parent_id(cursor)
        return result

    def _axis_child(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        instance = self.instance
        self.cost += len(inner)
        parents = set()
        for eid in inner:
            parent = instance.parent_id(eid)
            if parent is not None:
                parents.add(parent)
        return outer & parents

    def _axis_parent(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        instance = self.instance
        self.cost += len(outer)
        result = set()
        for eid in outer:
            parent = instance.parent_id(eid)
            if parent is not None and parent in inner:
                result.add(eid)
        return result

    def _axis_descendant(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        small = self.adaptive and not descendant_prefers_flags(
            len(outer), len(inner), len(self.instance)
        )
        if small:
            return self._descendant_by_intervals(outer, inner)
        return self._descendant_by_flags(outer, inner)

    def _descendant_by_intervals(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        instance = self.instance
        self.cost += len(outer) + len(inner)
        inner_pres = sorted(instance.interval_of(eid)[0] for eid in inner)
        result = set()
        for eid in outer:
            pre, post = instance.interval_of(eid)
            # A proper descendant i satisfies pre < pre(i) and post(i) < post;
            # since intervals nest, pre(i) in (pre, post) suffices.
            index = bisect_right(inner_pres, pre)
            if index < len(inner_pres) and inner_pres[index] < post:
                result.add(eid)
        return result

    def _descendant_by_flags(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        instance = self.instance
        order = instance.entry_ids()
        self.cost += len(order)
        has_inner_below: Dict[int, bool] = {}
        for eid in reversed(order):
            flag = False
            for child in instance.children_ids(eid):
                if child in inner or has_inner_below[child]:
                    flag = True
                    break
            has_inner_below[eid] = flag
        return {eid for eid in outer if has_inner_below[eid]}

    def _axis_ancestor(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        depth = self.instance.max_depth()
        if self.adaptive and not ancestor_prefers_flags(
            len(outer), depth, len(self.instance)
        ):
            return self._ancestor_by_walk(outer, inner)
        return self._ancestor_by_flags(outer, inner)

    def _ancestor_by_walk(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        instance = self.instance
        result = set()
        for eid in outer:
            cursor = instance.parent_id(eid)
            while cursor is not None:
                self.cost += 1
                if cursor in inner:
                    result.add(eid)
                    break
                cursor = instance.parent_id(cursor)
        return result

    def _ancestor_by_flags(self, outer: Set[int], inner: Set[int]) -> Set[int]:
        instance = self.instance
        order = instance.entry_ids()
        self.cost += len(order)
        has_inner_above: Dict[int, bool] = {}
        for eid in order:
            parent = instance.parent_id(eid)
            has_inner_above[eid] = parent is not None and (
                parent in inner or has_inner_above[parent]
            )
        return {eid for eid in outer if has_inner_above[eid]}


def evaluate(
    query: Query,
    instance: DirectoryInstance,
    scopes: Optional[Mapping[str, Set[int]]] = None,
) -> Set[int]:
    """Convenience wrapper: evaluate ``query`` on ``instance``."""
    return QueryEvaluator(instance, scopes).evaluate(query)


class FilterPlanner:
    """Rewrites filter trees into candidate sets over secondary indexes.

    :meth:`plan` returns a **sound superset** of the entries a filter
    can match, as a set of entry ids — or ``None`` when the filter (or
    the relevant index) cannot bound the result, in which case the
    caller scans.  The residual ``matches`` pass always runs over the
    candidates, so planning affects cost, never results:

    * ``Equals`` with a *string* operand probes the equality index —
      for string operands the index's text form covers the matcher's
      ``stored == value or str(stored) == value`` exactly.  Non-string
      operands do not plan: ``(x=5)`` matches a stored ``5.0`` whose
      text form ``"5.0"`` the probe would miss.
    * ``Present`` probes the presence index (vacuous for
      ``objectClass``, which every entry has — no plan).
    * ``Substring`` intersects the gram postings of the pattern's
      literal chunks, falling back to the presence set when every chunk
      is shorter than a gram.
    * ``And`` intersects whichever conjuncts plan (one suffices — the
      residual pass enforces the rest); ``Or`` needs *every* disjunct
      to plan (a single unplannable branch could match anything).
      The empty ``Or`` — the parser's FALSE filter — plans as the
      empty set; the empty ``And`` (TRUE) does not plan.
    * ``Not``, ``Approx``, and the ordering filters fall through to the
      residual scan: the indexes order nothing and store no normalized
      text.
    """

    def __init__(self, indexes) -> None:
        self.indexes = indexes

    def plan(self, filt: Filter) -> Optional[Set[int]]:
        """A candidate-id superset for ``filt``, or ``None`` when the
        indexes cannot bound it (caller falls back to scanning)."""
        indexes = self.indexes
        if isinstance(filt, Equals):
            if isinstance(filt.value, str):
                return indexes.equality_candidates(filt.attribute, filt.value)
            return None
        if isinstance(filt, Present):
            if filt.attribute == OBJECT_CLASS:
                return None
            return indexes.presence_candidates(filt.attribute)
        if isinstance(filt, Substring):
            parts = [
                part
                for part in (filt.initial, *filt.any_parts, filt.final)
                if part
            ]
            return indexes.substring_candidates(filt.attribute, parts)
        if isinstance(filt, And):
            result: Optional[Set[int]] = None
            for operand in filt.operands:
                planned = self.plan(operand)
                if planned is None:
                    continue
                result = planned if result is None else result & planned
                if not result:
                    break
            return result
        if isinstance(filt, Or):
            union: Set[int] = set()
            for operand in filt.operands:
                planned = self.plan(operand)
                if planned is None:
                    return None
                union |= planned
            return union
        return None
