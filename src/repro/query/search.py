"""LDAP-style scoped search.

The paper's Section 1 describes directory retrieval as matching "a
boolean combination of conditions on individual attributes, the
retrieval typically scoped to some subtree of the hierarchy".  This
module provides exactly that operation over
:class:`~repro.model.instance.DirectoryInstance`: the three standard
LDAP scopes (``base``, ``one``, ``sub``) plus ``children`` (subtree
minus the base, LDAP's ``subordinateSubtree``), an RFC 2254 filter, and
an optional size limit.

This rounds out the query layer for application use; the legality
machinery itself uses the algebra in :mod:`repro.query.ast` directly.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, List, Optional, Union

from repro.errors import QueryError
from repro.model.dn import DN
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.query.filter_parser import parse_filter
from repro.query.filters import TRUE_FILTER, Filter

__all__ = ["SearchScope", "search"]


class SearchScope(str, Enum):
    """The LDAP search scopes."""

    #: Just the base entry.
    BASE = "base"
    #: Direct children of the base entry (LDAP ``singleLevel``).
    ONE = "one"
    #: The base entry and its whole subtree (LDAP ``wholeSubtree``).
    SUB = "sub"
    #: The subtree *excluding* the base (LDAP ``subordinateSubtree``).
    CHILDREN = "children"


def _candidates(
    instance: DirectoryInstance,
    base: Optional[Entry],
    scope: SearchScope,
) -> Iterator[Entry]:
    if base is None:
        # The empty base denotes the conceptual root above all entries.
        if scope is SearchScope.BASE:
            return
        if scope is SearchScope.ONE:
            yield from instance.roots()
            return
        for entry in instance:
            yield entry
        return
    if scope is SearchScope.BASE:
        yield base
    elif scope is SearchScope.ONE:
        yield from instance.children_of(base)
    elif scope is SearchScope.SUB:
        yield base
        yield from instance.descendants_of(base)
    else:
        yield from instance.descendants_of(base)


def search(
    instance: DirectoryInstance,
    base: Union[DN, str, None] = None,
    scope: Union[SearchScope, str] = SearchScope.SUB,
    filter: Union[Filter, str, None] = None,
    size_limit: Optional[int] = None,
) -> List[Entry]:
    """Scoped LDAP search.

    Parameters
    ----------
    base:
        DN (or DN string) of the search base; ``None`` or the empty DN
        searches from the conceptual root.
    scope:
        A :class:`SearchScope` or its string value.
    filter:
        A :class:`~repro.query.filters.Filter`, an RFC 2254 string, or
        ``None`` for match-all.
    size_limit:
        Stop after this many matches (LDAP ``sizeLimit``).

    Returns entries in document order.

    Raises
    ------
    QueryError
        If the base DN does not name an entry.
    """
    scope = SearchScope(scope)
    if filter is None:
        predicate: Filter = TRUE_FILTER
    elif isinstance(filter, str):
        predicate = parse_filter(filter)
    else:
        predicate = filter

    base_entry: Optional[Entry] = None
    if base is not None and str(base):
        base_entry = instance.find(base)
        if base_entry is None:
            raise QueryError(f"search base {base!s} does not exist")

    results: List[Entry] = []
    for entry in _candidates(instance, base_entry, scope):
        if predicate.matches(entry):
            results.append(entry)
            if size_limit is not None and len(results) >= size_limit:
                break
    return results
